"""EXP-T2 — paper Table 2: EAR (ideal battery) vs the Theorem-1 bound.

The paper reports ratios of 44.5-48.2 % across the five mesh sizes, with
the bound itself given by ``J* = B*K / sum(H_i)``.  The reproduction's
bound matches the paper's numbers to within ~0.1 % (the communication
energy is calibrated from this very table, see DESIGN.md); the measured
ratio band is recorded in EXPERIMENTS.md.
"""

from repro.analysis.calibration import (
    PAPER_TABLE2_EAR_JOBS,
    PAPER_TABLE2_UPPER_BOUNDS,
)
from repro.analysis.tables import format_table
from repro.analysis.theory import bound_comparison
from repro.config import PlatformConfig, SimulationConfig
from repro.sim.et_sim import run_simulation

WIDTHS = (4, 5, 6, 7, 8)


def run_table2():
    rows = []
    for width in WIDTHS:
        config = SimulationConfig(
            platform=PlatformConfig(
                mesh_width=width, battery_model="ideal"
            ),
            routing="ear",
        )
        stats = run_simulation(config)
        comparison = bound_comparison(config, stats)
        rows.append(
            (
                f"{width}x{width}",
                round(comparison.simulated_jobs, 1),
                round(comparison.bound_jobs, 2),
                f"{100 * comparison.ratio:.1f}%",
                PAPER_TABLE2_EAR_JOBS[width],
                PAPER_TABLE2_UPPER_BOUNDS[width],
                f"{100 * PAPER_TABLE2_EAR_JOBS[width] / PAPER_TABLE2_UPPER_BOUNDS[width]:.1f}%",
            )
        )
    return rows


def test_table2_upper_bound(benchmark, reporter):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    table = format_table(
        [
            "mesh",
            "J(EAR) ours",
            "J* ours",
            "ratio ours",
            "J(EAR) paper",
            "J* paper",
            "ratio paper",
        ],
        rows,
        title="Table 2 — EAR vs the analytical upper bound (ideal battery)",
    )
    reporter.add("Table 2 EAR vs upper bound", table)

    for row in rows:
        mesh, jobs, bound = row[0], row[1], row[2]
        paper_bound = PAPER_TABLE2_UPPER_BOUNDS[int(mesh[0])]
        # The bound must match the paper almost exactly.
        assert abs(bound - paper_bound) / paper_bound < 0.01, mesh
        # The simulation must stay below its bound...
        assert jobs < bound
        # ...while achieving a comparable fraction (paper: 44.5-48.2 %).
        assert 0.40 < jobs / bound < 0.70, mesh
