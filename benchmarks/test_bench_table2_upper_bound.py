"""EXP-T2 — paper Table 2: EAR (ideal battery) vs the Theorem-1 bound.

The paper reports ratios of 44.5-48.2 % across the five mesh sizes, with
the bound itself given by ``J* = B*K / sum(H_i)``.  The reproduction's
bound matches the paper's numbers to within ~0.1 % (the communication
energy is calibrated from this very table, see DESIGN.md); the measured
ratio band is recorded in EXPERIMENTS.md.

Simulated points come from the ``table2`` scenario through the cached
orchestration runner; the analytical bound is evaluated in-process.
"""

from bench_plumbing import SCALE, SMOKE

from repro.analysis.calibration import (
    PAPER_TABLE2_EAR_JOBS,
    PAPER_TABLE2_UPPER_BOUNDS,
)
from repro.analysis.tables import format_table
from repro.analysis.theory import bound_for
from repro.config import PlatformConfig, SimulationConfig
from repro.orchestration import build_scenario


def run_table2(runner):
    records = runner.run(build_scenario("table2", scale=SCALE))
    rows = []
    for record in records:
        width = int(record.params["mesh"].split("x")[0])
        jobs = record.summary["jobs_fractional"]
        bound = bound_for(
            SimulationConfig(
                platform=PlatformConfig(
                    mesh_width=width, battery_model="ideal"
                ),
                routing="ear",
            )
        ).jobs
        rows.append(
            (
                f"{width}x{width}",
                round(jobs, 1),
                round(bound, 2),
                f"{100 * jobs / bound:.1f}%",
                PAPER_TABLE2_EAR_JOBS[width],
                PAPER_TABLE2_UPPER_BOUNDS[width],
                f"{100 * PAPER_TABLE2_EAR_JOBS[width] / PAPER_TABLE2_UPPER_BOUNDS[width]:.1f}%",
            )
        )
    return rows


def test_table2_upper_bound(benchmark, reporter, sweep_runner):
    rows = benchmark.pedantic(
        run_table2, args=(sweep_runner,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "mesh",
            "J(EAR) ours",
            "J* ours",
            "ratio ours",
            "J(EAR) paper",
            "J* paper",
            "ratio paper",
        ],
        rows,
        title="Table 2 — EAR vs the analytical upper bound (ideal battery)",
    )
    reporter.add("Table 2 EAR vs upper bound", table)

    for row in rows:
        mesh, jobs, bound = row[0], row[1], row[2]
        paper_bound = PAPER_TABLE2_UPPER_BOUNDS[int(mesh[0])]
        # The bound must match the paper almost exactly.
        assert abs(bound - paper_bound) / paper_bound < 0.01, mesh
        # The simulation must stay below its bound...
        assert jobs < bound
        if SMOKE:
            continue  # job-capped smoke runs stop far below the bound
        # ...while achieving a comparable fraction (paper: 44.5-48.2 %).
        assert 0.40 < jobs / bound < 0.70, mesh
