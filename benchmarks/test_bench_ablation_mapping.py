"""EXP-AB-MAP — ablation: module-to-node mapping strategies.

Compares the paper's checkerboard rule against the Theorem-1
proportional mapping and a uniform round-robin baseline.  Theorem 1
says duplicates should scale with the normalised energies H_i; the
checkerboard approximates that on square meshes, the uniform mapping
does not.
"""

from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig
from repro.sim.et_sim import run_simulation

STRATEGIES = ("checkerboard", "proportional", "uniform")
WIDTHS = (4, 6)


def run_mapping_grid():
    rows = []
    for width in WIDTHS:
        jobs = {}
        for strategy in STRATEGIES:
            config = SimulationConfig(
                platform=PlatformConfig(
                    mesh_width=width, mapping_strategy=strategy
                ),
                routing="ear",
            )
            jobs[strategy] = run_simulation(config).jobs_fractional
        rows.append(
            (
                f"{width}x{width}",
                *(round(jobs[s], 1) for s in STRATEGIES),
            )
        )
    return rows


def test_ablation_mapping(benchmark, reporter):
    rows = benchmark.pedantic(run_mapping_grid, rounds=1, iterations=1)
    table = format_table(
        ["mesh", *STRATEGIES],
        rows,
        title="Ablation — mapping strategy (EAR, thin-film battery)",
    )
    reporter.add("Ablation mapping strategies", table)

    # On the tight 4x4 fabric, where module-1 scarcity binds, the
    # energy-proportional mappings beat the uniform baseline.  On larger
    # fabrics EAR's online balancing narrows the gap (an honest finding
    # recorded in EXPERIMENTS.md), so only rough parity is required.
    small = rows[0]
    assert small[1] > small[3]
    assert small[2] > small[3]
    for row in rows:
        checkerboard, proportional, uniform = row[1], row[2], row[3]
        assert checkerboard > 0.9 * uniform
        assert proportional > 0.85 * uniform
