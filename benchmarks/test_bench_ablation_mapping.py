"""EXP-AB-MAP — ablation: module-to-node mapping strategies.

Compares the paper's checkerboard rule against the Theorem-1
proportional mapping and a uniform round-robin baseline.  Theorem 1
says duplicates should scale with the normalised energies H_i; the
checkerboard approximates that on square meshes, the uniform mapping
does not.

The strategy x width grid runs through the cached orchestration runner.
"""

from bench_plumbing import SMOKE, bench_cap, bench_widths

from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.orchestration import SweepPoint

STRATEGIES = ("checkerboard", "proportional", "uniform")
WIDTHS = bench_widths((4, 6))


def _points():
    workload = WorkloadConfig(max_jobs=bench_cap())
    return [
        SweepPoint(
            label=f"{width}x{width}/{strategy}",
            config=SimulationConfig(
                platform=PlatformConfig(
                    mesh_width=width, mapping_strategy=strategy
                ),
                routing="ear",
                workload=workload,
            ),
            params={"mesh": f"{width}x{width}", "strategy": strategy},
        )
        for width in WIDTHS
        for strategy in STRATEGIES
    ]


def run_mapping_grid(runner):
    jobs: dict[str, dict[str, float]] = {}
    for record in runner.run(_points()):
        jobs.setdefault(record.params["mesh"], {})[
            record.params["strategy"]
        ] = record.summary["jobs_fractional"]
    return [
        (mesh, *(round(by_strategy[s], 1) for s in STRATEGIES))
        for mesh, by_strategy in jobs.items()
    ]


def test_ablation_mapping(benchmark, reporter, sweep_runner):
    rows = benchmark.pedantic(
        run_mapping_grid, args=(sweep_runner,), rounds=1, iterations=1
    )
    table = format_table(
        ["mesh", *STRATEGIES],
        rows,
        title="Ablation — mapping strategy (EAR, thin-film battery)",
    )
    reporter.add("Ablation mapping strategies", table)

    if SMOKE:
        assert all(row[1] > 0 for row in rows)
        return  # strategy gaps need uncapped runs
    # On the tight 4x4 fabric, where module-1 scarcity binds, the
    # energy-proportional mappings beat the uniform baseline.  On larger
    # fabrics EAR's online balancing narrows the gap (an honest finding
    # recorded in EXPERIMENTS.md), so only rough parity is required.
    small = rows[0]
    assert small[1] > small[3]
    assert small[2] > small[3]
    for row in rows:
        checkerboard, proportional, uniform = row[1], row[2], row[3]
        assert checkerboard > 0.9 * uniform
        assert proportional > 0.85 * uniform
