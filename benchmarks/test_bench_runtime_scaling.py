"""EXP-RT — paper Sec 6 complexity claim.

"For either EAR or SDR, the complexity is O(n^3), the hidden constants
are small and most of the running time is spent in the second phase.
Thus, EAR and SDR are practical for graphs consisting of tens to a few
hundreds of nodes."

This bench times one full routing computation (phases 1-3) at increasing
node counts and checks the practicality claim directly.
"""

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.core.engines import EnergyAwareRouting
from repro.core.view import NetworkView
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d


def make_view(width: int) -> NetworkView:
    topology = mesh2d(width)
    mapping = checkerboard_mapping(topology)
    size = topology.num_nodes
    rng = np.random.default_rng(width)
    return NetworkView(
        lengths=topology.length_matrix(),
        alive=np.ones(size, dtype=bool),
        battery_levels=rng.integers(0, 8, size=size),
        levels=8,
        mapping=mapping,
    )


def test_routing_runtime_8x8(benchmark, reporter):
    """pytest-benchmark timing of one recomputation on the 8x8 mesh."""
    engine = EnergyAwareRouting()
    view = make_view(8)
    benchmark(engine.compute_plan, view)

    # Scaling table across mesh sizes, measured once each.
    from bench_plumbing import bench_widths

    rows = []
    for width in bench_widths((4, 8, 12, 16), smoke=(4, 8)):
        sample_view = make_view(width)
        start = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            engine.compute_plan(sample_view)
        elapsed = (time.perf_counter() - start) / repeats
        rows.append((width * width, round(1e3 * elapsed, 3)))
    table = format_table(
        ["nodes", "routing computation (ms)"],
        rows,
        title=(
            "Sec 6 — EAR routing computation time "
            "(phases 1-3, numpy Floyd-Warshall)"
        ),
    )
    reporter.add("Routing runtime scaling", table)

    # The paper's practicality claim: a few hundred nodes stay fast.
    biggest_ms = rows[-1][1]
    assert biggest_ms < 500.0
