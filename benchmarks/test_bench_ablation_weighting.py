"""EXP-AB-Q — ablation: the EAR weighting constant ``Q``.

The paper introduces ``Q > 0`` as "a constant to strengthen the impact
of the battery information" without publishing a sweep.  This ablation
sweeps Q on the 5x5 mesh: Q=1 degenerates EAR into SDR; moderate Q
spreads load and multiplies the lifetime; very large Q keeps helping
because battery avoidance dominates path length on the small fabric.

The Q grid runs through the cached orchestration runner.
"""

from bench_plumbing import SMOKE, bench_cap

from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.orchestration import SweepPoint

Q_VALUES = (1.0, 1.6) if SMOKE else (1.0, 1.1, 1.3, 1.6, 2.0, 3.0)
WIDTH = 4 if SMOKE else 5


def _points():
    workload = WorkloadConfig(max_jobs=bench_cap())
    return [
        SweepPoint(
            label=f"q{q:g}",
            config=SimulationConfig(
                platform=PlatformConfig(mesh_width=WIDTH),
                routing="ear",
                weight_q=q,
                workload=workload,
            ),
            params={"q": q},
        )
        for q in Q_VALUES
    ]


def run_q_sweep(runner):
    rows = []
    for record in runner.run(_points()):
        summary = record.summary
        rows.append(
            (
                record.params["q"],
                round(summary["jobs_fractional"], 1),
                summary["total_hops"],
                round(summary["wasted_at_death_pj"] / 1e3, 1),
                round(summary["stranded_alive_pj"] / 1e3, 1),
            )
        )
    return rows


def test_ablation_weighting(benchmark, reporter, sweep_runner):
    rows = benchmark.pedantic(
        run_q_sweep, args=(sweep_runner,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "Q",
            "jobs",
            "total hops",
            "wasted dead (nJ)",
            "stranded alive (nJ)",
        ],
        rows,
        title=(
            f"Ablation — EAR weighting constant Q "
            f"({WIDTH}x{WIDTH} mesh, thin-film)"
        ),
    )
    reporter.add("Ablation Q sweep", table)

    jobs = {row[0]: row[1] for row in rows}
    if SMOKE:
        assert all(v > 0 for v in jobs.values())
        return  # the Q plateau needs uncapped runs
    # Q=1 is SDR-equivalent: far below any energy-aware setting.
    assert jobs[1.0] < 0.5 * jobs[1.6]
    # The default (1.6) sits on the useful plateau of the sweep.
    assert jobs[1.6] > 0.8 * max(jobs.values())
