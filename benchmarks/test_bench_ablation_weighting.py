"""EXP-AB-Q — ablation: the EAR weighting constant ``Q``.

The paper introduces ``Q > 0`` as "a constant to strengthen the impact
of the battery information" without publishing a sweep.  This ablation
sweeps Q on the 5x5 mesh: Q=1 degenerates EAR into SDR; moderate Q
spreads load and multiplies the lifetime; very large Q keeps helping
because battery avoidance dominates path length on the small fabric.
"""

from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig
from repro.sim.et_sim import run_simulation

Q_VALUES = (1.0, 1.1, 1.3, 1.6, 2.0, 3.0)


def run_q_sweep():
    rows = []
    for q in Q_VALUES:
        config = SimulationConfig(
            platform=PlatformConfig(mesh_width=5),
            routing="ear",
            weight_q=q,
        )
        stats = run_simulation(config)
        rows.append(
            (
                q,
                round(stats.jobs_fractional, 1),
                stats.total_hops,
                round(stats.wasted_at_death_pj / 1e3, 1),
                round(stats.stranded_alive_pj / 1e3, 1),
            )
        )
    return rows


def test_ablation_weighting(benchmark, reporter):
    rows = benchmark.pedantic(run_q_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "Q",
            "jobs",
            "total hops",
            "wasted dead (nJ)",
            "stranded alive (nJ)",
        ],
        rows,
        title="Ablation — EAR weighting constant Q (5x5 mesh, thin-film)",
    )
    reporter.add("Ablation Q sweep", table)

    jobs = {row[0]: row[1] for row in rows}
    # Q=1 is SDR-equivalent: far below any energy-aware setting.
    assert jobs[1.0] < 0.5 * jobs[1.6]
    # The default (1.6) sits on the useful plateau of the sweep.
    assert jobs[1.6] > 0.8 * max(jobs.values())
