"""EXP-DLK — Sec 7 narrative: deadlock recovery with concurrent jobs.

The paper feeds multiple concurrent jobs into the system to exercise the
TDMA deadlock-recovery mechanism (Sec 5.3) but publishes no table for
it; this bench quantifies the mechanism: jobs completed with recovery on
versus off, across buffer depths and concurrency levels.

The on/off grid runs through the cached orchestration runner.
"""

from bench_plumbing import SMOKE, bench_cap

from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.orchestration import SweepPoint

WIDTH = 4 if SMOKE else 6
CASES = ((1, 8),) if SMOKE else ((1, 8), (2, 8), (2, 4), (4, 8))


def _point(buffers: int, concurrency: int, recovery: bool) -> SweepPoint:
    config = SimulationConfig(
        platform=PlatformConfig(
            mesh_width=WIDTH, node_buffer_packets=buffers
        ),
        workload=WorkloadConfig(
            kind="concurrent",
            concurrency=concurrency,
            deadlock_recovery=recovery,
            max_jobs=bench_cap(smoke=12),
        ),
        routing="ear",
    )
    state = "on" if recovery else "off"
    return SweepPoint(
        label=f"b{buffers}/c{concurrency}/{state}",
        config=config,
        params={
            "buffers": buffers,
            "concurrency": concurrency,
            "recovery": recovery,
        },
    )


def run_deadlock_grid(runner):
    points = [
        _point(buffers, concurrency, recovery)
        for buffers, concurrency in CASES
        for recovery in (True, False)
    ]
    by_case = {}
    for record in runner.run(points):
        key = (record.params["buffers"], record.params["concurrency"])
        by_case.setdefault(key, {})[record.params["recovery"]] = (
            record.summary
        )
    rows = []
    for buffers, concurrency in CASES:
        on = by_case[(buffers, concurrency)][True]
        off = by_case[(buffers, concurrency)][False]
        rows.append(
            (
                buffers,
                concurrency,
                round(on["jobs_fractional"], 1),
                on["deadlocks_reported"],
                on["deadlocks_recovered"],
                round(off["jobs_fractional"], 1),
                off["death_cause"],
            )
        )
    return rows


def test_deadlock_recovery(benchmark, reporter, sweep_runner):
    rows = benchmark.pedantic(
        run_deadlock_grid, args=(sweep_runner,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "buffers",
            "concurrency",
            "jobs (recovery on)",
            "deadlocks",
            "recovered",
            "jobs (recovery off)",
            "death (off)",
        ],
        rows,
        title=(
            "Deadlock recovery under concurrent jobs "
            f"({WIDTH}x{WIDTH} mesh, EAR, closed loop)"
        ),
    )
    reporter.add("Deadlock recovery", table)

    # Recovery never loses to no-recovery, and wins outright under the
    # tightest buffering.
    for row in rows:
        assert row[2] >= row[5]
    if SMOKE:
        return  # stall/win shapes need the uncapped 6x6 grid
    tightest = rows[0]
    assert tightest[3] > 0            # deadlocks actually occurred
    assert tightest[2] > tightest[5]  # and recovery paid off
    assert tightest[6] == "stalled"   # without recovery the net stalls
