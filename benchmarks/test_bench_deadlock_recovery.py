"""EXP-DLK — Sec 7 narrative: deadlock recovery with concurrent jobs.

The paper feeds multiple concurrent jobs into the system to exercise the
TDMA deadlock-recovery mechanism (Sec 5.3) but publishes no table for
it; this bench quantifies the mechanism: jobs completed with recovery on
versus off, across buffer depths and concurrency levels.
"""

from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.sim.et_sim import run_simulation


def run_case(buffers: int, concurrency: int, recovery: bool):
    config = SimulationConfig(
        platform=PlatformConfig(
            mesh_width=6, node_buffer_packets=buffers
        ),
        workload=WorkloadConfig(
            kind="concurrent",
            concurrency=concurrency,
            deadlock_recovery=recovery,
        ),
        routing="ear",
    )
    return run_simulation(config)


def run_deadlock_grid():
    rows = []
    for buffers, concurrency in ((1, 8), (2, 8), (2, 4), (4, 8)):
        on = run_case(buffers, concurrency, recovery=True)
        off = run_case(buffers, concurrency, recovery=False)
        rows.append(
            (
                buffers,
                concurrency,
                round(on.jobs_fractional, 1),
                on.deadlocks_reported,
                on.deadlocks_recovered,
                round(off.jobs_fractional, 1),
                off.death_cause,
            )
        )
    return rows


def test_deadlock_recovery(benchmark, reporter):
    rows = benchmark.pedantic(run_deadlock_grid, rounds=1, iterations=1)
    table = format_table(
        [
            "buffers",
            "concurrency",
            "jobs (recovery on)",
            "deadlocks",
            "recovered",
            "jobs (recovery off)",
            "death (off)",
        ],
        rows,
        title=(
            "Deadlock recovery under concurrent jobs "
            "(6x6 mesh, EAR, closed loop)"
        ),
    )
    reporter.add("Deadlock recovery", table)

    # Recovery never loses to no-recovery, and wins outright under the
    # tightest buffering.
    for row in rows:
        assert row[2] >= row[5]
    tightest = rows[0]
    assert tightest[3] > 0            # deadlocks actually occurred
    assert tightest[2] > tightest[5]  # and recovery paid off
    assert tightest[6] == "stalled"   # without recovery the net stalls
