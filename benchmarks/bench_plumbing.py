"""Scale/executor knobs shared by the benchmark modules.

Lives outside ``conftest.py`` under a unique module name so bench
modules can import it directly (``tests/conftest.py`` would shadow a
plain ``import conftest``).  See ``benchmarks/conftest.py`` for the
environment variables CI uses.
"""

from __future__ import annotations

import os
import pathlib

from repro.orchestration import SweepCache, make_runner

#: Smoke mode: tiny grids, bounded jobs, shape assertions relaxed.
SMOKE = os.environ.get("ETSIM_BENCH_SMOKE") == "1"

#: Scenario scale matching the smoke switch.
SCALE = "smoke" if SMOKE else "full"


def bench_widths(
    full: tuple[int, ...], smoke: tuple[int, ...] = (4,)
) -> tuple[int, ...]:
    """Grid widths for the current scale."""
    return smoke if SMOKE else full


def bench_cap(full: int | None = None, smoke: int = 6) -> int | None:
    """Job cap for the current scale (None = run to system death)."""
    return smoke if SMOKE else full


def make_sweep_runner():
    """Sweep executor for the sweep-shaped benches.

    The result cache is **opt-in** via ``ETSIM_CACHE_DIR`` (CI sets it
    and keys the cached directory by a hash of ``src/``).  It is off by
    default locally on purpose: the cache is keyed by configuration
    content only, so after editing simulator code an enabled cache
    would serve pre-change results and the benches would assert on —
    and time — stale numbers.
    """
    cache_dir = os.environ.get("ETSIM_CACHE_DIR")
    cache = SweepCache(pathlib.Path(cache_dir)) if cache_dir else None
    workers = int(os.environ.get("ETSIM_BENCH_WORKERS", "1"))
    return make_runner(workers, cache=cache)
