"""Benchmark-suite plumbing.

Each bench regenerates one table or figure of the paper and registers the
formatted artifact with the session-scoped reporter; the reporter prints
everything in the terminal summary (so the artifacts are visible even
with pytest's output capture active) and archives them under
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_ARTIFACTS: list[tuple[str, str]] = []


class Reporter:
    """Collects formatted paper artifacts produced by the benches."""

    def add(self, name: str, text: str) -> None:
        """Register one artifact and archive it to disk."""
        _ARTIFACTS.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        safe = name.lower().replace(" ", "_").replace("/", "-")
        (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def reporter() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ARTIFACTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for name, text in _ARTIFACTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
