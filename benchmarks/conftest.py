"""Benchmark-suite plumbing.

Each bench regenerates one table or figure of the paper and registers the
formatted artifact with the session-scoped reporter; the reporter prints
everything in the terminal summary (so the artifacts are visible even
with pytest's output capture active) and archives them under
``benchmarks/results/``.

Scale and execution are environment-driven (see
:mod:`bench_plumbing`) so CI can smoke-run every bench on a tiny grid
through the cached parallel runner:

* ``ETSIM_BENCH_SMOKE=1``   — shrink grids to seconds-scale smoke size
  (paper-shape assertions that need the full grids are skipped);
* ``ETSIM_BENCH_WORKERS=N`` — worker processes for the sweep-shaped
  benches (default 1 = sequential, 0 = all cores);
* ``ETSIM_CACHE_DIR=DIR``   — enable the sweep-point cache at DIR so
  repeated runs reuse finished points.  Off by default: the cache keys
  on configuration content only, so local runs after simulator edits
  must not be satisfied by pre-change results (CI keys the cached
  directory by a hash of ``src/`` for the same reason).
"""

from __future__ import annotations

import pathlib

import pytest

from bench_plumbing import make_sweep_runner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_ARTIFACTS: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def sweep_runner():
    """Cache-backed sweep executor shared by the sweep-shaped benches."""
    return make_sweep_runner()


class Reporter:
    """Collects formatted paper artifacts produced by the benches."""

    def add(self, name: str, text: str) -> None:
        """Register one artifact and archive it to disk."""
        _ARTIFACTS.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        safe = name.lower().replace(" ", "_").replace("/", "-")
        (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def reporter() -> Reporter:
    return Reporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ARTIFACTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for name, text in _ARTIFACTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
