"""EXP-F7 — paper Fig 7: jobs completed, EAR vs SDR, 4x4..8x8 meshes.

Also reproduces the Sec 7.1 control-overhead percentages (2.8 / 3.1 /
4.1 / 9.3 / 11.6 % for the five mesh sizes).

Expected shape (paper): EAR beats SDR by 5-15x, the gain grows with the
mesh size, SDR is roughly flat, and the control-energy share rises with
mesh size while staying small.
"""

from repro.analysis.ascii_chart import bar_chart
from repro.analysis.calibration import PAPER_CONTROL_OVERHEAD_PERCENT
from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig
from repro.sim.et_sim import run_simulation

WIDTHS = (4, 5, 6, 7, 8)


def run_fig7():
    rows = []
    chart_values = {}
    for width in WIDTHS:
        results = {}
        for routing in ("ear", "sdr"):
            config = SimulationConfig(
                platform=PlatformConfig(mesh_width=width),
                routing=routing,
            )
            results[routing] = run_simulation(config)
        ear, sdr = results["ear"], results["sdr"]
        gain = ear.jobs_fractional / max(sdr.jobs_fractional, 1e-9)
        rows.append(
            (
                f"{width}x{width}",
                round(ear.jobs_fractional, 1),
                round(sdr.jobs_fractional, 1),
                round(gain, 1),
                round(100 * ear.control_overhead_fraction, 1),
                PAPER_CONTROL_OVERHEAD_PERCENT[width],
            )
        )
        chart_values[f"{width}x{width} EAR"] = ear.jobs_fractional
        chart_values[f"{width}x{width} SDR"] = sdr.jobs_fractional
    return rows, chart_values


def test_fig7_ear_vs_sdr(benchmark, reporter):
    rows, chart_values = benchmark.pedantic(
        run_fig7, rounds=1, iterations=1
    )
    table = format_table(
        [
            "mesh",
            "EAR jobs",
            "SDR jobs",
            "gain",
            "ctrl % (ours)",
            "ctrl % (paper)",
        ],
        rows,
        title="Fig 7 — jobs completed under EAR vs SDR (thin-film battery)",
    )
    chart = bar_chart(chart_values, title="Fig 7 as a bar chart")
    reporter.add("Fig 7 EAR vs SDR", table + "\n\n" + chart)

    # Shape assertions (paper: gains of 5-15x, increasing with size).
    gains = [row[3] for row in rows]
    assert all(g > 4.0 for g in gains)
    assert gains[-1] > gains[0]
    overheads = [row[4] for row in rows]
    assert all(a <= b for a, b in zip(overheads, overheads[1:]))
