"""EXP-F3 — paper Fig 3(b): the AES mapping on the 4x4 mesh.

Regenerates the checkerboard module assignment and compares the
duplicate counts against Theorem 1's optimal replication.
"""

from repro.analysis.tables import format_table
from repro.analysis.theory import bound_for
from repro.config import PlatformConfig, SimulationConfig
from repro.mesh.geometry import node_id
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d


def run_fig3():
    topology = mesh2d(4)
    mapping = checkerboard_mapping(topology)
    grid_lines = []
    for y in range(4, 0, -1):
        row = [
            str(mapping.module_of(node_id(x, y, 4)))
            for x in range(1, 5)
        ]
        grid_lines.append("   " + "  ".join(row))
    bound = bound_for(
        SimulationConfig(platform=PlatformConfig(mesh_width=4))
    )
    counts = mapping.duplicate_counts()
    return grid_lines, counts, bound


def test_fig3_mapping(benchmark, reporter):
    grid_lines, counts, bound = benchmark.pedantic(
        run_fig3, rounds=1, iterations=1
    )
    rows = [
        (
            module,
            counts[module],
            round(bound.optimal_duplicates[module], 2),
        )
        for module in sorted(counts)
    ]
    table = format_table(
        ["module", "checkerboard n_i", "Theorem-1 n_i*"],
        rows,
        title="Fig 3(b) — checkerboard counts vs Theorem-1 optimum (4x4)",
    )
    artifact = (
        "Fig 3(b) — module assignment (top row = y=4):\n"
        + "\n".join(grid_lines)
        + "\n\n"
        + table
    )
    reporter.add("Fig 3 AES mapping", artifact)

    # Paper Sec 5.2: the checkerboard puts half the nodes on module 3,
    # qualitatively matching the proportional rule.
    assert counts == {1: 4, 2: 4, 3: 8}
    assert counts[3] == max(counts.values())
    assert bound.optimal_duplicates[3] == max(
        bound.optimal_duplicates.values()
    )
