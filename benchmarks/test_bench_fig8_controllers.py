"""EXP-F8 — paper Fig 8: system lifetime vs number of central
controllers (1, 2, 4, 7, 10) across mesh sizes.

Expected shape (paper Sec 7.3): for a fixed mesh, more controllers
extend the lifetime up to a plateau set by the AES nodes; for a fixed
controller count the curves *decrease* with mesh size because a bigger
mesh's controller burns more power.
"""

from repro.analysis.ascii_chart import series_chart
from repro.analysis.tables import format_table
from repro.config import ControlConfig, PlatformConfig, SimulationConfig
from repro.sim.et_sim import run_simulation

WIDTHS = (4, 5, 6, 7, 8)
CONTROLLER_COUNTS = (1, 2, 4, 7, 10)


def run_fig8():
    grid: dict[int, dict[int, float]] = {}
    for count in CONTROLLER_COUNTS:
        grid[count] = {}
        for width in WIDTHS:
            config = SimulationConfig(
                platform=PlatformConfig(mesh_width=width),
                control=ControlConfig(
                    num_controllers=count,
                    controller_battery="thin-film",
                ),
                routing="ear",
            )
            stats = run_simulation(config)
            grid[count][width] = stats.jobs_fractional
    return grid


def test_fig8_controllers(benchmark, reporter):
    grid = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    rows = [
        (
            f"{count} controller(s)",
            *(round(grid[count][w], 1) for w in WIDTHS),
        )
        for count in sorted(CONTROLLER_COUNTS, reverse=True)
    ]
    table = format_table(
        ["configuration", *(f"{w}x{w}" for w in WIDTHS)],
        rows,
        title="Fig 8 — jobs completed vs number of controllers (EAR)",
    )
    chart = series_chart(
        {
            f"{count} ctrl": [
                (w * w, grid[count][w]) for w in WIDTHS
            ]
            for count in CONTROLLER_COUNTS
        },
        title="Fig 8 as a chart (x = mesh nodes, y = jobs)",
    )
    reporter.add("Fig 8 controller provisioning", table + "\n\n" + chart)

    # Shape assertions.
    for width in WIDTHS:
        jobs_by_count = [grid[c][width] for c in CONTROLLER_COUNTS]
        # More controllers never hurt.
        assert all(
            b >= a - 1e-6 for a, b in zip(jobs_by_count, jobs_by_count[1:])
        ), f"non-monotone at {width}x{width}"
    # With a single controller the curve decreases with mesh size.
    single = [grid[1][w] for w in WIDTHS]
    assert all(b < a for a, b in zip(single, single[1:]))
    # With 10 controllers small meshes reach the node-limited plateau.
    unlimited = run_simulation(
        SimulationConfig(
            platform=PlatformConfig(mesh_width=4), routing="ear"
        )
    ).jobs_fractional
    assert grid[10][4] >= 0.95 * unlimited
