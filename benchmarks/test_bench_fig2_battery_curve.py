"""EXP-F2 — paper Fig 2: discharge curve of the Li-free thin-film battery.

Regenerates the voltage-vs-delivered-capacity curve of the battery model
at three discharge rates.  Expected shape: a plateau near 3.4-3.7 V, a
knee crossing the paper's 3.0 V death threshold near the end of the
discharge, and — the property the whole paper rests on — higher rates
dying earlier with more residual (wasted) capacity.
"""

from repro.analysis.tables import format_table
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters


def discharge(step_pj: float, step_cycles: int, rest_cycles: int):
    """Discharge one fresh cell; returns (curve rows, delivered, wasted)."""
    battery = ThinFilmBattery(ThinFilmParameters())
    curve = []
    while battery.alive:
        curve.append(
            (battery.delivered_pj, battery.voltage)
        )
        battery.draw(step_pj, step_cycles)
        if rest_cycles:
            battery.rest(rest_cycles)
    return curve, battery.delivered_pj, battery.wasted_pj


def run_fig2():
    # Three regimes: gentle (well-rested), moderate, sustained heavy.
    regimes = {
        "gentle": discharge(step_pj=60.0, step_cycles=30, rest_cycles=30_000),
        "moderate": discharge(step_pj=150.0, step_cycles=30, rest_cycles=2_000),
        "heavy": discharge(step_pj=300.0, step_cycles=20, rest_cycles=0),
    }
    return regimes


def test_fig2_battery_curve(benchmark, reporter):
    regimes = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    rows = []
    for name, (curve, delivered, wasted) in regimes.items():
        usable = delivered / (delivered + wasted)
        rows.append(
            (
                name,
                round(delivered, 0),
                round(wasted, 0),
                f"{100 * usable:.1f}%",
            )
        )
    table = format_table(
        ["regime", "delivered (pJ)", "wasted (pJ)", "usable"],
        rows,
        title=(
            "Fig 2 — thin-film discharge: usable capacity vs discharge "
            "rate (60 000 pJ nominal, 3.0 V cut-off)"
        ),
    )

    # Sampled voltage curve of the gentle regime (the Fig 2 shape).
    curve = regimes["gentle"][0]
    samples = curve[:: max(1, len(curve) // 16)]
    curve_table = format_table(
        ["delivered (pJ)", "loaded voltage (V)"],
        [(round(d, 0), round(v, 3)) for d, v in samples],
        title="Gentle-discharge voltage curve",
    )
    reporter.add("Fig 2 battery discharge", table + "\n\n" + curve_table)

    # Shape assertions.
    gentle = regimes["gentle"]
    heavy = regimes["heavy"]
    assert gentle[1] > 0.85 * 60_000.0          # gentle: >85 % usable
    assert heavy[1] < gentle[1]                 # rate-capacity effect
    assert heavy[2] > gentle[2]                 # more waste at high rate
    voltages = [v for _, v in gentle[0]]
    assert max(voltages) > 4.0                  # fresh-cell voltage
    plateau = [v for _, v in gentle[0][len(gentle[0]) // 4 : -5]]
    assert all(3.0 < v < 3.9 for v in plateau)  # plateau region
