"""EXP-AB-BAT — ablation: battery model variants.

Separates the battery model's contributions on the 6x6 mesh:

* ideal vs thin-film (how much the non-ideal cell costs EAR),
* voltage-death vs recovery-allowed (how much of SDR's collapse is
  rate-induced early death),
* battery-level quantisation (how much reporting resolution matters).
"""

from dataclasses import replace

from repro.analysis.tables import format_table
from repro.battery.thin_film import ThinFilmParameters
from repro.config import PlatformConfig, SimulationConfig
from repro.sim.et_sim import run_simulation


def run_battery_ablation():
    rows = []

    def run(label, platform, routing="ear", weight_q=None):
        config = SimulationConfig(
            platform=platform,
            routing=routing,
            **({"weight_q": weight_q} if weight_q else {}),
        )
        stats = run_simulation(config)
        rows.append(
            (
                label,
                routing,
                round(stats.jobs_fractional, 1),
                round(stats.wasted_at_death_pj / 1e3, 1),
                round(stats.conversion_loss_pj / 1e3, 1),
            )
        )
        return stats

    run("ideal", PlatformConfig(mesh_width=6, battery_model="ideal"))
    run("thin-film", PlatformConfig(mesh_width=6))
    run(
        "thin-film + recovery",
        PlatformConfig(
            mesh_width=6,
            thin_film=replace(ThinFilmParameters(), allow_recovery=True),
        ),
    )
    run("thin-film (SDR)", PlatformConfig(mesh_width=6), routing="sdr")
    run(
        "thin-film + recovery (SDR)",
        PlatformConfig(
            mesh_width=6,
            thin_film=replace(ThinFilmParameters(), allow_recovery=True),
        ),
        routing="sdr",
    )
    for levels in (4, 16):
        run(
            f"thin-film, {levels} levels",
            PlatformConfig(mesh_width=6, battery_levels=levels),
        )
    return rows


def test_ablation_battery(benchmark, reporter):
    rows = benchmark.pedantic(run_battery_ablation, rounds=1, iterations=1)
    table = format_table(
        [
            "battery variant",
            "routing",
            "jobs",
            "wasted dead (nJ)",
            "conversion loss (nJ)",
        ],
        rows,
        title="Ablation — battery model variants (6x6 mesh)",
    )
    reporter.add("Ablation battery models", table)

    jobs = {(row[0], row[1]): row[2] for row in rows}
    # The ideal cell gives the longest EAR lifetime.
    assert jobs[("ideal", "ear")] >= jobs[("thin-film", "ear")]
    # Allowing voltage recovery helps SDR (its hot nodes die of sag).
    assert (
        jobs[("thin-film + recovery (SDR)", "sdr")]
        > jobs[("thin-film (SDR)", "sdr")]
    )
