"""EXP-AB-BAT — ablation: battery model variants.

Separates the battery model's contributions on the 6x6 mesh:

* ideal vs thin-film (how much the non-ideal cell costs EAR),
* voltage-death vs recovery-allowed (how much of SDR's collapse is
  rate-induced early death),
* battery-level quantisation (how much reporting resolution matters).

The labelled variant set is executed through the cached orchestration
runner (smoke mode shrinks the mesh and caps jobs).
"""

from dataclasses import replace

from bench_plumbing import SMOKE, bench_cap

from repro.analysis.tables import format_table
from repro.battery.thin_film import ThinFilmParameters
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.orchestration import SweepPoint

WIDTH = 4 if SMOKE else 6


def _points():
    workload = WorkloadConfig(max_jobs=bench_cap())

    def point(label, platform, routing="ear"):
        return SweepPoint(
            label=f"{label}/{routing}",
            config=SimulationConfig(
                platform=platform, routing=routing, workload=workload
            ),
            params={"variant": label, "routing": routing},
        )

    recovery_params = replace(ThinFilmParameters(), allow_recovery=True)
    points = [
        point("ideal", PlatformConfig(mesh_width=WIDTH, battery_model="ideal")),
        point("thin-film", PlatformConfig(mesh_width=WIDTH)),
        point(
            "thin-film + recovery",
            PlatformConfig(mesh_width=WIDTH, thin_film=recovery_params),
        ),
        point(
            "thin-film (SDR)",
            PlatformConfig(mesh_width=WIDTH),
            routing="sdr",
        ),
        point(
            "thin-film + recovery (SDR)",
            PlatformConfig(mesh_width=WIDTH, thin_film=recovery_params),
            routing="sdr",
        ),
    ]
    for levels in (4, 16):
        points.append(
            point(
                f"thin-film, {levels} levels",
                PlatformConfig(mesh_width=WIDTH, battery_levels=levels),
            )
        )
    return points


def run_battery_ablation(runner):
    rows = []
    for record in runner.run(_points()):
        summary = record.summary
        rows.append(
            (
                record.params["variant"],
                record.params["routing"],
                round(summary["jobs_fractional"], 1),
                round(summary["wasted_at_death_pj"] / 1e3, 1),
                round(summary["conversion_loss_pj"] / 1e3, 1),
            )
        )
    return rows


def test_ablation_battery(benchmark, reporter, sweep_runner):
    rows = benchmark.pedantic(
        run_battery_ablation, args=(sweep_runner,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "battery variant",
            "routing",
            "jobs",
            "wasted dead (nJ)",
            "conversion loss (nJ)",
        ],
        rows,
        title=f"Ablation — battery model variants ({WIDTH}x{WIDTH} mesh)",
    )
    reporter.add("Ablation battery models", table)

    jobs = {(row[0], row[1]): row[2] for row in rows}
    # The ideal cell gives the longest EAR lifetime.
    assert jobs[("ideal", "ear")] >= jobs[("thin-film", "ear")]
    if SMOKE:
        return  # job-capped variants all reach the cap
    # Allowing voltage recovery helps SDR (its hot nodes die of sag).
    assert (
        jobs[("thin-film + recovery (SDR)", "sdr")]
        > jobs[("thin-film (SDR)", "sdr")]
    )
