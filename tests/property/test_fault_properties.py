"""Property tests of the fault-injection subsystem.

The three load-bearing guarantees:

* determinism — the same seed yields the identical fault schedule and
  the identical run record, across profiles and engines;
* isolation — a run with an empty fault schedule is bit-identical to a
  fault-free run;
* safety — no packet ever traverses a link after it has been cut.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_config
from repro.faults import (
    FAULT_PROFILES,
    FaultConfig,
    build_fault_schedule,
    fabric_links,
)
from repro.mesh.topology import mesh2d
from repro.sim.et_sim import run_simulation
from repro.sim.sequential_engine import SequentialEngine

ACTIVE_PROFILES = tuple(p for p in FAULT_PROFILES if p != "none")


class TestScheduleDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        profile=st.sampled_from(ACTIVE_PROFILES),
        width=st.integers(2, 6),
    )
    def test_same_seed_same_schedule(self, seed, profile, width):
        topology = mesh2d(width)
        config = FaultConfig(profile=profile, seed=seed)
        first = build_fault_schedule(
            config, topology, num_mesh_nodes=width * width,
            horizon_frames=10_000,
        )
        second = build_fault_schedule(
            config, mesh2d(width), num_mesh_nodes=width * width,
            horizon_frames=10_000,
        )
        assert first == second
        assert len(first) > 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        profile=st.sampled_from(ACTIVE_PROFILES),
    )
    def test_events_ordered_and_internal(self, seed, profile):
        topology = mesh2d(4)
        schedule = build_fault_schedule(
            FaultConfig(profile=profile, seed=seed),
            topology,
            num_mesh_nodes=16,
            horizon_frames=10_000,
        )
        frames = [event.frame for event in schedule]
        assert frames == sorted(frames)
        links = set(fabric_links(topology, 16))
        for event in schedule:
            if event.kind == "node-kill":
                assert 0 <= event.node_a < 16
            else:
                pair = (
                    min(event.node_a, event.node_b),
                    max(event.node_a, event.node_b),
                )
                assert pair in links  # never the external source line

    def test_different_seeds_differ(self):
        topology = mesh2d(4)
        schedules = {
            build_fault_schedule(
                FaultConfig(profile="link-attrition", seed=seed),
                topology,
                num_mesh_nodes=16,
                horizon_frames=10_000,
            ).events
            for seed in range(8)
        }
        assert len(schedules) > 1


class TestRunDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        profile=st.sampled_from(ACTIVE_PROFILES),
    )
    def test_same_seed_identical_run_records(self, seed, profile):
        config = make_config(
            fault_profile=profile, fault_seed=seed, max_jobs=6
        )
        first = run_simulation(config).summary()
        second = run_simulation(config).summary()
        assert first == second

    def test_concurrent_engine_deterministic_under_faults(self):
        config = make_config(
            kind="concurrent",
            concurrency=4,
            fault_profile="link-attrition",
            fault_seed=11,
            max_jobs=12,
        )
        assert (
            run_simulation(config).summary()
            == run_simulation(config).summary()
        )


class TestEmptyScheduleIsolation:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_none_profile_bit_identical_to_fault_free(self, seed):
        # The seed of an inactive profile must be completely inert.
        fault_free = make_config(max_jobs=6)
        empty = replace(
            fault_free, faults=FaultConfig(profile="none", seed=seed)
        )
        assert (
            run_simulation(empty).summary()
            == run_simulation(fault_free).summary()
        )

    def test_zero_link_fraction_cuts_at_most_one(self):
        # max_link_fraction=0 disables attrition cuts entirely.
        config = make_config(
            faults=FaultConfig(
                profile="link-attrition", seed=1, max_link_fraction=0.0
            ),
            max_jobs=6,
        )
        assert run_simulation(config).summary()["links_cut"] == 0


class TestTearCorrelation:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        width=st.integers(3, 7),
    )
    def test_tear_bursts_cut_connected_neighbourhoods(self, seed, width):
        """Every tear burst (the link-cut events of one frame) severs a
        *connected* patch of the torn area: each cut link shares an
        endpoint with another cut link of the same burst, or with a
        link severed by an earlier tear (the schedule never re-cuts a
        severed line, so a burst extending an existing tear connects
        through it; single-link tears are trivially connected)."""
        schedule = build_fault_schedule(
            FaultConfig(profile="tear", seed=seed),
            mesh2d(width),
            num_mesh_nodes=width * width,
            horizon_frames=100_000,
        )
        bursts: dict[int, list[tuple[int, int]]] = {}
        for event in schedule:
            if event.kind == "link-cut":
                bursts.setdefault(event.frame, []).append(
                    (event.node_a, event.node_b)
                )
        assert bursts
        torn: list[tuple[int, int]] = []
        for frame in sorted(bursts):
            batch = bursts[frame]
            # Union-find over links sharing endpoints, across this
            # burst plus everything torn before it.
            components = [set(pair) for pair in batch + torn]
            merged = True
            while merged:
                merged = False
                for i in range(len(components)):
                    for j in range(i + 1, len(components)):
                        if components[i] & components[j]:
                            components[i] |= components.pop(j)
                            merged = True
                            break
                    if merged:
                        break
            holding = [
                component
                for component in components
                if any(set(pair) & component for pair in batch)
            ]
            assert len(holding) == 1, (
                f"tear burst {batch} is not a connected patch"
            )
            torn.extend(batch)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_moisture_only_degrades(self, seed):
        schedule = build_fault_schedule(
            FaultConfig(profile="moisture", seed=seed),
            mesh2d(4),
            num_mesh_nodes=16,
            horizon_frames=5_000,
        )
        assert len(schedule) > 0
        assert all(event.kind == "link-degrade" for event in schedule)


class _HopRecordingEngine(SequentialEngine):
    """Sequential engine that logs every hop with the cut-set state."""

    def __init__(self, config):
        super().__init__(config)
        self.violations: list[tuple[int, int]] = []
        #: Every hop as ``(frame, sender, receiver)``.
        self.hops: list[tuple[int, int, int]] = []

    def _transmit(self, sender, receiver, holder):
        if (sender, receiver) in self.faults.cut_links:
            self.violations.append((sender, receiver))
        self.hops.append((self.frames_done, sender, receiver))
        return super()._transmit(sender, receiver, holder)


class TestNoTrafficOverCutLinks:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        profile=st.sampled_from(("link-attrition", "wash-cycle")),
    )
    def test_sequential_never_uses_cut_links(self, seed, profile):
        config = make_config(
            fault_profile=profile,
            fault_seed=seed,
            fault_intensity=2.0,
            max_jobs=10,
        )
        engine = _HopRecordingEngine(config)
        stats = engine.run()
        assert engine.violations == []
        assert stats.verification_failures == 0

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        profile=st.sampled_from(("tear", "moisture")),
    )
    def test_correlated_profiles_never_use_cut_links(self, seed, profile):
        config = make_config(
            fault_profile=profile, fault_seed=seed, max_jobs=8
        )
        engine = _HopRecordingEngine(config)
        stats = engine.run()
        assert engine.violations == []
        assert stats.verification_failures == 0

    @pytest.mark.parametrize("seed", (0, 1, 5, 9))
    def test_post_repair_traffic_traverses_the_resewn_line(self, seed):
        """A repair must actually restore routing *over* the line: after
        a cut link is re-sewn, later traffic crosses the re-added edge
        again (not merely around it)."""
        config = make_config(
            faults=FaultConfig(
                profile="tear", seed=seed, repair_after_frames=24
            ),
            max_jobs=8,
        )
        engine = _HopRecordingEngine(config)
        stats = engine.run()
        assert engine.violations == []
        assert stats.links_repaired > 0
        repair_frames = {
            (event.node_a, event.node_b): event.frame
            for event in engine.faults.schedule
            if event.kind == "link-repair"
        }
        crossings = 0
        for (u, v), frame in repair_frames.items():
            crossings += sum(
                1
                for hop_frame, sender, receiver in engine.hops
                if hop_frame >= frame
                and {sender, receiver} == {u, v}
            )
        assert crossings > 0

    def test_concurrent_run_survives_heavy_attrition(self):
        # _transmit raises SimulationError on any cut-link traversal, so
        # a clean run is itself the safety proof for the buffered engine.
        config = make_config(
            kind="concurrent",
            concurrency=4,
            fault_profile="link-attrition",
            fault_seed=5,
            fault_intensity=4.0,
            max_jobs=15,
        )
        stats = run_simulation(config)
        assert stats.links_cut > 0
        assert stats.verification_failures == 0
