"""Property-based tests for the routing core against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.floyd_warshall import (
    NO_SUCCESSOR,
    extract_path,
    floyd_warshall_successors,
)
from repro.core.weights import BatteryWeightFunction


@st.composite
def random_weighted_graphs(draw):
    """Random directed graphs with positive weights as W-matrices."""
    size = draw(st.integers(min_value=2, max_value=12))
    density = draw(st.floats(min_value=0.2, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    weights = np.full((size, size), np.inf)
    np.fill_diagonal(weights, 0.0)
    for i in range(size):
        for j in range(size):
            if i != j and rng.random() < density:
                weights[i, j] = float(rng.uniform(0.1, 10.0))
    return weights


@settings(max_examples=60, deadline=None)
@given(random_weighted_graphs())
def test_distances_match_networkx(weights):
    size = weights.shape[0]
    distances, _ = floyd_warshall_successors(weights)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(size))
    for i in range(size):
        for j in range(size):
            if i != j and np.isfinite(weights[i, j]):
                graph.add_edge(i, j, weight=weights[i, j])
    nx_dist = dict(nx.all_pairs_dijkstra_path_length(graph))
    for i in range(size):
        for j in range(size):
            expected = nx_dist.get(i, {}).get(j, np.inf)
            assert distances[i, j] == pytest.approx(expected)


@settings(max_examples=60, deadline=None)
@given(random_weighted_graphs())
def test_successor_walks_realize_distances(weights):
    size = weights.shape[0]
    distances, successors = floyd_warshall_successors(weights)
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            if successors[i, j] == NO_SUCCESSOR:
                assert np.isinf(distances[i, j])
                continue
            path = extract_path(successors, i, j)
            walked = sum(
                weights[u, v] for u, v in zip(path, path[1:])
            )
            assert walked == pytest.approx(distances[i, j])


@settings(max_examples=60, deadline=None)
@given(random_weighted_graphs())
def test_triangle_inequality(weights):
    distances, _ = floyd_warshall_successors(weights)
    size = weights.shape[0]
    for i in range(size):
        for k in range(size):
            for j in range(size):
                assert (
                    distances[i, j]
                    <= distances[i, k] + distances[k, j] + 1e-9
                )


@settings(max_examples=100, deadline=None)
@given(
    q=st.floats(min_value=1.0, max_value=3.0),
    levels=st.integers(min_value=2, max_value=16),
)
def test_weight_function_monotone_and_unit_at_full(q, levels):
    f = BatteryWeightFunction(q=q, levels=levels)
    values = [f(level) for level in range(levels)]
    assert values[-1] == pytest.approx(1.0)
    assert all(a >= b for a, b in zip(values, values[1:]))
