"""Property tests for the cost pipeline and ECMP successor groups.

The pipeline refactor's contract is *bit-identity*: composing the
battery / wear / harvest terms through :class:`CostPipeline` must
reproduce the historical monolithic weight path exactly, on randomised
views — not just the golden points.  The ECMP properties pin the
group-validity invariants (strict distance progress, cost within
tolerance, canonical membership) that keep round-robin spreading
loop-free on any weight matrix.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostPipeline
from repro.core.floyd_warshall import (
    NO_SUCCESSOR,
    equal_cost_successors,
    floyd_warshall_successors,
)
from repro.core.view import NetworkView
from repro.core.weights import (
    BatteryWeightFunction,
    HarvestWeightFunction,
    WearWeightFunction,
    apply_harvest_bonus,
    apply_wear_penalty,
    ear_weight_matrix,
    sdr_weight_matrix,
)
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d


@st.composite
def random_views(draw, with_wear=False, with_income=False):
    """Randomised small-mesh views: batteries, deaths, blocked ports,
    and optional wear / income telemetry."""
    width = draw(st.integers(min_value=3, max_value=6))
    topo = mesh2d(width)
    size = topo.num_nodes
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    levels = 8
    alive = rng.random(size) > 0.15
    alive[0] = True  # keep at least one node alive
    battery = rng.integers(0, levels, size=size)
    blocked = frozenset(
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, size, size=3), rng.integers(0, size, size=3)
        )
        if u != v
    )
    wear = None
    if with_wear:
        wear = rng.integers(0, 6, size=(size, size))
        wear = np.minimum(wear, wear.T)
        np.fill_diagonal(wear, 0)
    income = None
    if with_income:
        income = np.round(
            rng.uniform(0.0, 40.0, size=size) * (rng.random(size) < 0.5), 3
        )
    return NetworkView(
        lengths=topo.length_matrix(),
        alive=alive,
        battery_levels=battery,
        levels=levels,
        mapping=checkerboard_mapping(topo),
        blocked_ports=blocked,
        wear=wear,
        income=income,
    )


class TestPipelineBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(random_views())
    def test_empty_pipeline_matches_sdr(self, view):
        assert np.array_equal(
            CostPipeline().weight_matrix(view), sdr_weight_matrix(view)
        )

    @settings(max_examples=40, deadline=None)
    @given(
        view=random_views(),
        q=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_battery_pipeline_matches_ear(self, view, q):
        fn = BatteryWeightFunction(q=q)
        assert np.array_equal(
            CostPipeline.ear(fn).weight_matrix(view),
            ear_weight_matrix(view, fn),
        )

    @settings(max_examples=30, deadline=None)
    @given(random_views(with_wear=True, with_income=True))
    def test_full_pipeline_matches_manual_composition(self, view):
        battery = BatteryWeightFunction()
        wear = WearWeightFunction()
        harvest = HarvestWeightFunction()
        pipeline = CostPipeline.ear(
            battery, wear_function=wear, harvest_function=harvest
        )
        manual = ear_weight_matrix(view, battery)
        manual = apply_wear_penalty(manual, view.wear, wear)
        manual = apply_harvest_bonus(manual, view, harvest)
        assert np.array_equal(pipeline.weight_matrix(view), manual)


class TestTermOrderIndependence:
    @settings(max_examples=30, deadline=None)
    @given(random_views(with_wear=True, with_income=True))
    def test_wear_and_harvest_commute(self, view):
        """Wear (link scale) and harvest (column scale) are both
        elementwise multiplications, so their order changes results
        only by float rounding."""
        battery = BatteryWeightFunction()
        wear = WearWeightFunction()
        harvest = HarvestWeightFunction()
        base = ear_weight_matrix(view, battery)
        wear_first = apply_harvest_bonus(
            apply_wear_penalty(base.copy(), view.wear, wear), view, harvest
        )
        harvest_first = apply_wear_penalty(
            apply_harvest_bonus(base.copy(), view, harvest), view.wear, wear
        )
        finite = np.isfinite(wear_first)
        assert np.array_equal(finite, np.isfinite(harvest_first))
        assert np.allclose(
            wear_first[finite], harvest_first[finite], rtol=1e-12
        )


class TestEcmpGroupValidity:
    @settings(max_examples=40, deadline=None)
    @given(random_views())
    def test_groups_progress_and_include_canonical(self, view):
        weights = sdr_weight_matrix(view)
        distances, successors = floyd_warshall_successors(weights)
        size = view.num_nodes
        rng = np.random.default_rng(0)
        pairs = zip(
            rng.integers(0, size, size=24), rng.integers(0, size, size=24)
        )
        for source, dest in ((int(s), int(d)) for s, d in pairs):
            group = equal_cost_successors(
                weights, distances, successors, source, dest
            )
            canonical = successors[source, dest]
            if source == dest or canonical == NO_SUCCESSOR:
                assert group == []
                continue
            assert canonical in group
            assert group == sorted(set(group))
            for member in group:
                # Strict progress toward the destination (loop-free)
                # at a total cost matching the optimum.
                assert distances[member, dest] < distances[source, dest]
                assert (
                    weights[source, member] + distances[member, dest]
                    <= distances[source, dest] * (1 + 1e-9)
                )
