"""The shard driver's end-to-end identity, stated as a property.

For every shard count, a real fleet that is split, has one shard
*crash on its first attempt*, is retried and finally merged must
produce the same canonical aggregate — bit for bit — as a plain
single-stream run of the same ``(distribution, fleet_seed, size)``.
Fault tolerance is not allowed to cost determinism.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.fleet import FLEET_PRESETS, run_fleet
from repro.fleet.shards import _shard_worker, run_sharded_fleet

DIST = FLEET_PRESETS["smoke"]
SEED = 77
SIZE = 9

QUIET = logging.getLogger("test.fleet.sharding")
QUIET.addHandler(logging.NullHandler())
QUIET.propagate = False


@pytest.fixture(scope="module")
def single_stream_aggregate() -> str:
    result = run_fleet(DIST, SIZE, SEED)
    return json.dumps(result.aggregator.aggregate(), sort_keys=True)


@pytest.mark.parametrize("shard_count", [1, 2, 3, 7])
def test_crash_retry_merge_is_bit_identical_to_single_stream(
    shard_count, single_stream_aggregate, tmp_path
):
    crashed: set[int] = set()
    victim = shard_count - 1  # the last shard dies once

    def crash_once(payload):
        index = payload["shard"]["index"]
        if index == victim and index not in crashed:
            crashed.add(index)
            raise RuntimeError("simulated worker crash")
        return _shard_worker(payload)

    naps: list[float] = []
    sharded = run_sharded_fleet(
        DIST, SIZE, SEED, shard_count,
        directory=tmp_path,
        inline=True,
        worker=crash_once,
        backoff_s=0.1,
        sleep=naps.append,
        logger=QUIET,
    )
    assert crashed == {victim}
    assert naps == [0.1]  # exactly one retry round
    assert json.dumps(
        sharded.result.aggregator.aggregate(), sort_keys=True
    ) == single_stream_aggregate
    # The crashed shard's extra attempt is visible in the run rows.
    attempts = {row["index"]: row["attempts"] for row in sharded.shards}
    assert attempts[victim] == 2
    assert all(
        attempts[index] == 1
        for index in attempts
        if index != victim
    )
    # Every garment was simulated exactly once per completed attempt.
    assert sharded.result.executed == SIZE
