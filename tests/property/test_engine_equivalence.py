"""Cross-engine property / metamorphic tests.

The sequential, concurrent and vector engines share one platform
(``EngineBase``) and differ only in how jobs move and when battery
draws land.  Until now only the golden smoke points pinned their
agreement; this module asserts it three-way over *randomised* small
configurations (Hypothesis):

* **Delivery** — with the concurrent engine throttled to one in-flight
  job, all three engines must complete exactly the same number of jobs
  under a job budget (and corrupt nothing).
* **Conservation** — the energy identity
  ``nominal + harvested == loads + conversion_loss + wasted + stranded``
  must close on every engine, whatever mix of faults, heterogeneous
  harvest hardware and multi-hop bus sharing is active.
* **Event counts** — fault schedules are pure functions of the
  configuration, so once the runs outlive the last scheduled event
  they must have applied identical fault counts; harvest events are
  checked against an independent oracle computed from the income
  schedule itself.

The vector engine intentionally batches draws to frame boundaries, so
EMA trajectories and exact death frames may drift from the sequential
engine; the properties above are exactly the quantities that must not.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from helpers import build_engine, make_config
from repro.faults import FaultConfig
from repro.harvest import HarvestConfig, HarvestHardware, build_harvest_schedule

#: The three engine variants under comparison, as make_config kwargs:
#: the vector engine runs the sequential workload, selected by name.
ENGINE_VARIANTS = {
    "sequential": {"kind": "sequential", "engine": "sequential"},
    "concurrent": {"kind": "concurrent", "engine": "concurrent"},
    "vector": {"kind": "sequential", "engine": "vector"},
}


def harvest_configs(seed: int) -> st.SearchStrategy[HarvestConfig]:
    """Randomised harvest sections, heterogeneous hardware included."""
    hardware = st.builds(
        HarvestHardware,
        equipped_fraction=st.sampled_from([0.25, 0.5, 1.0]),
        placement=st.sampled_from(["flex", "random", "spread"]),
        seed=st.just(seed),
        gain_spread=st.sampled_from([0.0, 0.3]),
    )
    return st.one_of(
        st.just(HarvestConfig()),
        st.builds(
            HarvestConfig,
            profile=st.sampled_from(["motion", "solar", "bus"]),
            seed=st.just(seed),
            amplitude_pj=st.floats(min_value=5.0, max_value=120.0),
            share_max_hops=st.integers(min_value=1, max_value=3),
            hardware=hardware,
        ),
    )


class TestDeliveryAgreement:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50_000),
        battery=st.sampled_from(["ideal", "thin-film"]),
        data=st.data(),
    )
    def test_engines_agree_on_jobs_completed(self, seed, battery, data):
        harvest = data.draw(harvest_configs(seed))
        summaries = {}
        for name, variant in ENGINE_VARIANTS.items():
            config = make_config(
                concurrency=1,
                battery=battery,
                max_jobs=4,
                seed=seed,
                harvest=harvest,
                **variant,
            )
            summaries[name] = build_engine(config).run().summary()
        # Every run must end on the budget, not on an early death.
        for summary in summaries.values():
            assume(summary["death_cause"] == "job-budget")
        completed = {
            name: summary["jobs_completed"]
            for name, summary in summaries.items()
        }
        assert len(set(completed.values())) == 1, completed
        for summary in summaries.values():
            assert summary["verification_failures"] == 0


class TestConservationAgreement:
    @settings(max_examples=12, deadline=None)
    @given(
        engine_name=st.sampled_from(["sequential", "concurrent", "vector"]),
        battery=st.sampled_from(["ideal", "thin-film"]),
        seed=st.integers(min_value=0, max_value=50_000),
        with_faults=st.booleans(),
        data=st.data(),
    )
    def test_identity_closes_under_the_full_feature_mix(
        self, engine_name, battery, seed, with_faults, data
    ):
        harvest = data.draw(harvest_configs(seed))
        faults = (
            FaultConfig(profile="link-attrition", seed=seed, intensity=2.0)
            if with_faults
            else FaultConfig()
        )
        variant = ENGINE_VARIANTS[engine_name]
        config = make_config(
            concurrency=2 if variant["kind"] == "concurrent" else 1,
            battery=battery,
            max_jobs=6,
            seed=seed,
            harvest=harvest,
            faults=faults,
            **variant,
        )
        engine = build_engine(config)
        stats = engine.run()
        ledger = stats.energy
        mesh = config.platform.num_mesh_nodes
        nominal = config.platform.battery_capacity_pj * mesh
        delivered = sum(
            engine.nodes[n].battery.delivered_pj for n in range(mesh)
        )
        recharged = sum(
            engine.nodes[n].battery.recharged_pj for n in range(mesh)
        )
        residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
        assert delivered == approx(ledger.node_total_pj)
        assert recharged == approx(ledger.harvested_pj + ledger.shared_pj)
        loads = ledger.node_total_pj - ledger.share_tx_pj
        assert nominal + stats.harvested_pj == approx(
            loads + stats.conversion_loss_pj + residual
        )


class TestEventCountAgreement:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50_000),
        profile=st.sampled_from(["link-attrition", "wash-cycle"]),
    )
    def test_engines_agree_on_fault_event_counts(self, seed, profile):
        """The fault schedule is engine-independent: once both runs
        outlive the last scheduled event, every fault counter agrees."""
        faults = FaultConfig(
            profile=profile, seed=seed, intensity=2.0, max_link_fraction=0.15
        )
        counters = []
        for variant in ENGINE_VARIANTS.values():
            config = make_config(
                concurrency=1,
                max_jobs=10,
                seed=seed,
                faults=faults,
                **variant,
            )
            engine = build_engine(config)
            last_event_frame = max(
                (event.frame for event in engine.faults.schedule), default=0
            )
            stats = engine.run()
            assume(stats.lifetime_frames > last_event_frame)
            counters.append(
                (
                    stats.faults_injected,
                    stats.links_cut,
                    stats.links_degraded,
                    stats.nodes_fault_killed,
                )
            )
        assert counters[0] == counters[1] == counters[2]

    @settings(max_examples=10, deadline=None)
    @given(
        engine_name=st.sampled_from(["sequential", "concurrent", "vector"]),
        profile=st.sampled_from(["motion", "solar"]),
        seed=st.integers(min_value=0, max_value=50_000),
        fraction=st.sampled_from([0.25, 0.5, 1.0]),
    )
    def test_harvest_event_counts_match_the_schedule_oracle(
        self, engine_name, profile, seed, fraction
    ):
        """Each engine's accepted-pulse count is pinned to an oracle
        computed from the income schedule alone: with no deaths and
        income below the per-frame upload drain, every positive pulse
        after frame 0 is accepted (frame 0 finds full cells), so the
        count is a pure function of the schedule and the lifetime —
        the engine-independent quantity both code paths must agree on.
        """
        # The amplitude must stay below the ~1.8 pJ upload energy every
        # living node pays each frame, so refilled cells always keep
        # headroom and no pulse is ever rejected; income starts at
        # frame 1 because frame 0's cells are only as depleted as the
        # work already dispatched — an engine-dependent quantity.
        harvest = HarvestConfig(
            profile=profile,
            seed=seed,
            amplitude_pj=1.5,
            start_frame=1,
            hardware=HarvestHardware(
                equipped_fraction=fraction, placement="random", seed=seed
            ),
        )
        config = make_config(
            concurrency=1,
            max_jobs=6,
            seed=seed,
            harvest=harvest,
            **ENGINE_VARIANTS[engine_name],
        )
        engine = build_engine(config)
        assert harvest.amplitude_pj <= engine.schedule.upload_energy_pj
        stats = engine.run()
        mesh = config.platform.num_mesh_nodes
        assume(all(engine.nodes[n].alive for n in range(mesh)))
        oracle_schedule = build_harvest_schedule(
            harvest, config.platform.make_topology(), mesh
        )
        expected = 0
        for frame in range(1, stats.lifetime_frames):
            income = oracle_schedule.income(frame)
            if income is not None:
                expected += sum(1 for value in income if value > 0.0)
        assert stats.energy.harvest_events == expected


class TestEcmpAgreement:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50_000),
        ecmp_seed=st.integers(min_value=0, max_value=1_000),
        congestion=st.booleans(),
    )
    def test_engines_agree_on_jobs_under_ecmp(
        self, seed, ecmp_seed, congestion
    ):
        """ECMP rotation state is rebuilt with every routing plan and
        advanced once per forwarded packet, so all three engines drive
        identical per-pair call sequences for the same workload — the
        spread hops, and therefore the delivery count, must agree
        three-way just as the canonical-successor path does.
        """
        from repro.config import RoutingOptions

        opts = RoutingOptions(
            congestion_aware=congestion,
            congestion_q=1.25 if congestion else 1.6,
            ecmp=True,
            ecmp_seed=ecmp_seed,
        )
        if not congestion:
            opts = RoutingOptions(ecmp=True, ecmp_seed=ecmp_seed)
        summaries = {}
        for name, variant in ENGINE_VARIANTS.items():
            config = make_config(
                concurrency=1,
                max_jobs=4,
                seed=seed,
                routing_opts=opts,
                **variant,
            )
            summaries[name] = build_engine(config).run().summary()
        for summary in summaries.values():
            assume(summary["death_cause"] == "job-budget")
        completed = {
            name: summary["jobs_completed"]
            for name, summary in summaries.items()
        }
        assert len(set(completed.values())) == 1, completed
        hops = {
            name: summary["total_hops"]
            for name, summary in summaries.items()
        }
        assert len(set(hops.values())) == 1, hops
        for summary in summaries.values():
            assert summary["verification_failures"] == 0


def approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-9)
