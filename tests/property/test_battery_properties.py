"""Property-based tests for the battery models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.ideal import IdealBattery
from repro.battery.profile import LI_FREE_THIN_FILM_PROFILE
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters

draw_sequences = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),  # energy
        st.integers(min_value=1, max_value=200),    # duration
        st.integers(min_value=0, max_value=20_000), # rest after
    ),
    min_size=1,
    max_size=60,
)


class TestIdealBatteryProperties:
    @settings(max_examples=80)
    @given(draw_sequences)
    def test_conservation_and_monotonicity(self, sequence):
        battery = IdealBattery(capacity_pj=10_000.0)
        delivered_total = 0.0
        last_soc = 1.0
        for energy, duration, rest in sequence:
            if not battery.alive:
                break
            result = battery.draw(energy, duration)
            delivered_total += result.delivered_pj
            assert result.delivered_pj <= energy + 1e-9
            soc = battery.state_of_charge
            assert soc <= last_soc + 1e-12
            last_soc = soc
            battery.rest(rest)
        assert delivered_total == pytest.approx(battery.delivered_pj)
        assert battery.delivered_pj <= 10_000.0 + 1e-6
        # Ideal battery: zero conversion loss by construction.
        assert battery.consumed_pj == pytest.approx(battery.delivered_pj)


class TestThinFilmProperties:
    @settings(max_examples=60, deadline=None)
    @given(draw_sequences)
    def test_invariants_under_arbitrary_load(self, sequence):
        battery = ThinFilmBattery(ThinFilmParameters(capacity_pj=10_000.0))
        for energy, duration, rest in sequence:
            if not battery.alive:
                break
            result = battery.draw(energy, duration)
            # Delivered never exceeds requested.
            assert result.delivered_pj <= energy + 1e-9
            # Conversion loss is non-negative.
            assert battery.consumed_pj >= battery.delivered_pj - 1e-9
            # State of charge stays in [0, 1].
            assert -1e-9 <= battery.state_of_charge <= 1.0 + 1e-9
            # Loaded voltage never exceeds the open-circuit voltage.
            if battery.alive:
                assert battery.voltage <= battery.open_circuit_voltage + 1e-9
            battery.rest(rest)
        # Total energy book-keeping: delivered + loss + residual = nominal.
        residual = battery.wasted_pj
        total = battery.delivered_pj + battery.loss_pj + residual
        assert total == pytest.approx(10_000.0, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=50.0, max_value=400.0),
        st.integers(min_value=5, max_value=50),
    )
    def test_sustained_load_never_beats_gentle_load(self, energy, duration):
        gentle = ThinFilmBattery(ThinFilmParameters(capacity_pj=5_000.0))
        hammered = ThinFilmBattery(ThinFilmParameters(capacity_pj=5_000.0))
        while hammered.alive:
            hammered.draw(energy, duration)
        while gentle.alive:
            gentle.draw(energy, duration)
            gentle.rest(50_000)
        assert gentle.delivered_pj >= hammered.delivered_pj - 1e-6

    @settings(max_examples=80)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_profile_voltage_bounded(self, dod):
        voltage = LI_FREE_THIN_FILM_PROFILE.voltage_at(dod)
        assert 2.5 <= voltage <= 4.17
