"""Property-based tests: Theorem 1 dominance and mapping invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import ApplicationProfile
from repro.core.upper_bound import (
    jobs_for_duplicates,
    optimize_duplicates,
    theorem1,
)
from repro.mesh.mapping import proportional_mapping, uniform_mapping
from repro.mesh.topology import mesh2d


@st.composite
def random_profiles(draw):
    """Random application profiles with 1..4 modules."""
    p = draw(st.integers(min_value=1, max_value=4))
    operations = {
        m: draw(st.integers(min_value=1, max_value=20))
        for m in range(1, p + 1)
    }
    compute = {
        m: draw(st.floats(min_value=1.0, max_value=500.0))
        for m in range(1, p + 1)
    }
    comm = {
        m: draw(st.floats(min_value=0.0, max_value=500.0))
        for m in range(1, p + 1)
    }
    return ApplicationProfile(
        name="random",
        operations=operations,
        computation_energy_pj=compute,
        communication_energy_pj=comm,
    )


class TestTheorem1Properties:
    @settings(max_examples=80, deadline=None)
    @given(
        random_profiles(),
        st.floats(min_value=100.0, max_value=1e6),
        st.integers(min_value=4, max_value=30),
    )
    def test_closed_form_equals_relaxed_optimum(self, profile, budget, nodes):
        bound = theorem1(profile, budget, nodes)
        jobs, _ = optimize_duplicates(profile, budget, nodes, integral=False)
        assert jobs == pytest.approx(bound.jobs, rel=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        random_profiles(),
        st.floats(min_value=100.0, max_value=1e6),
        st.integers(min_value=4, max_value=16),
    )
    def test_integer_allocations_never_beat_the_bound(
        self, profile, budget, nodes
    ):
        bound = theorem1(profile, budget, nodes)
        jobs, allocation = optimize_duplicates(
            profile, budget, nodes, integral=True
        )
        assert jobs <= bound.jobs + 1e-9
        assert sum(allocation.values()) == nodes

    @settings(max_examples=50, deadline=None)
    @given(
        random_profiles(),
        st.floats(min_value=100.0, max_value=1e6),
        st.integers(min_value=4, max_value=16),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_arbitrary_allocation_below_optimum(
        self, profile, budget, nodes, seed
    ):
        import numpy as np

        rng = np.random.default_rng(seed)
        modules = profile.modules
        if nodes < len(modules):
            return
        # Random positive integer allocation summing to `nodes`.
        cuts = sorted(
            rng.choice(
                range(1, nodes), size=len(modules) - 1, replace=False
            ).tolist()
        ) if len(modules) > 1 else []
        parts = []
        last = 0
        for cut in cuts + [nodes]:
            parts.append(cut - last)
            last = cut
        allocation = {m: float(c) for m, c in zip(modules, parts)}
        jobs_opt, _ = optimize_duplicates(
            profile, budget, nodes, integral=True
        )
        jobs_rand = jobs_for_duplicates(
            profile, budget, allocation, floor_jobs=True
        )
        assert jobs_rand <= jobs_opt + 1e-9


class TestMappingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=2, max_value=9),
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=2,
            max_size=4,
        ),
    )
    def test_proportional_mapping_invariants(self, width, height, weights):
        topo = mesh2d(width, height)
        if topo.num_nodes < len(weights):
            return
        energies = {m + 1: w for m, w in enumerate(weights)}
        mapping = proportional_mapping(topo, energies)
        counts = mapping.duplicate_counts()
        # Total preserved, every module present.
        assert sum(counts.values()) == topo.num_nodes
        assert all(c >= 1 for c in counts.values())
        # Allocation ordered like the weights (up to integer rounding).
        heaviest = max(energies, key=lambda m: energies[m])
        lightest = min(energies, key=lambda m: energies[m])
        assert counts[heaviest] >= counts[lightest] - 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_uniform_mapping_balance(self, width, modules):
        topo = mesh2d(width)
        if topo.num_nodes < modules:
            return
        mapping = uniform_mapping(topo, num_modules=modules)
        counts = mapping.duplicate_counts()
        assert max(counts.values()) - min(counts.values()) <= 1
