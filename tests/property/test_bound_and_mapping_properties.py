"""Property-based tests: Theorem 1 dominance and mapping invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import ApplicationProfile
from repro.core.upper_bound import (
    jobs_for_duplicates,
    optimize_duplicates,
    theorem1,
)
from repro.mesh.mapping import (
    harvest_proportional_mapping,
    proportional_mapping,
    uniform_mapping,
)
from repro.mesh.topology import mesh2d


@st.composite
def random_profiles(draw):
    """Random application profiles with 1..4 modules."""
    p = draw(st.integers(min_value=1, max_value=4))
    operations = {
        m: draw(st.integers(min_value=1, max_value=20))
        for m in range(1, p + 1)
    }
    compute = {
        m: draw(st.floats(min_value=1.0, max_value=500.0))
        for m in range(1, p + 1)
    }
    comm = {
        m: draw(st.floats(min_value=0.0, max_value=500.0))
        for m in range(1, p + 1)
    }
    return ApplicationProfile(
        name="random",
        operations=operations,
        computation_energy_pj=compute,
        communication_energy_pj=comm,
    )


class TestTheorem1Properties:
    @settings(max_examples=80, deadline=None)
    @given(
        random_profiles(),
        st.floats(min_value=100.0, max_value=1e6),
        st.integers(min_value=4, max_value=30),
    )
    def test_closed_form_equals_relaxed_optimum(self, profile, budget, nodes):
        bound = theorem1(profile, budget, nodes)
        jobs, _ = optimize_duplicates(profile, budget, nodes, integral=False)
        assert jobs == pytest.approx(bound.jobs, rel=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        random_profiles(),
        st.floats(min_value=100.0, max_value=1e6),
        st.integers(min_value=4, max_value=16),
    )
    def test_integer_allocations_never_beat_the_bound(
        self, profile, budget, nodes
    ):
        bound = theorem1(profile, budget, nodes)
        jobs, allocation = optimize_duplicates(
            profile, budget, nodes, integral=True
        )
        assert jobs <= bound.jobs + 1e-9
        assert sum(allocation.values()) == nodes

    @settings(max_examples=50, deadline=None)
    @given(
        random_profiles(),
        st.floats(min_value=100.0, max_value=1e6),
        st.integers(min_value=4, max_value=16),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_arbitrary_allocation_below_optimum(
        self, profile, budget, nodes, seed
    ):
        import numpy as np

        rng = np.random.default_rng(seed)
        modules = profile.modules
        if nodes < len(modules):
            return
        # Random positive integer allocation summing to `nodes`.
        cuts = sorted(
            rng.choice(
                range(1, nodes), size=len(modules) - 1, replace=False
            ).tolist()
        ) if len(modules) > 1 else []
        parts = []
        last = 0
        for cut in cuts + [nodes]:
            parts.append(cut - last)
            last = cut
        allocation = {m: float(c) for m, c in zip(modules, parts)}
        jobs_opt, _ = optimize_duplicates(
            profile, budget, nodes, integral=True
        )
        jobs_rand = jobs_for_duplicates(
            profile, budget, allocation, floor_jobs=True
        )
        assert jobs_rand <= jobs_opt + 1e-9


class TestMappingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=2, max_value=9),
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=2,
            max_size=4,
        ),
    )
    def test_proportional_mapping_invariants(self, width, height, weights):
        topo = mesh2d(width, height)
        if topo.num_nodes < len(weights):
            return
        energies = {m + 1: w for m, w in enumerate(weights)}
        mapping = proportional_mapping(topo, energies)
        counts = mapping.duplicate_counts()
        # Total preserved, every module present.
        assert sum(counts.values()) == topo.num_nodes
        assert all(c >= 1 for c in counts.values())
        # Allocation ordered like the weights (up to integer rounding).
        heaviest = max(energies, key=lambda m: energies[m])
        lightest = min(energies, key=lambda m: energies[m])
        assert counts[heaviest] >= counts[lightest] - 1

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_uniform_mapping_balance(self, width, modules):
        topo = mesh2d(width)
        if topo.num_nodes < modules:
            return
        mapping = uniform_mapping(topo, num_modules=modules)
        counts = mapping.duplicate_counts()
        assert max(counts.values()) - min(counts.values()) <= 1


class TestHarvestProportionalMappingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=2,
            max_size=4,
        ),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_uniform_income_degenerates_to_proportional(
        self, width, weights, level, bias
    ):
        """The income-aware mapping with a flat income picture — any
        constant, including the all-zero income of a harvest-free run —
        must reproduce the plain Theorem-1 mapping *exactly*, whatever
        the bias."""
        topo = mesh2d(width)
        if topo.num_nodes < len(weights):
            return
        energies = {m + 1: w for m, w in enumerate(weights)}
        income = [level] * topo.num_nodes
        aware = harvest_proportional_mapping(
            topo, energies, income, income_bias=bias
        )
        assert aware == proportional_mapping(topo, energies)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=2,
            max_size=4,
        ),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_mapping_stays_valid_under_any_income(
        self, width, weights, seed, bias
    ):
        import numpy as np

        topo = mesh2d(width)
        if topo.num_nodes < len(weights):
            return
        energies = {m + 1: w for m, w in enumerate(weights)}
        rng = np.random.default_rng(seed)
        income = rng.uniform(0.0, 50.0, size=topo.num_nodes).tolist()
        mapping = harvest_proportional_mapping(
            topo, energies, income, income_bias=bias
        )
        counts = mapping.duplicate_counts()
        # Every node mapped, every module instantiated.
        assert sum(counts.values()) == topo.num_nodes
        assert all(count >= 1 for count in counts.values())
        assert set(mapping.mapped_nodes) == set(range(topo.num_nodes))

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=3, max_value=7),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_income_aware_mapping_is_deterministic(self, width, seed, bias):
        import numpy as np

        topo = mesh2d(width)
        energies = {1: 2367.9, 2: 1710.3, 3: 3225.7}
        income = (
            np.random.default_rng(seed)
            .uniform(0.0, 50.0, size=topo.num_nodes)
            .tolist()
        )
        one = harvest_proportional_mapping(
            topo, energies, income, income_bias=bias
        )
        two = harvest_proportional_mapping(
            mesh2d(width), energies, list(income), income_bias=bias
        )
        assert one == two

    def test_concentrated_income_biases_duplicate_counts(self):
        """The second (supply-mass) pass genuinely moves Theorem-1
        duplicate counts: with the income concentrated on one corner
        block, the hungriest module captures the rich nodes in pass 1
        and needs fewer duplicates in pass 2."""
        topo = mesh2d(4)
        energies = {1: 2367.9, 2: 1710.3, 3: 3225.7}
        income = [40.0 if node < 4 else 0.0 for node in range(16)]
        plain = proportional_mapping(topo, energies).duplicate_counts()
        aware = harvest_proportional_mapping(
            topo, energies, income, income_bias=0.5
        ).duplicate_counts()
        assert plain == {1: 5, 2: 4, 3: 7}
        assert aware == {1: 6, 2: 4, 3: 6}
