"""Property-based invariants of the fleet streaming statistics.

Three contracts are pinned here:

* the **canonical layer** (exact sums, histograms, min/max, death
  tallies) is order-independent and associatively mergeable —
  shard-split aggregation is *bit-identical* to a single stream;
* the **P² stream layer** tracks ``numpy.percentile`` within
  empirically calibrated tolerances on randomised/sorted/adversarial
  arrival orders of well-spread streams, and never leaves the observed
  value range on *any* stream;
* survival curves are monotone non-increasing whatever the input.
"""

from __future__ import annotations

import json
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.aggregate import (
    BucketHistogram,
    ExactSum,
    FleetAggregator,
    P2Quantile,
)

#: Arrival orders the P² accuracy contract covers.  The tolerance
#: (fraction of the observed value range) was calibrated empirically
#: on uniform streams of >= 30 values: shuffled arrival stays within
#: ~0.11, fully sorted arrival is the estimator's worst well-behaved
#: case (~0.30 observed for p5 over 4000 trials); 0.45 leaves slack
#: without letting regressions through.  Heavily duplicated /
#: clustered streams are excluded — P² is known to drift up to half
#: the range there, which is exactly why the canonical quantiles come
#: from histograms instead.
P2_ORDERS = ("shuffled", "ascending", "descending", "sawtooth")
P2_TOLERANCE = 0.45
P2_MIN_STREAM = 30


def finite_floats(lo=-1e9, hi=1e9):
    return st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )


def _ordered(values: list[float], order: str, seed: int) -> list[float]:
    values = sorted(values)
    if order == "shuffled":
        random.Random(seed).shuffle(values)
    elif order == "descending":
        values.reverse()
    elif order == "sawtooth":
        values = values[::2] + values[1::2][::-1]
    return values


# ----------------------------------------------------------------------
# ExactSum: the float sum is a function of the multiset, not the order
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(finite_floats(), min_size=1, max_size=60),
    seed=st.integers(0, 2**32 - 1),
    split=st.integers(0, 60),
)
def test_exact_sum_is_order_independent_and_mergeable(values, seed, split):
    permuted = list(values)
    random.Random(seed).shuffle(permuted)
    straight, shuffled = ExactSum(), ExactSum()
    for v in values:
        straight.add(v)
    for v in permuted:
        shuffled.add(v)
    assert straight.value == shuffled.value == math.fsum(values)

    cut = min(split, len(values))
    left, right = ExactSum(), ExactSum()
    for v in values[:cut]:
        left.add(v)
    for v in values[cut:]:
        right.add(v)
    left.merge(right)
    assert left.value == straight.value


# ----------------------------------------------------------------------
# P²: calibrated accuracy on well-spread streams, bounded everywhere
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(P2_MIN_STREAM, 400),
    seed=st.integers(0, 2**32 - 1),
    order=st.sampled_from(P2_ORDERS),
    p=st.sampled_from((5.0, 50.0, 95.0)),
)
def test_p2_tracks_numpy_percentile_on_uniform_streams(n, seed, order, p):
    rng = random.Random(seed)
    values = [rng.uniform(0.0, 100.0) for _ in range(n)]
    stream = _ordered(values, order, seed)
    estimator = P2Quantile(p / 100.0)
    for v in stream:
        estimator.add(v)
    truth = float(np.percentile(values, p))
    span = max(values) - min(values)
    assert abs(estimator.estimate() - truth) <= P2_TOLERANCE * span


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(finite_floats(), min_size=1, max_size=120),
    p=st.sampled_from((5.0, 50.0, 95.0)),
)
def test_p2_estimate_never_leaves_the_observed_range(values, p):
    # Even on adversarial clustered/duplicated streams (where the
    # accuracy contract does not apply) the estimate must stay inside
    # [min, max] of what was actually observed.
    estimator = P2Quantile(p / 100.0)
    for v in values:
        estimator.add(v)
    assert min(values) <= estimator.estimate() <= max(values)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(finite_floats(), min_size=1, max_size=5))
def test_p2_is_exact_below_its_marker_count(values):
    estimator = P2Quantile(0.5)
    for v in values:
        estimator.add(v)
    assert estimator.estimate() == pytest.approx(
        float(np.percentile(values, 50)), rel=1e-12, abs=1e-9
    )


# ----------------------------------------------------------------------
# Survival curves: monotone non-increasing on any input
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(finite_floats(0.0, 1e6), max_size=200),
    width=st.floats(min_value=0.5, max_value=500.0),
    buckets=st.integers(1, 64),
)
def test_survival_curve_is_monotone_non_increasing(values, width, buckets):
    hist = BucketHistogram(width, buckets)
    for v in values:
        hist.add(v)
    survivors = hist.survivors()
    assert survivors[0] == len(values)
    assert all(a >= b for a, b in zip(survivors, survivors[1:]))
    assert all(s >= 0 for s in survivors)


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(finite_floats(0.0, 1e4), min_size=1, max_size=200),
    q=st.floats(min_value=0.0, max_value=100.0),
)
def test_histogram_quantile_stays_within_observed_bounds(values, q):
    hist = BucketHistogram(7.5, 32)
    for v in values:
        hist.add(v)
    value = hist.quantile(q, lo=min(values), hi=max(values))
    assert min(values) <= value <= max(values)


# ----------------------------------------------------------------------
# FleetAggregator: shard-split == single stream, bit for bit
# ----------------------------------------------------------------------
DEATH_CAUSES = ("module-unreachable", "frame-limit", "job-budget")


def summaries_strategy():
    return st.lists(
        st.tuples(
            finite_floats(0.0, 10_000.0),
            finite_floats(0.0, 500.0),
            st.sampled_from(DEATH_CAUSES),
        ),
        min_size=1,
        max_size=80,
    )


def _observe_all(aggregator: FleetAggregator, rows) -> FleetAggregator:
    for lifetime, jobs, cause in rows:
        aggregator.observe(
            {
                "lifetime_frames": lifetime,
                "jobs_fractional": jobs,
                "death_cause": cause,
            }
        )
    return aggregator


def _canonical_json(aggregator: FleetAggregator) -> str:
    return json.dumps(aggregator.aggregate(), sort_keys=True)


@settings(max_examples=60, deadline=None)
@given(
    rows=summaries_strategy(),
    seed=st.integers(0, 2**32 - 1),
    cuts=st.tuples(st.integers(0, 80), st.integers(0, 80)),
)
def test_shard_merge_is_bit_identical_to_single_stream(rows, seed, cuts):
    single = _observe_all(FleetAggregator(), rows)

    # Shuffle, split into three shards, aggregate each independently
    # (possibly on "different hosts" via the JSON state), then merge.
    shuffled = list(rows)
    random.Random(seed).shuffle(shuffled)
    a, b = sorted(min(c, len(rows)) for c in cuts)
    shards = [shuffled[:a], shuffled[a:b], shuffled[b:]]
    merged = FleetAggregator()
    for shard in shards:
        state = _observe_all(FleetAggregator(), shard).state_dict()
        shipped = json.loads(json.dumps(state))  # over the wire
        merged.merge(FleetAggregator.from_state(shipped))
    assert _canonical_json(merged) == _canonical_json(single)


@settings(max_examples=40, deadline=None)
@given(
    rows=summaries_strategy(),
    seed=st.integers(0, 2**32 - 1),
    cut=st.integers(0, 80),
)
def test_merge_is_associative(rows, seed, cut):
    shuffled = list(rows)
    random.Random(seed).shuffle(shuffled)
    third = max(1, len(shuffled) // 3)
    parts = [shuffled[:third], shuffled[third:2 * third],
             shuffled[2 * third:]]

    def agg(part):
        return _observe_all(FleetAggregator(), part)

    left = agg(parts[0]).merge(agg(parts[1])).merge(agg(parts[2]))
    inner = agg(parts[1]).merge(agg(parts[2]))
    right = agg(parts[0]).merge(inner)
    assert _canonical_json(left) == _canonical_json(right)
