"""Property-based invariants of the harvesting subsystem.

Recharge must never mint energy: a cell never holds more than its
nominal capacity, dead cells stay dead, and a run whose harvest
schedule delivers nothing is bit-identical to a harvest-free run.  The
whole-simulation energy-conservation identity gains the harvested term:

    nominal + harvested == delivered_to_loads + conversion_loss
                           + wasted + stranded
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_config
from repro.battery.ideal import IdealBattery
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters
from repro.errors import ConfigurationError
from repro.harvest import HarvestConfig, HarvestHardware
from repro.sim.et_sim import EtSim


def batteries():
    return st.sampled_from(["ideal", "thin-film"])


def fresh_battery(kind: str, capacity: float = 10_000.0):
    if kind == "ideal":
        return IdealBattery(capacity_pj=capacity)
    return ThinFilmBattery(ThinFilmParameters(capacity_pj=capacity))


@settings(max_examples=60, deadline=None)
@given(
    kind=batteries(),
    draws=st.lists(
        st.floats(min_value=0.0, max_value=800.0), min_size=1, max_size=30
    ),
    recharges=st.lists(
        st.floats(min_value=0.0, max_value=800.0), min_size=1, max_size=30
    ),
)
def test_recharge_never_exceeds_nominal_capacity(kind, draws, recharges):
    battery = fresh_battery(kind)
    for draw, refill in zip(draws, recharges):
        if not battery.alive:
            break
        battery.draw(draw, 100.0)
        if not battery.alive:
            break
        accepted = battery.recharge(refill)
        assert 0.0 <= accepted <= refill + 1e-9
        # The store never holds more than nominal: remaining capacity
        # (wasted_pj of a living cell) stays within [0, nominal].
        assert battery.wasted_pj <= battery.nominal_capacity_pj + 1e-6
        assert battery.state_of_charge <= 1.0 + 1e-9
        assert battery.recharged_pj >= 0.0


@settings(max_examples=30, deadline=None)
@given(kind=batteries(), refill=st.floats(min_value=0.0, max_value=1e6))
def test_dead_batteries_stay_dead(kind, refill):
    battery = fresh_battery(kind, capacity=500.0)
    while battery.alive:
        battery.draw(120.0, 100.0)
    assert battery.recharge(refill) == 0.0
    assert not battery.alive
    assert battery.voltage == 0.0


@pytest.mark.parametrize("kind", ["ideal", "thin-film"])
def test_full_cell_accepts_nothing(kind):
    battery = fresh_battery(kind)
    assert battery.recharge(1_000.0) == 0.0
    assert battery.state_of_charge == pytest.approx(1.0)


@pytest.mark.parametrize("kind", ["ideal", "thin-film"])
def test_recharge_rejects_negative_energy(kind):
    with pytest.raises(ConfigurationError):
        fresh_battery(kind).recharge(-1.0)


def test_thin_film_recharge_rolls_depth_of_discharge_back():
    battery = fresh_battery("thin-film")
    battery.draw(2_000.0, 10_000.0)
    dod_before = battery.depth_of_discharge
    ocv_before = battery.open_circuit_voltage
    accepted = battery.recharge(500.0)
    assert accepted == pytest.approx(500.0)
    assert battery.depth_of_discharge < dod_before
    assert battery.open_circuit_voltage >= ocv_before
    # The rate-capacity loss is a gross quantity: rolling DoD back must
    # not erase recorded losses.
    assert battery.loss_pj >= 0.0


@settings(max_examples=10, deadline=None)
@given(
    kind=st.sampled_from(["sequential", "concurrent"]),
    battery=batteries(),
    profile=st.sampled_from(["motion", "solar", "bus"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_zero_amplitude_harvest_is_bit_identical_to_none(
    kind, battery, profile, seed
):
    base = make_config(
        kind=kind,
        battery=battery,
        concurrency=2 if kind == "concurrent" else 1,
        max_jobs=6,
        seed=seed,
    )
    plain = EtSim(base).run().summary()
    zero = EtSim(
        replace(
            base,
            harvest=HarvestConfig(
                profile=profile, seed=seed, amplitude_pj=0.0
            ),
        )
    ).run().summary()
    assert zero == plain


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(["sequential", "concurrent"]),
    battery=batteries(),
    profile=st.sampled_from(["motion", "solar", "bus"]),
    seed=st.integers(min_value=0, max_value=10_000),
    amplitude=st.floats(min_value=5.0, max_value=120.0),
)
def test_energy_conservation_includes_the_harvested_term(
    kind, battery, profile, seed, amplitude
):
    config = make_config(
        kind=kind,
        battery=battery,
        concurrency=2 if kind == "concurrent" else 1,
        max_jobs=8,
        seed=seed,
        harvest=HarvestConfig(
            profile=profile, seed=seed, amplitude_pj=amplitude
        ),
    )
    engine = EtSim(config).build_engine()
    stats = engine.run()
    ledger = stats.energy
    nominal = (
        config.platform.battery_capacity_pj * config.platform.num_mesh_nodes
    )
    delivered = sum(
        engine.nodes[n].battery.delivered_pj
        for n in range(config.platform.num_mesh_nodes)
    )
    recharged = sum(
        engine.nodes[n].battery.recharged_pj
        for n in range(config.platform.num_mesh_nodes)
    )
    residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
    # Per-battery draws all land in ledger buckets (incl. bus draws).
    assert delivered == pytest.approx(ledger.node_total_pj, rel=1e-9)
    # Everything accepted into cells is external income plus bus
    # arrivals.
    assert recharged == pytest.approx(
        ledger.harvested_pj + ledger.shared_pj, rel=1e-9
    )
    # The extended identity: what the cells started with plus what the
    # fabric scavenged equals loads + losses + residual charge.  Bus
    # draws cancel out (they are delivered by donors and re-enter as
    # shared_pj minus the conversion loss, which conversion_loss_pj
    # carries).
    loads = ledger.node_total_pj - ledger.share_tx_pj
    assert nominal + stats.harvested_pj == pytest.approx(
        loads + stats.conversion_loss_pj + residual, rel=1e-9
    )
    # And the summary mirrors the ledger.
    summary = stats.summary()
    assert summary["harvested_pj"] == round(ledger.harvested_pj, 1)
    assert summary["shared_pj"] == round(ledger.shared_pj, 1)


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(["sequential", "concurrent"]),
    battery=batteries(),
    seed=st.integers(min_value=0, max_value=10_000),
    max_hops=st.integers(min_value=1, max_value=4),
    efficiency=st.floats(min_value=0.4, max_value=0.95),
)
def test_multi_hop_bus_per_hop_losses_sum_exactly(
    kind, battery, seed, max_hops, efficiency
):
    """Conservation of the multi-hop bus: the per-hop conversion losses
    plus the receiver-side rejection account for every picojoule the
    donors drew but the receivers did not bank, and the whole-run
    identity still closes."""
    config = make_config(
        kind=kind,
        battery=battery,
        concurrency=2 if kind == "concurrent" else 1,
        max_jobs=8,
        seed=seed,
        harvest=HarvestConfig(
            profile="bus",
            seed=seed,
            amplitude_pj=80.0,
            share_threshold=0.05,
            share_rate_pj=40.0,
            share_efficiency=efficiency,
            share_max_hops=max_hops,
        ),
    )
    engine = EtSim(config).build_engine()
    stats = engine.run()
    ledger = stats.energy
    # Per-hop accounting: hop losses + rejected arrivals == total loss.
    assert ledger.share_loss_pj == pytest.approx(
        ledger.share_hop_loss_pj + ledger.share_rejected_pj, rel=1e-9
    )
    assert ledger.share_loss_pj == pytest.approx(
        ledger.share_tx_pj - ledger.shared_pj, rel=1e-9
    )
    if ledger.share_tx_pj > 0:
        assert ledger.share_hops > 0
        # Arrivals can never beat the single-hop conversion bound.
        assert ledger.shared_pj <= efficiency * ledger.share_tx_pj + 1e-6
    # Relayed energy only ever appears on intermediate nodes, which a
    # single-hop bus does not have.
    relayed = sum(node.share_relay_pj for node in ledger.nodes.values())
    if max_hops == 1:
        assert relayed == 0.0
    # The whole-run identity closes with any hop count.
    mesh = config.platform.num_mesh_nodes
    nominal = config.platform.battery_capacity_pj * mesh
    residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
    loads = ledger.node_total_pj - ledger.share_tx_pj
    assert nominal + stats.harvested_pj == pytest.approx(
        loads + stats.conversion_loss_pj + residual, rel=1e-9
    )
    assert stats.summary()["share_hops"] == ledger.share_hops


@settings(max_examples=12, deadline=None)
@given(
    kind=st.sampled_from(["sequential", "concurrent"]),
    profile=st.sampled_from(["motion", "solar", "bus"]),
    seed=st.integers(min_value=0, max_value=10_000),
    fraction=st.floats(min_value=0.1, max_value=0.8),
    placement=st.sampled_from(["flex", "random", "spread"]),
)
def test_non_equipped_nodes_never_harvest(
    kind, profile, seed, fraction, placement
):
    """Hardware heterogeneity's zero-income invariant: a node without a
    generator never accepts a pulse of external income, whatever the
    profile (bus arrivals are power *sharing*, booked separately)."""
    config = make_config(
        kind=kind,
        concurrency=2 if kind == "concurrent" else 1,
        max_jobs=8,
        seed=seed,
        harvest=HarvestConfig(
            profile=profile,
            seed=seed,
            amplitude_pj=80.0,
            hardware=HarvestHardware(
                equipped_fraction=fraction, placement=placement, seed=seed
            ),
        ),
    )
    engine = EtSim(config).build_engine()
    stats = engine.run()
    equipped = engine.harvest_schedule.hardware
    mesh = config.platform.num_mesh_nodes
    assert sum(1 for gain in equipped if gain > 0) == max(
        1, round(fraction * mesh)
    )
    for node in range(mesh):
        if equipped[node] == 0.0:
            assert stats.energy.nodes[node].harvested_pj == 0.0
    # When the schedule offered income past frame 0 and everyone lived
    # to accept it, some equipped node must have harvested (a short
    # run can land entirely in idle activity windows).
    offered = any(
        engine.harvest_schedule.income(frame) is not None
        for frame in range(1, stats.lifetime_frames)
    )
    if offered and all(engine.nodes[n].alive for n in range(mesh)):
        assert stats.harvested_pj > 0


@settings(max_examples=8, deadline=None)
@given(
    kind=st.sampled_from(["sequential", "concurrent"]),
    profile=st.sampled_from(["motion", "solar", "bus"]),
    seed=st.integers(min_value=0, max_value=10_000),
    placement=st.sampled_from(["flex", "random", "spread"]),
)
def test_all_equipped_hardware_is_bit_identical_to_default(
    kind, profile, seed, placement
):
    """An explicit all-nodes-equipped spec (whatever its placement or
    seed — both are inert at fraction 1 and zero spread) must reproduce
    the homogeneous default run bit for bit."""
    base = make_config(
        kind=kind,
        concurrency=2 if kind == "concurrent" else 1,
        max_jobs=6,
        seed=seed,
        harvest=HarvestConfig(profile=profile, seed=seed),
    )
    explicit = replace(
        base,
        harvest=replace(
            base.harvest,
            hardware=HarvestHardware(
                equipped_fraction=1.0, placement=placement, seed=seed
            ),
        ),
    )
    assert EtSim(base).run().summary() == EtSim(explicit).run().summary()
