"""Property-based tests for the AES substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aes.cipher import decrypt_block, encrypt_block
from repro.aes.dataflow import AesJobDataflow
from repro.aes.gf import gf_inverse, gf_mul
from repro.aes.transforms import (
    add_round_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)

blocks = st.binary(min_size=16, max_size=16)
keys128 = st.binary(min_size=16, max_size=16)
keys_any = st.sampled_from([16, 24, 32]).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
)
gf_bytes = st.integers(min_value=0, max_value=255)


class TestGfProperties:
    @given(gf_bytes, gf_bytes)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(gf_bytes, gf_bytes, gf_bytes)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(gf_bytes, gf_bytes, gf_bytes)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(st.integers(min_value=1, max_value=255))
    def test_inverse_property(self, a):
        assert gf_mul(a, gf_inverse(a)) == 1


class TestTransformProperties:
    @given(blocks)
    def test_sub_bytes_round_trip(self, block):
        assert inv_sub_bytes(sub_bytes(block)) == block

    @given(blocks)
    def test_shift_rows_round_trip(self, block):
        assert inv_shift_rows(shift_rows(block)) == block

    @given(blocks)
    def test_mix_columns_round_trip(self, block):
        assert inv_mix_columns(mix_columns(block)) == block

    @given(blocks, blocks)
    def test_add_round_key_involution(self, block, key):
        assert add_round_key(add_round_key(block, key), key) == block

    @given(blocks)
    def test_transforms_preserve_length(self, block):
        for transform in (sub_bytes, shift_rows, mix_columns):
            assert len(transform(block)) == 16

    @given(blocks, blocks)
    def test_mix_columns_linear_over_xor(self, a, b):
        xor = bytes(x ^ y for x, y in zip(a, b))
        mixed_xor = bytes(
            x ^ y for x, y in zip(mix_columns(a), mix_columns(b))
        )
        assert mix_columns(xor) == mixed_xor


class TestCipherProperties:
    @settings(max_examples=40)
    @given(blocks, keys_any)
    def test_encrypt_decrypt_round_trip(self, plaintext, key):
        assert decrypt_block(encrypt_block(plaintext, key), key) == plaintext

    @settings(max_examples=25)
    @given(blocks, keys128)
    def test_dataflow_agrees_with_cipher(self, plaintext, key):
        flow = AesJobDataflow(key)
        assert flow.run_reference(plaintext) == encrypt_block(plaintext, key)

    @settings(max_examples=25)
    @given(blocks, keys128)
    def test_encryption_not_identity(self, plaintext, key):
        # AES has no fixed blocks in practice for random inputs; more
        # robustly: encrypting twice differs from encrypting once.
        once = encrypt_block(plaintext, key)
        twice = encrypt_block(once, key)
        assert once != twice or plaintext == once
