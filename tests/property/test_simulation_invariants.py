"""Property-based whole-simulation invariants.

The strongest checks in the suite: for randomly drawn (small) platform
configurations the finished simulation must respect Theorem 1, conserve
energy, and functionally verify every completed job.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import bound_for
from repro.config import (
    PlatformConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.sim.et_sim import EtSim


@st.composite
def small_configs(draw):
    """Small random platforms that simulate in well under a second."""
    width = draw(st.integers(min_value=3, max_value=5))
    routing = draw(st.sampled_from(["ear", "sdr"]))
    battery = draw(st.sampled_from(["ideal", "thin-film"]))
    levels = draw(st.sampled_from([4, 8, 16]))
    q = draw(st.floats(min_value=1.05, max_value=2.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    mapping = draw(st.sampled_from(["checkerboard", "uniform"]))
    return SimulationConfig(
        platform=PlatformConfig(
            mesh_width=width,
            battery_model=battery,
            battery_levels=levels,
            mapping_strategy=mapping,
            # Shrink the budget so random runs finish quickly.
            battery_capacity_pj=15_000.0,
        ),
        workload=WorkloadConfig(seed=seed, max_frames=20_000),
        routing=routing,
        weight_q=q,
    )


@settings(max_examples=20, deadline=None)
@given(small_configs())
def test_simulation_never_beats_theorem1(config):
    stats = EtSim(config).run()
    bound = bound_for(config)
    assert stats.jobs_fractional <= bound.jobs + 1e-6


@settings(max_examples=20, deadline=None)
@given(small_configs())
def test_energy_conservation_holds(config):
    engine = EtSim(config).build_engine()
    stats = engine.run()
    nominal = (
        config.platform.battery_capacity_pj
        * config.platform.num_mesh_nodes
    )
    delivered = sum(
        engine.nodes[n].battery.delivered_pj
        for n in range(config.platform.num_mesh_nodes)
    )
    residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
    assert delivered == pytest.approx(stats.energy.node_total_pj, rel=1e-9)
    assert nominal == pytest.approx(
        delivered + stats.conversion_loss_pj + residual, rel=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(small_configs())
def test_all_completed_jobs_verify(config):
    stats = EtSim(config).run()
    assert stats.verification_failures == 0


@settings(max_examples=15, deadline=None)
@given(small_configs())
def test_death_cause_is_always_classified(config):
    stats = EtSim(config).run()
    assert stats.death_cause in (
        "module-unreachable",
        "source-cut",
        "controller-dead",
        "frame-budget",
        "job-budget",
        "stalled",
    )
