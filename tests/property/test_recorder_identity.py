"""Telemetry must never change what the simulation computes.

The zero-overhead claim has two halves.  The CI overhead guard
(``scripts/check_trace_overhead.py``) owns the wall-clock half; this
module owns the correctness half:

* a run with the default :class:`~repro.telemetry.NullRecorder` — or
  with a full :class:`~repro.telemetry.TraceRecorder` attached — must
  produce a summary bit-identical to a recorder-free run, on every
  engine, over randomised configurations;
* the deterministic trace channel must be a pure function of the
  configuration: same config, same ``deterministic_lines()``, across
  repeats;
* the acceptance trace (congestion-relief smoke) must carry re-plan
  events with per-cost-term attribution.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_config
from repro.faults import FaultConfig
from repro.harvest import HarvestConfig
from repro.sim.et_sim import run_simulation
from repro.telemetry import NULL_RECORDER, TraceRecorder

#: make_config kwargs selecting each engine (mirrors
#: tests/property/test_engine_equivalence.py).
ENGINE_VARIANTS = {
    "sequential": {"kind": "sequential", "engine": "sequential"},
    "concurrent": {"kind": "concurrent", "engine": "concurrent"},
    "vector": {"kind": "sequential", "engine": "vector"},
}


def feature_mix(seed: int, featured: bool) -> dict:
    """A config slice that exercises the chatty telemetry paths."""
    if not featured:
        return {}
    return {
        "faults": FaultConfig(
            profile="link-attrition", seed=seed, intensity=2.0
        ),
        "harvest": HarvestConfig(
            profile="motion", seed=seed, amplitude_pj=40.0
        ),
    }


class TestSummaryBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        engine_name=st.sampled_from(sorted(ENGINE_VARIANTS)),
        seed=st.integers(min_value=0, max_value=50_000),
        featured=st.booleans(),
    )
    def test_recorders_never_change_the_summary(
        self, engine_name, seed, featured
    ):
        """Recorder-free vs NullRecorder vs TraceRecorder: the summary
        dict (the golden-fixture form) must be bit-identical.

        Summaries — not stats objects — are compared because
        ``SimulationStats`` holds an :class:`EnergyLedger` whose
        dataclass equality is identity-based.
        """
        config = make_config(
            concurrency=2 if engine_name == "concurrent" else 1,
            max_jobs=4,
            seed=seed,
            **feature_mix(seed, featured),
            **ENGINE_VARIANTS[engine_name],
        )
        bare = run_simulation(config).summary()
        null = run_simulation(config, NULL_RECORDER).summary()
        traced = run_simulation(config, TraceRecorder()).summary()
        assert bare == null == traced

    def test_golden_smoke_point_is_unchanged_under_tracing(self):
        """The congestion-relief acceptance point, traced, must match
        its recorder-free summary exactly."""
        from repro.orchestration import build_scenario

        point = next(
            p
            for p in build_scenario("congestion-relief", scale="smoke")
            if p.label == "4x4/relief"
        )
        bare = run_simulation(point.config).summary()
        traced = run_simulation(point.config, TraceRecorder()).summary()
        assert bare == traced


class TestTraceDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(
        engine_name=st.sampled_from(sorted(ENGINE_VARIANTS)),
        seed=st.integers(min_value=0, max_value=50_000),
    )
    def test_deterministic_lines_repeat_exactly(self, engine_name, seed):
        config = make_config(
            concurrency=2 if engine_name == "concurrent" else 1,
            max_jobs=3,
            seed=seed,
            **ENGINE_VARIANTS[engine_name],
        )
        traces = []
        for _ in range(2):
            recorder = TraceRecorder()
            run_simulation(config, recorder)
            traces.append(recorder.deterministic_lines())
        assert traces[0] == traces[1]
        assert traces[0], "a traced run must produce trace lines"

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50_000))
    def test_timers_stay_out_of_the_deterministic_channel(self, seed):
        config = make_config(max_jobs=3, seed=seed, engine="sequential")
        recorder = TraceRecorder()
        run_simulation(config, recorder)
        lines = recorder.lines()
        assert lines[-1]["kind"] == "timers"
        for line in recorder.deterministic_lines():
            assert line["kind"] != "timers"
            assert "elapsed_s" not in line


class TestAcceptanceTrace:
    def test_relief_replans_carry_cost_term_attribution(self):
        """The ISSUE acceptance criterion: a traced congestion-relief
        smoke run emits re-plan events whose cost attribution names the
        battery and congestion pipeline terms."""
        from repro.orchestration import build_scenario

        point = next(
            p
            for p in build_scenario("congestion-relief", scale="smoke")
            if p.label == "4x4/relief"
        )
        recorder = TraceRecorder()
        run_simulation(point.config, recorder)
        replans = [
            line
            for line in recorder.events
            if line["kind"] == "event" and line["event"] == "replan"
        ]
        assert replans, "a relief run must re-plan at least once"
        causes = {cause for line in replans for cause in line["causes"]}
        assert "bootstrap" in causes
        assert "load-level" in causes
        terms = {
            row["term"] for line in replans for row in line["terms"]
        }
        assert {"battery", "congestion"} <= terms
        # Attribution rows quantify how hard each term scaled links.
        for line in replans:
            for row in line["terms"]:
                assert row["links_scaled"] >= 0
                assert row["max_factor"] >= row["min_factor"] > 0.0

    def test_every_engine_emits_frames_and_run_end(self):
        for engine_name, variant in ENGINE_VARIANTS.items():
            config = make_config(
                concurrency=2 if engine_name == "concurrent" else 1,
                max_jobs=3,
                seed=11,
                **variant,
            )
            recorder = TraceRecorder()
            run_simulation(config, recorder)
            kinds = {line["kind"] for line in recorder.events}
            assert "frame" in kinds, engine_name
            ends = [
                line
                for line in recorder.events
                if line.get("event") == "run-end"
            ]
            assert len(ends) == 1, engine_name
            assert ends[-1] is recorder.events[-1], engine_name
