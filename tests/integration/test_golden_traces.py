"""Golden-trace regression tests.

One smoke point of each paper grid (fig7, fig8, table2) has its full
``SimulationStats.summary()`` checked in under ``tests/golden/``.  These
tests assert bit-identical replay through both sweep runners, so any
future "behaviour-identical" hot-path optimisation is verified against
stored truth rather than against itself.

Regenerating (only after an *intentional* behaviour change — bump
``CACHE_SCHEMA_VERSION`` alongside):

    PYTHONPATH=src python -c "
    import json, pathlib
    from repro.orchestration import build_scenario
    from repro.sim.et_sim import run_simulation
    for scenario, label, filename in [
        ('fig7', '4x4/ear', 'fig7_smoke_4x4_ear.json'),
        ('fig8', '4x4/1ctl', 'fig8_smoke_4x4_1ctl.json'),
        ('table2', '4x4/ear', 'table2_smoke_4x4_ear.json'),
        ('tear-repair', '4x4/ear', 'tear_repair_smoke_4x4_ear.json'),
        ('tear-repair', '4x4/ear/conc',
         'tear_repair_smoke_4x4_ear_conc.json'),
        ('harvest-motion', '4x4/ear', 'harvest_motion_smoke_4x4_ear.json'),
        ('harvest-motion', '4x4/ear/conc',
         'harvest_motion_smoke_4x4_ear_conc.json'),
    ]:
        point = next(p for p in build_scenario(scenario, scale='smoke')
                     if p.label == label)
        payload = {'scenario': scenario, 'scale': 'smoke', 'label': label,
                   'summary': run_simulation(point.config).summary()}
        pathlib.Path('tests/golden', filename).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + '\n')
    "
"""

import json
from pathlib import Path

import pytest

from repro.orchestration import (
    ParallelSweepRunner,
    SequentialSweepRunner,
    build_scenario,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

CASES = [
    ("fig7", "4x4/ear", "fig7_smoke_4x4_ear.json"),
    ("fig8", "4x4/1ctl", "fig8_smoke_4x4_1ctl.json"),
    ("table2", "4x4/ear", "table2_smoke_4x4_ear.json"),
    # One tear-repair smoke point per engine: the sequential point and
    # the concurrent (buffered) point both cut and re-sew three links.
    ("tear-repair", "4x4/ear", "tear_repair_smoke_4x4_ear.json"),
    ("tear-repair", "4x4/ear/conc", "tear_repair_smoke_4x4_ear_conc.json"),
    # One harvest-motion smoke point per engine: both recharge cells
    # from the motion income schedule (harvested_pj > 0 in both).
    ("harvest-motion", "4x4/ear", "harvest_motion_smoke_4x4_ear.json"),
    (
        "harvest-motion",
        "4x4/ear/conc",
        "harvest_motion_smoke_4x4_ear_conc.json",
    ),
]


def golden(filename: str) -> dict:
    return json.loads((GOLDEN_DIR / filename).read_text(encoding="utf-8"))


@pytest.mark.parametrize("scenario,label,filename", CASES)
def test_sequential_replay_is_bit_identical(scenario, label, filename):
    expected = golden(filename)
    points = [
        point
        for point in build_scenario(scenario, scale="smoke")
        if point.label == label
    ]
    assert len(points) == 1, f"golden point {label} missing from {scenario}"
    records = SequentialSweepRunner().run(points)
    assert records[0].summary == expected["summary"]


@pytest.mark.parametrize("scenario,label,filename", CASES)
def test_parallel_replay_is_bit_identical(scenario, label, filename):
    # The whole smoke grid goes through the pool so the golden point is
    # executed alongside siblings, exactly as `bench --smoke` runs it.
    expected = golden(filename)
    records = ParallelSweepRunner(max_workers=2).run(
        build_scenario(scenario, scale="smoke")
    )
    record = next(r for r in records if r.label == label)
    assert record.summary == expected["summary"]


def test_golden_fixtures_carry_their_identity():
    # The stored files name the scenario/scale/label they were cut from,
    # so a mismatched regeneration is caught by inspection.
    for scenario, label, filename in CASES:
        payload = golden(filename)
        assert payload["scenario"] == scenario
        assert payload["label"] == label
        assert payload["scale"] == "smoke"
        assert payload["summary"]["verification_failures"] == 0
