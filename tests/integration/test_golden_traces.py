"""Golden-trace regression tests.

One smoke point of each paper grid (fig7, fig8, table2) — plus one per
engine for the tear-repair, harvest-motion and harvest-mapping families
— has its full ``SimulationStats.summary()`` checked in under
``tests/golden/``.  These tests assert bit-identical replay through
both sweep runners, so any future "behaviour-identical" hot-path
optimisation is verified against stored truth rather than against
itself.

The case list is :data:`repro.orchestration.GOLDEN_SMOKE_POINTS` — one
source of truth shared with the regeneration helper.  Regenerate (only
after an *intentional* behaviour change — bump
``CACHE_SCHEMA_VERSION`` alongside) with:

    PYTHONPATH=src python -m repro regen-golden
"""

import json
from pathlib import Path

import pytest

from repro.orchestration import (
    GOLDEN_SMOKE_POINTS,
    ParallelSweepRunner,
    SequentialSweepRunner,
    build_scenario,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

CASES = list(GOLDEN_SMOKE_POINTS)


def golden(filename: str) -> dict:
    return json.loads((GOLDEN_DIR / filename).read_text(encoding="utf-8"))


@pytest.mark.parametrize("scenario,label,filename", CASES)
def test_sequential_replay_is_bit_identical(scenario, label, filename):
    expected = golden(filename)
    points = [
        point
        for point in build_scenario(scenario, scale="smoke")
        if point.label == label
    ]
    assert len(points) == 1, f"golden point {label} missing from {scenario}"
    records = SequentialSweepRunner().run(points)
    assert records[0].summary == expected["summary"]


@pytest.mark.parametrize("scenario,label,filename", CASES)
def test_parallel_replay_is_bit_identical(scenario, label, filename):
    # The whole smoke grid goes through the pool so the golden point is
    # executed alongside siblings, exactly as `bench --smoke` runs it.
    expected = golden(filename)
    records = ParallelSweepRunner(max_workers=2).run(
        build_scenario(scenario, scale="smoke")
    )
    record = next(r for r in records if r.label == label)
    assert record.summary == expected["summary"]


def test_golden_fixtures_carry_their_identity():
    # The stored files name the scenario/scale/label they were cut from,
    # so a mismatched regeneration is caught by inspection.
    for scenario, label, filename in CASES:
        payload = golden(filename)
        assert payload["scenario"] == scenario
        assert payload["label"] == label
        assert payload["scale"] == "smoke"
        assert payload["summary"]["verification_failures"] == 0
