"""Integration tests: parallel/sequential parity, caching, determinism.

These exercise real worker processes, so grids are kept tiny (the
``fig7`` smoke grid: 4x4 EAR and SDR, job-capped).
"""

import pytest

from repro.analysis.sweep import run_sweep, sweep_mesh_sizes
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.orchestration import (
    ParallelSweepRunner,
    SequentialSweepRunner,
    SweepCache,
    build_scenario,
)


@pytest.fixture(scope="module")
def fig7_smoke_points():
    return build_scenario("fig7", scale="smoke")


@pytest.fixture(scope="module")
def sequential_records(fig7_smoke_points):
    return SequentialSweepRunner().run(fig7_smoke_points)


class TestParity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_records_bit_identical(
        self, fig7_smoke_points, sequential_records, workers
    ):
        parallel = ParallelSweepRunner(max_workers=workers).run(
            fig7_smoke_points
        )
        assert [r.record() for r in parallel] == [
            r.record() for r in sequential_records
        ]
        assert [r.config_hash for r in parallel] == [
            r.config_hash for r in sequential_records
        ]

    def test_rerun_is_deterministic(
        self, fig7_smoke_points, sequential_records
    ):
        again = SequentialSweepRunner().run(fig7_smoke_points)
        assert [r.record() for r in again] == [
            r.record() for r in sequential_records
        ]


class TestCachedRuns:
    def test_repeated_parallel_run_hits_cache(
        self, tmp_path, fig7_smoke_points
    ):
        cache = SweepCache(tmp_path)
        first = ParallelSweepRunner(max_workers=2, cache=cache).run(
            fig7_smoke_points
        )
        assert cache.misses == len(fig7_smoke_points)
        assert len(cache) == len(fig7_smoke_points)

        cache.reset_counters()
        second = ParallelSweepRunner(max_workers=2, cache=cache).run(
            fig7_smoke_points
        )
        assert cache.hits == len(fig7_smoke_points)
        assert cache.misses == 0
        assert all(r.cached for r in second)
        assert [r.summary for r in second] == [r.summary for r in first]

    def test_cache_shared_between_runner_kinds(
        self, tmp_path, fig7_smoke_points
    ):
        cache = SweepCache(tmp_path)
        SequentialSweepRunner(cache=cache).run(fig7_smoke_points)
        cache.reset_counters()
        records = ParallelSweepRunner(max_workers=2, cache=cache).run(
            fig7_smoke_points
        )
        assert cache.hits == len(fig7_smoke_points)
        assert all(r.cached for r in records)


class TestSweepHarnessIntegration:
    def tiny(self, **kwargs):
        return SimulationConfig(
            platform=PlatformConfig(mesh_width=4),
            workload=WorkloadConfig(max_jobs=2, max_frames=20_000),
            **kwargs,
        )

    def test_run_sweep_through_parallel_runner(self):
        sequential = run_sweep(
            {"a": self.tiny(routing="ear"), "b": self.tiny(routing="sdr")}
        )
        parallel = run_sweep(
            {"a": self.tiny(routing="ear"), "b": self.tiny(routing="sdr")},
            runner=ParallelSweepRunner(max_workers=2),
        )
        assert [r.record() for r in parallel] == [
            r.record() for r in sequential
        ]

    def test_sweep_mesh_sizes_through_parallel_runner(self):
        base = self.tiny()
        sequential = sweep_mesh_sizes(base, widths=(4,))
        parallel = sweep_mesh_sizes(
            base, widths=(4,), runner=ParallelSweepRunner(max_workers=2)
        )
        assert [r.record() for r in parallel] == [
            r.record() for r in sequential
        ]

    def test_cached_sweep_results_expose_summary(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = self.tiny()
        sweep_mesh_sizes(
            base, widths=(4,), runner=SequentialSweepRunner(cache=cache)
        )
        results = sweep_mesh_sizes(
            base, widths=(4,), runner=SequentialSweepRunner(cache=cache)
        )
        for result in results:
            assert result.stats is None  # served from cache
            assert result.jobs_fractional == 2.0
            assert result.record()["jobs_completed"] == 2
