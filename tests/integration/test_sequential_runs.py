"""Integration tests: full sequential et_sim runs."""

import pytest

from helpers import build_engine, make_config
from repro.config import ControlConfig
from repro.sim.et_sim import run_simulation


def run(width=4, routing="ear", battery="thin-film", **workload_kwargs):
    return run_simulation(
        make_config(
            mesh_width=width,
            routing=routing,
            battery=battery,
            **workload_kwargs,
        )
    )


class TestBasicRuns:
    def test_ear_beats_sdr_on_4x4(self):
        ear = run(routing="ear")
        sdr = run(routing="sdr")
        assert ear.jobs_fractional > 3 * sdr.jobs_fractional

    def test_jobs_complete_and_verify(self):
        stats = run(max_jobs=5)
        assert stats.jobs_completed == 5
        assert stats.verification_failures == 0
        assert stats.death_cause == "job-budget"

    def test_system_dies_of_module_unreachable(self):
        stats = run(routing="ear")
        assert stats.death_cause == "module-unreachable"
        assert stats.jobs_completed > 10

    def test_deterministic_given_seed(self):
        a = run(seed=123)
        b = run(seed=123)
        assert a.jobs_fractional == b.jobs_fractional
        assert a.lifetime_frames == b.lifetime_frames

    def test_different_seeds_still_same_job_count(self):
        # Plaintext content must not change energy behaviour (packet
        # energy is size-based), so job counts agree across seeds.
        a = run(seed=1)
        b = run(seed=2)
        assert a.jobs_completed == b.jobs_completed

    def test_ideal_battery_outlives_thin_film(self):
        ideal = run(battery="ideal")
        thin = run(battery="thin-film")
        assert ideal.jobs_fractional >= thin.jobs_fractional

    def test_partial_progress_reported(self):
        stats = run(routing="ear")
        assert 0.0 <= stats.partial_progress < 1.0


class TestEnergyAccounting:
    def test_energy_conservation(self):
        engine = build_engine(make_config(mesh_width=4, routing="ear"))
        stats = engine.run()
        ledger = stats.energy

        delivered = sum(
            engine.nodes[n].battery.delivered_pj
            for n in range(16)
        )
        # Everything delivered by node batteries is accounted in the
        # node-side buckets.
        assert delivered == pytest.approx(ledger.node_total_pj, rel=1e-9)

        # Nominal capacity = delivered + conversion loss + residual.
        nominal = 16 * 60_000.0
        residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
        assert nominal == pytest.approx(
            delivered + stats.conversion_loss_pj + residual, rel=1e-9
        )

    def test_control_overhead_small_on_4x4(self):
        stats = run(routing="ear")
        # Paper Sec 7.1: 2.8 % on the 4x4 mesh.
        assert 0.005 < stats.control_overhead_fraction < 0.06

    def test_sdr_strands_most_of_the_energy(self):
        stats = run(routing="sdr")
        nominal = 16 * 60_000.0
        # SDR dies with the overwhelming share of energy unused.
        assert stats.stranded_alive_pj > 0.6 * nominal

    def test_hops_and_recomputes_counted(self):
        stats = run(routing="ear")
        assert stats.total_hops > stats.jobs_completed * 20
        assert stats.recompute_count > 10


class TestBudgets:
    def test_frame_budget_stops_runaway(self):
        stats = run_simulation(make_config(max_frames=20))
        assert stats.death_cause == "frame-budget"
        assert stats.lifetime_frames == 20

    def test_job_budget(self):
        stats = run(max_jobs=2)
        assert stats.jobs_completed == 2


class TestControllerDeath:
    def test_single_weak_controller_ends_the_system(self):
        config = make_config(
            control=ControlConfig(
                num_controllers=1,
                controller_battery="ideal",
                controller_capacity_pj=5_000.0,
            ),
        )
        stats = run_simulation(config)
        assert stats.death_cause == "controller-dead"

    def test_more_controllers_never_hurt(self):
        jobs = []
        for count in (1, 2, 4):
            config = make_config(
                control=ControlConfig(
                    num_controllers=count,
                    controller_battery="thin-film",
                ),
            )
            jobs.append(run_simulation(config).jobs_fractional)
        assert jobs[0] <= jobs[1] <= jobs[2]


class TestReturnToSink:
    def test_sink_return_costs_jobs(self):
        from dataclasses import replace

        without = make_config(mesh_width=4)
        with_return = replace(
            without, platform=replace(without.platform, return_to_sink=True)
        )
        jobs_with = run_simulation(with_return).jobs_fractional
        jobs_without = run_simulation(without).jobs_fractional
        assert jobs_with < jobs_without
        assert jobs_with > 0
