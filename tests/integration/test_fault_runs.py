"""Integration tests: full runs under fault injection.

The acceptance pairing: a faulty run must diverge from its fault-free
twin (same platform, same workload, same seeds) while two same-seed
faulty runs stay bit-identical.
"""

from __future__ import annotations

import pytest

from helpers import build_engine, make_config
from repro.analysis.faults import (
    fault_free_twin,
    fault_impact,
    fault_impact_for,
)
from repro.faults import FaultConfig
from repro.sim.et_sim import run_simulation


class TestFaultyVersusTwin:
    def test_faulty_run_diverges_and_replays_bit_identically(self):
        faulty_config = make_config(
            fault_profile="link-attrition", fault_seed=7
        )
        faulty_a = run_simulation(faulty_config).summary()
        faulty_b = run_simulation(faulty_config).summary()
        baseline = run_simulation(fault_free_twin(faulty_config)).summary()

        assert faulty_a == faulty_b  # same-seed twins are bit-identical
        assert faulty_a != baseline  # physical faults changed the run
        assert faulty_a["links_cut"] > 0
        assert baseline["links_cut"] == 0

    def test_attrition_costs_delivery(self):
        impact = fault_impact_for(
            make_config(fault_profile="link-attrition", fault_seed=7)
        )
        assert impact["links_cut"] > 0
        assert impact["delivery_loss"] > 0
        assert 0.0 < impact["delivery_loss_fraction"] < 1.0

    def test_node_dropout_shortens_lifetime(self):
        impact = fault_impact_for(
            make_config(fault_profile="node-dropout", fault_seed=3)
        )
        assert impact["nodes_fault_killed"] > 0
        assert impact["lifetime_delta_frames"] < 0

    def test_impact_record_is_consistent(self):
        config = make_config(fault_profile="wash-cycle", fault_seed=2)
        faulty = run_simulation(config).summary()
        baseline = run_simulation(fault_free_twin(config)).summary()
        impact = fault_impact(baseline, faulty)
        assert impact["jobs_baseline"] == baseline["jobs_fractional"]
        assert impact["jobs_faulty"] == faulty["jobs_fractional"]
        assert impact["links_degraded"] == faulty["links_degraded"]


def wash_only(factor: float = 3.0, frames: int = 16) -> "FaultConfig":
    """Wash-cycle profile with permanent cuts disabled: pure transient
    degradation, connectivity guaranteed intact."""
    return FaultConfig(
        profile="wash-cycle",
        seed=9,
        period_frames=2,
        degrade_factor=factor,
        degrade_frames=frames,
        max_link_fraction=0.0,
    )


class TestDegradationSemantics:
    def test_degradation_only_wash_preserves_connectivity(self):
        stats = run_simulation(make_config(faults=wash_only(), max_jobs=8))
        assert stats.links_degraded > 0
        assert stats.links_cut == 0
        assert stats.jobs_completed == 8

    def test_degradation_raises_transport_energy(self):
        base_tx = run_simulation(make_config(max_jobs=8)).energy.data_tx_pj
        worn_tx = run_simulation(
            make_config(faults=wash_only(factor=6.0), max_jobs=8)
        ).energy.data_tx_pj
        assert worn_tx > base_tx

    def test_degradation_expires_and_restores_lengths(self):
        engine = build_engine(
            make_config(faults=wash_only(frames=4), max_jobs=8)
        )
        engine.run()
        assert engine.links_degraded > 0
        # Flush any still-active transients the way a frame would, then
        # check the working matrix is back to pristine (no cuts here).
        for u, v in engine.faults.expire_degradations(10**9):
            engine.lengths[u, v] = engine._base_lengths[u, v]
            engine.lengths[v, u] = engine._base_lengths[v, u]
        assert (engine.lengths == engine._base_lengths).all()


class TestEngineStateUnderFaults:
    def test_cut_links_leave_topology_and_alive_set_consistent(self):
        config = make_config(
            fault_profile="link-attrition", fault_seed=7, max_jobs=10
        )
        engine = build_engine(config)
        engine.run()
        for u, v in engine.faults.cut_links:
            assert not engine.topology.has_edge(u, v)
            assert engine.lengths[u, v] == float("inf")

    def test_fault_killed_nodes_report_dead_with_charged_cells(self):
        config = make_config(fault_profile="node-dropout", fault_seed=3)
        engine = build_engine(config)
        stats = engine.run()
        killed = [
            node
            for node in range(engine.num_mesh_nodes)
            if engine.nodes[node].fault_killed
        ]
        assert len(killed) == stats.nodes_fault_killed
        for node in killed:
            assert not engine.nodes[node].alive
            assert engine.nodes[node].battery.alive  # cell still charged
            assert node not in engine._alive_ids()

    def test_energy_conservation_holds_under_faults(self):
        config = make_config(fault_profile="link-attrition", fault_seed=7)
        engine = build_engine(config)
        stats = engine.run()
        delivered = sum(
            engine.nodes[n].battery.delivered_pj
            for n in range(engine.num_mesh_nodes)
        )
        assert delivered == pytest.approx(
            stats.energy.node_total_pj, rel=1e-9
        )
        nominal = engine.num_mesh_nodes * 60_000.0
        residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
        assert nominal == pytest.approx(
            delivered + stats.conversion_loss_pj + residual, rel=1e-9
        )

    def test_deadlock_recovery_survives_attrition(self):
        # Buffered congestion plus live topology changes: the recovery
        # protocol must still fire and still make progress.
        config = make_config(
            kind="concurrent",
            concurrency=8,
            buffers=1,
            mesh_width=6,
            fault_profile="link-attrition",
            fault_seed=5,
            max_jobs=25,
        )
        stats = run_simulation(config)
        assert stats.jobs_completed > 0
        assert stats.verification_failures == 0
