"""Integration tests: full runs under fault injection.

The acceptance pairing: a faulty run must diverge from its fault-free
twin (same platform, same workload, same seeds) while two same-seed
faulty runs stay bit-identical.
"""

from __future__ import annotations

import pytest

from helpers import build_engine, make_config
from repro.analysis.faults import (
    fault_free_twin,
    fault_impact,
    fault_impact_for,
)
from repro.faults import FaultConfig
from repro.sim.et_sim import run_simulation


class TestFaultyVersusTwin:
    def test_faulty_run_diverges_and_replays_bit_identically(self):
        faulty_config = make_config(
            fault_profile="link-attrition", fault_seed=7
        )
        faulty_a = run_simulation(faulty_config).summary()
        faulty_b = run_simulation(faulty_config).summary()
        baseline = run_simulation(fault_free_twin(faulty_config)).summary()

        assert faulty_a == faulty_b  # same-seed twins are bit-identical
        assert faulty_a != baseline  # physical faults changed the run
        assert faulty_a["links_cut"] > 0
        assert baseline["links_cut"] == 0

    def test_attrition_costs_delivery(self):
        impact = fault_impact_for(
            make_config(fault_profile="link-attrition", fault_seed=7)
        )
        assert impact["links_cut"] > 0
        assert impact["delivery_loss"] > 0
        assert 0.0 < impact["delivery_loss_fraction"] < 1.0

    def test_node_dropout_shortens_lifetime(self):
        impact = fault_impact_for(
            make_config(fault_profile="node-dropout", fault_seed=3)
        )
        assert impact["nodes_fault_killed"] > 0
        assert impact["lifetime_delta_frames"] < 0

    def test_impact_record_is_consistent(self):
        config = make_config(fault_profile="wash-cycle", fault_seed=2)
        faulty = run_simulation(config).summary()
        baseline = run_simulation(fault_free_twin(config)).summary()
        impact = fault_impact(baseline, faulty)
        assert impact["jobs_baseline"] == baseline["jobs_fractional"]
        assert impact["jobs_faulty"] == faulty["jobs_fractional"]
        assert impact["links_degraded"] == faulty["links_degraded"]


def wash_only(factor: float = 3.0, frames: int = 16) -> "FaultConfig":
    """Wash-cycle profile with permanent cuts disabled: pure transient
    degradation, connectivity guaranteed intact."""
    return FaultConfig(
        profile="wash-cycle",
        seed=9,
        period_frames=2,
        degrade_factor=factor,
        degrade_frames=frames,
        max_link_fraction=0.0,
    )


class TestDegradationSemantics:
    def test_degradation_only_wash_preserves_connectivity(self):
        stats = run_simulation(make_config(faults=wash_only(), max_jobs=8))
        assert stats.links_degraded > 0
        assert stats.links_cut == 0
        assert stats.jobs_completed == 8

    def test_degradation_raises_transport_energy(self):
        base_tx = run_simulation(make_config(max_jobs=8)).energy.data_tx_pj
        worn_tx = run_simulation(
            make_config(faults=wash_only(factor=6.0), max_jobs=8)
        ).energy.data_tx_pj
        assert worn_tx > base_tx

    def test_degradation_expires_and_restores_lengths(self):
        engine = build_engine(
            make_config(faults=wash_only(frames=4), max_jobs=8)
        )
        engine.run()
        assert engine.links_degraded > 0
        # Flush any still-active transients the way a frame would, then
        # check the working matrix is back to pristine (no cuts here).
        for u, v in engine.faults.expire_degradations(10**9):
            engine.lengths[u, v] = engine._base_lengths[u, v]
            engine.lengths[v, u] = engine._base_lengths[v, u]
        assert (engine.lengths == engine._base_lengths).all()


class TestEngineStateUnderFaults:
    def test_cut_links_leave_topology_and_alive_set_consistent(self):
        config = make_config(
            fault_profile="link-attrition", fault_seed=7, max_jobs=10
        )
        engine = build_engine(config)
        engine.run()
        for u, v in engine.faults.cut_links:
            assert not engine.topology.has_edge(u, v)
            assert engine.lengths[u, v] == float("inf")

    def test_fault_killed_nodes_report_dead_with_charged_cells(self):
        config = make_config(fault_profile="node-dropout", fault_seed=3)
        engine = build_engine(config)
        stats = engine.run()
        killed = [
            node
            for node in range(engine.num_mesh_nodes)
            if engine.nodes[node].fault_killed
        ]
        assert len(killed) == stats.nodes_fault_killed
        for node in killed:
            assert not engine.nodes[node].alive
            assert engine.nodes[node].battery.alive  # cell still charged
            assert node not in engine._alive_ids()

    def test_energy_conservation_holds_under_faults(self):
        config = make_config(fault_profile="link-attrition", fault_seed=7)
        engine = build_engine(config)
        stats = engine.run()
        delivered = sum(
            engine.nodes[n].battery.delivered_pj
            for n in range(engine.num_mesh_nodes)
        )
        assert delivered == pytest.approx(
            stats.energy.node_total_pj, rel=1e-9
        )
        nominal = engine.num_mesh_nodes * 60_000.0
        residual = stats.wasted_at_death_pj + stats.stranded_alive_pj
        assert nominal == pytest.approx(
            delivered + stats.conversion_loss_pj + residual, rel=1e-9
        )

    def test_cut_with_both_endpoints_dead_is_never_discovered(self):
        """A cut link whose endpoints both die before any dispatch can
        probe it must never raise a link report: dead nodes cannot
        discover anything, so the controller's length picture keeps the
        (physically severed) line until the run ends."""
        from repro.faults.schedule import (
            FaultEvent,
            FaultRuntime,
            FaultSchedule,
        )

        engine = build_engine(make_config(max_jobs=12))
        u, v = 10, 11
        engine.faults = FaultRuntime(
            FaultSchedule(
                [
                    FaultEvent(frame=5, kind="link-cut", node_a=u, node_b=v),
                    FaultEvent(frame=5, kind="node-kill", node_a=u),
                    FaultEvent(frame=5, kind="node-kill", node_a=v),
                ]
            )
        )
        base = engine._base_lengths[u, v]
        engine.run()
        assert engine.links_cut == 1
        assert engine.nodes_fault_killed == 2
        # Never discovered: the report flag is clear, the cut is still
        # in the undiscovered set, and the controller's picture still
        # carries the pristine length.
        assert engine._link_report_pending is False
        assert (u, v) in engine._undiscovered
        assert engine._known_lengths[u, v] == base
        # The physical matrices are severed all the same.
        assert engine.lengths[u, v] == float("inf")
        assert not engine.topology.has_edge(u, v)

    def test_degrade_expiry_on_cut_frame_does_not_resurrect_the_line(self):
        """A transient degradation expiring on the very frame its line
        is cut must not restore the severed line in either length
        matrix — and discovery afterwards must stick."""
        from repro.faults.schedule import (
            FaultEvent,
            FaultRuntime,
            FaultSchedule,
        )

        engine = build_engine(make_config())
        u, v = 5, 6
        base = engine._base_lengths[u, v]
        engine.faults = FaultRuntime(
            FaultSchedule(
                [
                    FaultEvent(
                        frame=4, kind="link-degrade", node_a=u, node_b=v,
                        factor=3.0, duration_frames=4,
                    ),
                    FaultEvent(frame=8, kind="link-cut", node_a=u, node_b=v),
                ]
            )
        )
        engine._apply_faults(4)
        assert engine.lengths[u, v] == pytest.approx(base * 3.0)
        assert engine._known_lengths[u, v] == pytest.approx(base * 3.0)
        # Frame 8: the degradation expires *and* the cut fires.
        engine._apply_faults(8)
        assert engine.lengths[u, v] == float("inf")
        # The cut is undiscovered, so the controller's picture holds the
        # restored pristine length — not the degraded one, not inf.
        assert engine._known_lengths[u, v] == pytest.approx(base)
        # Discovery writes inf; later frames must never restore it.
        engine._note_fault_block(u, v)
        assert engine._known_lengths[u, v] == float("inf")
        for frame in range(9, 30):
            engine._apply_faults(frame)
        assert engine.lengths[u, v] == float("inf")
        assert engine._known_lengths[u, v] == float("inf")

    def test_deadlock_recovery_survives_attrition(self):
        # Buffered congestion plus live topology changes: the recovery
        # protocol must still fire and still make progress.
        config = make_config(
            kind="concurrent",
            concurrency=8,
            buffers=1,
            mesh_width=6,
            fault_profile="link-attrition",
            fault_seed=5,
            max_jobs=25,
        )
        stats = run_simulation(config)
        assert stats.jobs_completed > 0
        assert stats.verification_failures == 0


def tear_repair_config(**kwargs):
    return make_config(
        faults=FaultConfig(
            profile="tear", seed=0, repair_after_frames=24
        ),
        **kwargs,
    )


class TestRepairSemantics:
    def test_repair_restores_topology_and_length_state(self):
        engine = build_engine(tear_repair_config(max_jobs=8))
        engine.run()
        assert engine.links_cut > 0
        assert engine.links_repaired == engine.links_cut
        # Every cut was re-sewn: no severed state left anywhere.
        assert engine.faults.cut_links == set()
        assert engine._undiscovered == set()
        assert (engine.lengths == engine._base_lengths).all()
        assert (engine._known_lengths == engine._base_lengths).all()
        for u, v, _ in engine.topology.edges():
            assert engine.topology.has_edge(u, v)

    def test_repair_counts_surface_in_summary(self):
        stats = run_simulation(tear_repair_config(max_jobs=8)).summary()
        assert stats["links_repaired"] > 0
        assert stats["links_repaired"] <= stats["links_cut"]
        assert stats["verification_failures"] == 0

    def test_concurrent_engine_survives_tear_and_repair(self):
        config = tear_repair_config(
            kind="concurrent", concurrency=4, max_jobs=10
        )
        stats = run_simulation(config)
        assert stats.links_repaired > 0
        assert stats.verification_failures == 0
        assert (
            run_simulation(config).summary()
            == run_simulation(config).summary()
        )


class TestMoistureRuns:
    def test_moisture_patch_degrades_and_costs_energy(self):
        config = make_config(
            faults=FaultConfig(profile="moisture", seed=4), max_jobs=8
        )
        stats = run_simulation(config)
        assert stats.links_degraded > 0
        assert stats.links_cut == 0
        assert stats.jobs_completed == 8
        base_tx = run_simulation(
            fault_free_twin(config)
        ).energy.data_tx_pj
        assert stats.energy.data_tx_pj > base_tx


class TestWearAwareRouting:
    def test_wear_aware_run_is_deterministic_and_clean(self):
        config = make_config(
            fault_profile="link-attrition",
            fault_seed=11,
            wear_aware=True,
            max_jobs=15,
        )
        first = run_simulation(config).summary()
        assert first == run_simulation(config).summary()
        assert first["verification_failures"] == 0

    def test_wear_awareness_is_inert_under_sdr(self):
        # SDR never reads wear: enabling the flag on an SDR point (as a
        # shared base config does) must not change the run at all — no
        # tracking overhead, no spurious recomputes charged to the
        # controller.
        from dataclasses import replace as dc_replace

        config = make_config(
            fault_profile="link-attrition",
            fault_seed=7,
            routing="sdr",
            max_jobs=20,
        )
        plain = run_simulation(config).summary()
        wear = run_simulation(dc_replace(config, wear_aware=True)).summary()
        assert plain == wear

    def test_wear_weight_changes_routing_under_load(self):
        # Uncapped attrition run: enough traffic for links to cross
        # wear levels, so the weight must actually alter the plan
        # history (recompute counts differ from the reactive twin).
        from dataclasses import replace as dc_replace

        config = make_config(fault_profile="link-attrition", fault_seed=11)
        reactive = run_simulation(config).summary()
        wear = run_simulation(
            dc_replace(config, wear_aware=True)
        ).summary()
        assert wear["recomputes"] != reactive["recomputes"]

    def test_wear_aware_never_shortens_lifetime_on_the_quick_grid(self):
        """Acceptance: on the attrition quick grid, the wear-prediction
        weight yields a lifetime >= reactive EAR's — routing around
        worn lines must not cost lifetime."""
        from repro.orchestration import build_scenario

        points = {
            p.label: p for p in build_scenario("wear-aware", scale="quick")
        }
        intensities = sorted(
            {p.params["fault_intensity"] for p in points.values()}
        )
        assert intensities  # the grid pairs reactive/wear per intensity
        for intensity in intensities:
            reactive = run_simulation(
                points[f"x{intensity:g}/reactive"].config
            ).summary()
            wear = run_simulation(
                points[f"x{intensity:g}/wear"].config
            ).summary()
            assert (
                wear["lifetime_frames"] >= reactive["lifetime_frames"]
            ), f"wear-aware lost lifetime at intensity {intensity}"
