"""Integration tests: harvest-bearing simulations on both engines.

Covers the recharge path end to end (income extends delivered work),
the I²We power bus (charge moves with conversion loss), the
harvest-aware routing weight (the PR's acceptance criterion: at least
as many jobs as reactive EAR on every pair of the ``harvest-aware``
quick grid), and the paired analysis helpers.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import pytest

from helpers import build_engine, make_config
from repro.analysis import (
    harvest_comparison,
    harvest_comparison_for,
    harvest_free_twin,
    harvest_impact_for,
)
from repro.harvest import HarvestConfig
from repro.orchestration import build_scenario
from repro.sim.et_sim import run_simulation


def motion_config(**kwargs):
    harvest = HarvestConfig(
        profile=kwargs.pop("profile", "motion"),
        seed=kwargs.pop("harvest_seed", 9),
        amplitude_pj=kwargs.pop("amplitude_pj", 60.0),
        **{
            key: kwargs.pop(key)
            for key in (
                "share_threshold",
                "share_rate_pj",
                "share_efficiency",
            )
            if key in kwargs
        },
    )
    return make_config(harvest=harvest, **kwargs)


class TestHarvestRuns:
    def test_income_extends_delivered_work(self):
        config = motion_config()
        harvesting = run_simulation(config).summary()
        baseline = run_simulation(harvest_free_twin(config)).summary()
        assert harvesting["harvested_pj"] > 0
        assert harvesting["harvest_events"] > 0
        assert (
            harvesting["jobs_fractional"] > baseline["jobs_fractional"]
        )

    def test_harvest_runs_are_deterministic(self):
        config = motion_config(max_jobs=12)
        assert (
            run_simulation(config).summary()
            == run_simulation(config).summary()
        )

    def test_concurrent_engine_harvests_too(self):
        config = motion_config(
            kind="concurrent", concurrency=4, max_jobs=12
        )
        stats = run_simulation(config)
        assert stats.harvested_pj > 0
        assert stats.verification_failures == 0

    def test_recharge_slows_battery_level_decay(self):
        # With income the controller sees fewer (or equal) level-drop
        # recomputations per frame than without, and nodes die later.
        config = motion_config()
        harvesting = run_simulation(config).summary()
        baseline = run_simulation(harvest_free_twin(config)).summary()
        assert (
            harvesting["lifetime_frames"] >= baseline["lifetime_frames"]
        )

    def test_dead_cells_reject_income(self):
        # Run to death: nodes die while income keeps arriving, and no
        # dead cell ever accepts a pulse (its recharge path returns 0,
        # so harvested totals equal the sum over per-node ledgers of
        # what living cells accepted).
        engine = build_engine(motion_config())
        stats = engine.run()
        ledger = stats.energy
        per_node = sum(
            node.harvested_pj for node in ledger.nodes.values()
        )
        assert per_node == pytest.approx(ledger.harvested_pj)
        for node in range(engine.num_mesh_nodes):
            battery = engine.nodes[node].battery
            if not battery.alive:
                assert battery.recharge(100.0) == 0.0


class TestPowerBus:
    def test_zero_amplitude_bus_never_shares(self):
        # A zero-amplitude bus has no generators: nothing to harvest
        # and nothing to redistribute.  Even on a long run that opens
        # real SoC gaps between nodes, the run must stay bit-identical
        # to a harvest-free one (the frame hook is fully inert).
        base = make_config(seed=3, max_jobs=60)
        plain = run_simulation(base).summary()
        engine = build_engine(
            dc_replace(
                base,
                harvest=HarvestConfig(profile="bus", amplitude_pj=0.0),
            )
        )
        assert not engine.harvest_active
        assert engine.run().summary() == plain

    def bus_config(self, **kwargs):
        return motion_config(
            profile="bus",
            share_threshold=0.05,
            share_rate_pj=40.0,
            **kwargs,
        )

    def test_bus_moves_charge_with_conversion_loss(self):
        stats = run_simulation(self.bus_config())
        ledger = stats.energy
        assert ledger.shared_pj > 0
        assert ledger.share_tx_pj > ledger.shared_pj
        assert ledger.share_loss_pj == pytest.approx(
            ledger.share_tx_pj - ledger.shared_pj
        )
        # Bus losses surface in the conversion-loss bucket.
        assert stats.conversion_loss_pj >= ledger.share_loss_pj

    def test_bus_narrows_the_charge_spread(self):
        # One shared frame of the bus moves charge from rich donors to
        # their poorest neighbours: by end of run the bus run has moved
        # real energy between cells.
        stats = run_simulation(self.bus_config(max_jobs=30))
        assert stats.shared_pj > 0
        assert stats.verification_failures == 0

    def test_bus_efficiency_bounds_the_arrivals(self):
        config = self.bus_config(share_efficiency=0.6)
        ledger = run_simulation(config).energy
        assert ledger.shared_pj <= 0.6 * ledger.share_tx_pj + 1e-6


class TestHarvestAwareRouting:
    def test_harvest_aware_run_is_deterministic_and_clean(self):
        config = motion_config(harvest_aware=True, max_jobs=12)
        one = run_simulation(config).summary()
        two = run_simulation(config).summary()
        assert one == two
        assert one["verification_failures"] == 0

    def test_harvest_awareness_is_inert_under_sdr(self):
        # SDR never reads income: enabling the flag on an SDR point (as
        # a sweep grid might) must not change a single bit.
        config = motion_config(routing="sdr", max_jobs=10)
        plain = run_simulation(config).summary()
        aware = run_simulation(
            dc_replace(config, harvest_aware=True)
        ).summary()
        assert plain == aware

    def test_harvest_weight_changes_routing_under_income(self):
        # The learned income levels must actually reach the weight
        # matrix: recompute counts diverge once levels start crossing.
        config = motion_config()
        reactive = run_simulation(config).summary()
        aware = run_simulation(
            dc_replace(config, harvest_aware=True)
        ).summary()
        assert aware["recomputes"] != reactive["recomputes"]

    def test_harvest_aware_never_loses_jobs_on_the_quick_grid(self):
        """Acceptance: on the harvest-aware quick grid, the harvest
        bonus completes at least as many jobs as reactive EAR on the
        same income schedule."""
        points = {
            p.label: p
            for p in build_scenario("harvest-aware", scale="quick")
        }
        amplitudes = sorted(
            {
                p.params["amplitude_pj"]
                for p in points.values()
            }
        )
        assert amplitudes  # the grid pairs reactive/aware per amplitude
        for amplitude in amplitudes:
            reactive = run_simulation(
                points[f"a{amplitude:g}/reactive"].config
            ).summary()
            aware = run_simulation(
                points[f"a{amplitude:g}/aware"].config
            ).summary()
            assert (
                aware["jobs_fractional"] >= reactive["jobs_fractional"]
            ), f"harvest-aware lost jobs at amplitude {amplitude}"


class TestHarvestAnalysis:
    def test_harvest_impact_reports_the_gain(self):
        record = harvest_impact_for(motion_config(max_jobs=10))
        assert record["jobs_baseline"] == record["jobs_harvesting"] == 10.0
        assert record["harvested_pj"] >= 0

    def test_harvest_comparison_pairs_reactive_and_aware(self):
        config = motion_config(max_jobs=10)
        record = harvest_comparison_for(config)
        reactive = run_simulation(
            dc_replace(config, harvest_aware=False)
        ).summary()
        aware = run_simulation(
            dc_replace(config, harvest_aware=True)
        ).summary()
        assert record == harvest_comparison(reactive, aware)
        assert record["jobs_gain"] == pytest.approx(
            record["jobs_harvest_aware"] - record["jobs_reactive"]
        )

    def test_harvest_free_twin_strips_everything(self):
        config = motion_config(harvest_aware=True)
        twin = harvest_free_twin(config)
        assert not twin.harvest.is_active
        assert not twin.harvest_aware


class TestHarvestScenarios:
    def test_harvest_motion_smoke_covers_both_engines(self):
        points = build_scenario("harvest-motion", scale="smoke")
        kinds = {p.params["workload"] for p in points}
        assert kinds == {"sequential", "concurrent"}
        assert all(p.config.harvest.profile == "motion" for p in points)

    def test_harvest_aware_grid_pairs_strategies(self):
        points = build_scenario("harvest-aware", scale="quick")
        strategies = {p.params["strategy"] for p in points}
        assert strategies == {"reactive", "aware"}
        by_amplitude: dict[float, set] = {}
        for p in points:
            by_amplitude.setdefault(
                p.params["amplitude_pj"], set()
            ).add(p.params["strategy"])
        assert all(
            pair == {"reactive", "aware"}
            for pair in by_amplitude.values()
        )
        # Paired points share the exact same income schedule.
        for amplitude in by_amplitude:
            pair = [
                p.config.harvest
                for p in points
                if p.params["amplitude_pj"] == amplitude
            ]
            assert pair[0] == pair[1]


class TestLengthScaledBusLoss:
    """The per-segment bus loss scales with physical line length."""

    def test_unit_pitch_reproduces_the_constant_factor_exactly(self):
        # On a uniform-pitch fabric length / pitch == 1.0 and
        # x ** 1.0 == x in IEEE 754, so the length-aware factor is
        # bit-identical to the historical constant-per-hop loss.
        engine = build_engine(make_config())
        pitch = engine.config.platform.link_pitch_cm
        # The memo keys by length alone (the efficiency is a run-wide
        # constant), so clear it between probes.
        for efficiency in (0.6, 0.85, 0.999):
            engine._share_factor_by_length.clear()
            assert (
                engine._share_arrival_factor(pitch, efficiency)
                == efficiency
            )

    def test_longer_lines_lose_proportionally_more(self):
        engine = build_engine(make_config())
        pitch = engine.config.platform.link_pitch_cm
        efficiency = 0.85
        assert engine._share_arrival_factor(
            2 * pitch, efficiency
        ) == pytest.approx(efficiency**2)
        assert engine._share_arrival_factor(
            1.5 * pitch, efficiency
        ) < engine._share_arrival_factor(pitch, efficiency)

    def test_factor_is_memoised_per_length(self):
        engine = build_engine(make_config())
        pitch = engine.config.platform.link_pitch_cm
        engine._share_arrival_factor(pitch, 0.85)
        assert pitch in engine._share_factor_by_length
        again = engine._share_arrival_factor(pitch, 0.85)
        assert again == engine._share_factor_by_length[pitch]
