"""Integration tests for congestion-aware ECMP spreading.

The acceptance contract of the congestion work, asserted end to end on
the registered ``congestion-relief`` quick grid: against the
measure-only baseline (neutral penalty, no ECMP — routing bit-identical
to plain EAR), the relief arm must reduce the peak per-link load and
must never shorten the lifetime — on the sequential *and* the vector
engine.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    congestion_comparison,
    congestion_comparison_for,
    measure_only_twin,
)
from repro.config import RoutingOptions
from repro.orchestration.scenarios import build_scenario
from repro.sim import run_simulation

from dataclasses import replace


def _quick_pairs():
    """The quick grid, paired ``(engine, base_point, relief_point)``."""
    points = {p.label: p for p in build_scenario("congestion-relief", "quick")}
    return [
        ("sequential", points["5x5/base"], points["5x5/relief"]),
        ("vector", points["5x5/base/vec"], points["5x5/relief/vec"]),
    ]


class TestCongestionRelief:
    @pytest.mark.parametrize(
        "engine,base_point,relief_point",
        _quick_pairs(),
        ids=["sequential", "vector"],
    )
    def test_relief_spreads_load_without_costing_lifetime(
        self, engine, base_point, relief_point
    ):
        base = run_simulation(base_point.config).summary()
        relief = run_simulation(relief_point.config).summary()
        # Peak per-link utilisation drops...
        assert relief["max_link_traversals"] < base["max_link_traversals"]
        assert relief["hot_link_share"] < base["hot_link_share"]
        # ...and the system never dies earlier than plain EAR.
        assert relief["lifetime_frames"] >= base["lifetime_frames"]
        assert relief["jobs_completed"] >= base["jobs_completed"]
        assert relief["verification_failures"] == 0
        assert base["verification_failures"] == 0

    def test_measure_only_baseline_routes_like_plain_ear(self):
        """The neutral-q baseline adds the congestion metrics to the
        summary and changes nothing else."""
        _, base_point, _ = _quick_pairs()[0]
        measured = run_simulation(base_point.config).summary()
        plain = run_simulation(
            replace(base_point.config, routing_opts=RoutingOptions())
        ).summary()
        assert "max_link_traversals" not in plain
        assert "hot_link_share" not in plain
        measured.pop("max_link_traversals")
        measured.pop("hot_link_share")
        assert measured == plain

    def test_comparison_helper_reports_the_gap(self):
        _, _, relief_point = _quick_pairs()[0]
        report = congestion_comparison_for(relief_point.config)
        assert report["peak_reduction"] > 0
        assert report["hot_share_reduction"] > 0
        assert report["lifetime_gain_frames"] >= 0
        assert report["peak_reduction_fraction"] == pytest.approx(
            report["peak_reduction"] / report["peak_traversals_baseline"],
            abs=1e-5,
        )

    def test_measure_only_twin_is_idempotent_on_base_points(self):
        _, base_point, _ = _quick_pairs()[0]
        assert measure_only_twin(base_point.config) == base_point.config

    def test_comparison_accepts_raw_summaries(self):
        base = {
            "jobs_fractional": "10.0",
            "lifetime_frames": 100,
            "max_link_traversals": 50,
            "hot_link_share": 0.2,
        }
        relief = {
            "jobs_fractional": "10.0",
            "lifetime_frames": 110,
            "max_link_traversals": 40,
            "hot_link_share": 0.15,
        }
        report = congestion_comparison(base, relief)
        assert report["peak_reduction"] == 10
        assert report["peak_reduction_fraction"] == 0.2
        assert report["lifetime_gain_frames"] == 10
