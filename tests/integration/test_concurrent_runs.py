"""Integration tests: the concurrent (buffered) engine and deadlock
recovery."""

import pytest

from helpers import build_engine, make_config
from repro.sim.et_sim import run_simulation


def concurrent_config(
    width=4, concurrency=4, buffers=2, recovery=True, **extra
):
    return make_config(
        mesh_width=width,
        kind="concurrent",
        concurrency=concurrency,
        buffers=buffers,
        recovery=recovery,
        **extra,
    )


class TestConcurrentEngine:
    def test_completes_jobs_and_verifies(self):
        stats = run_simulation(concurrent_config(max_jobs=10))
        assert stats.jobs_completed == 10
        assert stats.verification_failures == 0

    def test_single_job_concurrency_close_to_sequential(self):
        seq_jobs = run_simulation(make_config(mesh_width=4)).jobs_fractional
        conc_jobs = run_simulation(
            concurrent_config(concurrency=1)
        ).jobs_fractional
        # Same platform, same workload semantics: the engines should
        # agree to within a small tolerance (timing details differ).
        assert conc_jobs == pytest.approx(seq_jobs, rel=0.15)

    def test_runs_to_system_death(self):
        stats = run_simulation(concurrent_config(concurrency=4))
        assert stats.death_cause in (
            "module-unreachable",
            "source-cut",
            "stalled",
        )
        assert stats.jobs_completed > 20

    def test_deterministic(self):
        a = run_simulation(concurrent_config(concurrency=4))
        b = run_simulation(concurrent_config(concurrency=4))
        assert a.jobs_completed == b.jobs_completed
        assert a.deadlocks_reported == b.deadlocks_reported


class TestDeadlockRecovery:
    def test_congestion_triggers_deadlock_reports(self):
        stats = run_simulation(
            concurrent_config(width=6, concurrency=8, buffers=1)
        )
        assert stats.deadlocks_reported > 0

    def test_recovery_beats_no_recovery_under_pressure(self):
        with_recovery = run_simulation(
            concurrent_config(width=6, concurrency=8, buffers=1)
        )
        without = run_simulation(
            concurrent_config(
                width=6, concurrency=8, buffers=1, recovery=False
            )
        )
        assert (
            with_recovery.jobs_completed > without.jobs_completed
        )

    def test_no_recovery_stalls(self):
        stats = run_simulation(
            concurrent_config(
                width=6, concurrency=8, buffers=1, recovery=False
            )
        )
        assert stats.death_cause == "stalled"

    def test_recovered_deadlocks_counted(self):
        stats = run_simulation(
            concurrent_config(width=6, concurrency=8, buffers=1)
        )
        assert stats.deadlocks_recovered <= stats.deadlocks_reported
        assert stats.deadlocks_recovered > 0

    def test_ample_buffers_avoid_deadlock(self):
        stats = run_simulation(
            concurrent_config(width=4, concurrency=2, buffers=8, max_jobs=20)
        )
        assert stats.deadlocks_reported == 0
        assert stats.jobs_completed == 20


class TestConcurrencyThroughput:
    def test_energy_conservation_concurrent(self):
        engine = build_engine(concurrent_config(concurrency=4))
        stats = engine.run()
        delivered = sum(
            engine.nodes[n].battery.delivered_pj for n in range(16)
        )
        assert delivered == pytest.approx(
            stats.energy.node_total_pj, rel=1e-9
        )

    def test_heavy_concurrency_degrades_gracefully(self):
        light = run_simulation(concurrent_config(width=4, concurrency=1))
        heavy = run_simulation(concurrent_config(width=4, concurrency=8))
        # Contention wastes energy on waiting/detours but the system
        # still completes a substantial job count.
        assert heavy.jobs_completed > 0.3 * light.jobs_completed
