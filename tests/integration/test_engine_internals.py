"""Integration tests of engine internals: platform construction, frame
protocol, reporting, and the concurrent engine's recovery mechanics."""

import pytest

from helpers import make_config
from repro.config import PlatformConfig, SimulationConfig
from repro.sim.base_engine import SystemDead
from repro.sim.concurrent_engine import ConcurrentEngine
from repro.sim.sequential_engine import SequentialEngine


def sequential_engine(**platform_kwargs) -> SequentialEngine:
    if platform_kwargs:
        return SequentialEngine(
            SimulationConfig(
                platform=PlatformConfig(mesh_width=4, **platform_kwargs),
                routing="ear",
            )
        )
    return SequentialEngine(make_config(mesh_width=4))


class TestPlatformConstruction:
    def test_source_attached_outside_the_budget(self):
        engine = sequential_engine()
        assert engine.num_mesh_nodes == 16
        assert engine.topology.num_nodes == 17  # mesh + source
        assert engine.source == 16
        assert engine.nodes[engine.source].has_infinite_supply

    def test_source_link_length_respected(self):
        engine = sequential_engine(source_link_cm=25.0)
        attach = engine.topology.neighbors(engine.source)[0]
        assert engine.topology.edge_length(engine.source, attach) == 25.0

    def test_every_mesh_node_has_a_module_and_battery(self):
        engine = sequential_engine()
        for node in range(16):
            assert engine.mapping.module_of(node) in (1, 2, 3)
            assert engine.nodes[node].battery is not None

    def test_hop_cycles_from_packet_format(self):
        engine = sequential_engine()
        assert engine.hop_cycles == 128  # 128-bit packet, serial line


class TestFrameProtocol:
    def test_frames_fire_on_cycle_boundaries(self):
        engine = sequential_engine()
        engine.control.bootstrap()
        frame_len = engine.schedule.frame_cycles
        engine._advance_time(frame_len - 1)
        assert engine.frames_done == 0
        engine._advance_time(1)
        assert engine.frames_done == 1
        engine._advance_time(3 * frame_len)
        assert engine.frames_done == 4

    def test_heartbeats_charge_upload_energy(self):
        engine = sequential_engine()
        engine.control.bootstrap()
        engine._advance_time(engine.schedule.frame_cycles)
        expected = 16 * engine.schedule.upload_energy_pj
        assert engine.ledger.upload_pj == pytest.approx(expected)

    def test_frame_budget_raises(self):
        engine = SequentialEngine(make_config(max_frames=3))
        engine.control.bootstrap()
        with pytest.raises(SystemDead) as excinfo:
            engine._advance_time(10 * engine.schedule.frame_cycles)
        assert excinfo.value.cause == "frame-budget"

    def test_wait_one_frame_lands_on_boundary(self):
        engine = sequential_engine()
        engine.control.bootstrap()
        engine._advance_time(100)
        engine._wait_one_frame()
        assert engine.cycle % engine.schedule.frame_cycles == 0


class TestTransmitAccounting:
    def test_transmit_charges_the_sender(self):
        engine = sequential_engine()
        engine.control.bootstrap()
        node_before = engine.nodes[0].battery.delivered_pj
        assert engine._transmit(0, 1, holder=0)
        hop = engine.link_model.hop_energy_pj(
            float(engine.lengths[0, 1])
        )
        assert engine.nodes[0].battery.delivered_pj == pytest.approx(
            node_before + hop
        )
        assert engine.ledger.data_tx_pj == pytest.approx(hop)
        assert engine.ledger.nodes[0].packets_relayed == 0

    def test_relay_counted(self):
        engine = sequential_engine()
        engine.control.bootstrap()
        engine._transmit(1, 2, holder=0)  # sender != holder -> relay
        assert engine.ledger.nodes[1].packets_relayed == 1

    def test_source_transmissions_not_in_node_budget(self):
        engine = sequential_engine()
        engine.control.bootstrap()
        attach = engine.topology.neighbors(engine.source)[0]
        engine._transmit(engine.source, attach, holder=engine.source)
        assert engine.ledger.data_tx_pj == 0.0
        assert engine.ledger.source_tx_pj > 0.0


def concurrent_engine(**kwargs) -> ConcurrentEngine:
    workload = dict(concurrency=2)
    workload.update(kwargs.pop("workload", {}))
    return ConcurrentEngine(
        make_config(mesh_width=4, kind="concurrent", **workload, **kwargs)
    )


class TestConcurrentInternals:
    def test_injection_keeps_concurrency(self):
        engine = concurrent_engine()
        engine.control.bootstrap()
        engine._inject_jobs()
        assert len(engine.buffers[engine.source]) == 2
        engine._inject_jobs()  # idempotent while 2 are in flight
        assert len(engine.buffers[engine.source]) == 2

    def test_source_buffer_unbounded(self):
        engine = concurrent_engine(workload={"concurrency": 50})
        engine.control.bootstrap()
        engine._inject_jobs()
        assert len(engine.buffers[engine.source]) == 50

    def test_node_death_drops_resident_packets(self):
        engine = concurrent_engine()
        engine.control.bootstrap()
        engine._inject_jobs()
        packet = engine.buffers[engine.source][0]
        engine.buffers[3].append(packet)
        engine.on_node_death(3)
        assert not engine.buffers[3]
        assert engine.jobs_lost == 1

    def test_escape_hops_sorted_by_distance(self):
        engine = concurrent_engine()
        engine.control.bootstrap()
        # From node 5 (coordinates (2,2)) toward node 0 (corner (1,1)):
        # the best escape neighbours are those nearer the corner.
        hops = engine._escape_hops(5, 0)
        assert hops[0] in (1, 4)  # the two neighbours adjacent to 0
        assert set(hops).issubset(set(engine.topology.neighbors(5)))

    def test_slot_cycles_match_hop(self):
        engine = concurrent_engine()
        assert engine.slot_cycles == engine.hop_cycles
        assert engine.slots_per_frame == (
            engine.schedule.frame_cycles // engine.slot_cycles
        )
