"""Smoke tests: the shipped examples must run end to end.

Only the fast examples run here (the full shirt/provisioning scenarios
take tens of seconds and are exercised implicitly by the benches).
"""

import runpy
import sys

EXAMPLES_DIR = "examples"


def run_example(name: str, capsys) -> str:
    sys.path.insert(0, EXAMPLES_DIR)
    try:
        runpy.run_path(f"{EXAMPLES_DIR}/{name}.py", run_name="__main__")
    finally:
        sys.path.remove(EXAMPLES_DIR)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "more encryption jobs" in out
        assert "Theorem 1 upper bound" in out
        assert "bit-exact" in out

    def test_custom_topology_app(self, capsys):
        out = run_example("custom_topology_app", capsys)
        assert "EAR shifted the load to the charged duplicate" in out
        assert "Theorem 1: J*" in out

    def test_battery_playground(self, capsys):
        out = run_example("battery_playground", capsys)
        assert "hammered" in out
        assert "delivered" in out

    def test_mapping_playground(self, capsys):
        out = run_example("mapping_playground", capsys)
        assert "uniform income degenerates exactly: True" in out
        assert "multi-hop power bus" in out

    def test_congestion_playground(self, capsys):
        out = run_example("congestion_playground", capsys)
        assert "hot-link spread without lifetime cost: True" in out
        assert "measure-only" in out

    def test_trace_playground(self, capsys):
        out = run_example("trace_playground", capsys)
        assert "bare == null-recorder == traced: True" in out
        assert "deterministic channel repeats exactly: True" in out
        assert "term attribution" in out
        assert "steered by the congestion term" in out

    def test_fleet_playground(self, capsys):
        out = run_example("fleet_playground", capsys)
        assert "shard-merge == single stream, bit for bit: True" in out
        assert "survivors by lifetime" in out
        assert "reproducible from (fleet_seed, index)" in out
