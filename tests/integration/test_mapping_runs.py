"""Integration tests: income-aware mapping end to end.

Covers the ``harvest-mapping`` scenario family (the PR's acceptance
criterion: income-aware placement completes at least as many jobs as
the reactive proportional mapping on every pair of the quick grid),
the engine wiring (the mapping actually changes with the harvest
hardware), and the paired analysis helpers.
"""

from __future__ import annotations

from dataclasses import replace

from helpers import build_engine, make_config
from repro.analysis import (
    income_mapping_twin,
    mapping_comparison,
    mapping_comparison_for,
    reactive_mapping_twin,
)
from repro.harvest import HarvestConfig, HarvestHardware
from repro.orchestration import build_scenario
from repro.sim.et_sim import run_simulation


def mapping_config(strategy="harvest-proportional", **kwargs):
    harvest = HarvestConfig(
        profile="motion",
        seed=kwargs.pop("harvest_seed", 11),
        amplitude_pj=kwargs.pop("amplitude_pj", 150.0),
        hardware=HarvestHardware(
            equipped_fraction=kwargs.pop("equipped_fraction", 0.25),
            placement=kwargs.pop("placement", "flex"),
        ),
    )
    config = make_config(harvest=harvest, **kwargs)
    return replace(
        config,
        platform=replace(config.platform, mapping_strategy=strategy),
    )


class TestIncomeAwareMappingRuns:
    def test_heterogeneous_income_changes_the_mapping(self):
        aware = build_engine(mapping_config(max_jobs=1))
        reactive = build_engine(
            mapping_config(strategy="proportional", max_jobs=1)
        )
        assert aware.mapping != reactive.mapping
        # Same module set and node budget, different placement.
        assert sum(aware.mapping.duplicate_counts().values()) == sum(
            reactive.mapping.duplicate_counts().values()
        )

    def test_harvest_free_run_degenerates_to_proportional(self):
        # Without an income picture the strategy must build the exact
        # Theorem-1 mapping, so harvest-free sweeps cannot fork on it.
        aware = build_engine(
            replace(
                make_config(max_jobs=1),
                platform=replace(
                    make_config().platform,
                    mapping_strategy="harvest-proportional",
                ),
            )
        )
        reactive = build_engine(
            replace(
                make_config(max_jobs=1),
                platform=replace(
                    make_config().platform,
                    mapping_strategy="proportional",
                ),
            )
        )
        assert aware.mapping == reactive.mapping

    def test_income_aware_run_is_deterministic_and_clean(self):
        config = mapping_config(max_jobs=10)
        one = run_simulation(config).summary()
        two = run_simulation(config).summary()
        assert one == two
        assert one["verification_failures"] == 0
        assert one["harvested_pj"] > 0


class TestHarvestMappingScenario:
    def test_smoke_covers_both_engines(self):
        points = build_scenario("harvest-mapping", scale="smoke")
        kinds = {p.params["workload"] for p in points}
        assert kinds == {"sequential", "concurrent"}
        assert all(
            p.config.platform.mapping_strategy == "harvest-proportional"
            for p in points
        )
        assert all(
            p.config.harvest.hardware.equipped_fraction < 1.0
            for p in points
        )

    def test_quick_grid_pairs_strategies_on_one_schedule(self):
        points = build_scenario("harvest-mapping", scale="quick")
        by_mesh: dict[str, dict[str, object]] = {}
        for p in points:
            by_mesh.setdefault(p.params["mesh"], {})[
                p.params["strategy"]
            ] = p.config
        for mesh, pair in by_mesh.items():
            assert set(pair) == {"reactive", "income"}, mesh
            # Paired points share the exact same income schedule and
            # differ only in the mapping strategy.
            assert pair["reactive"].harvest == pair["income"].harvest
            assert (
                replace(
                    pair["reactive"],
                    platform=replace(
                        pair["reactive"].platform,
                        mapping_strategy="harvest-proportional",
                    ),
                )
                == pair["income"]
            )

    def test_income_aware_never_loses_jobs_on_the_quick_grid(self):
        """Acceptance: on the harvest-mapping quick grid, income-aware
        placement completes at least as many jobs as the reactive
        proportional mapping on the same income schedule."""
        points = {
            p.label: p
            for p in build_scenario("harvest-mapping", scale="quick")
        }
        meshes = sorted({p.params["mesh"] for p in points.values()})
        assert meshes  # the grid pairs reactive/income per mesh
        for mesh in meshes:
            reactive = run_simulation(
                points[f"{mesh}/reactive"].config
            ).summary()
            income = run_simulation(points[f"{mesh}/income"].config).summary()
            assert (
                income["jobs_fractional"] >= reactive["jobs_fractional"]
            ), f"income-aware placement lost jobs on the {mesh} mesh"


class TestMappingAnalysis:
    def test_mapping_comparison_pairs_the_twins(self):
        config = mapping_config(max_jobs=8)
        record = mapping_comparison_for(config)
        reactive = run_simulation(reactive_mapping_twin(config)).summary()
        aware = run_simulation(income_mapping_twin(config)).summary()
        assert record == mapping_comparison(reactive, aware)
        assert record["jobs_gain"] == round(
            record["jobs_income_aware"] - record["jobs_reactive"], 3
        )

    def test_twins_only_touch_the_strategy(self):
        config = mapping_config(strategy="checkerboard")
        income = income_mapping_twin(config)
        reactive = reactive_mapping_twin(config)
        assert income.platform.mapping_strategy == "harvest-proportional"
        assert reactive.platform.mapping_strategy == "proportional"
        assert income.harvest == reactive.harvest == config.harvest
        assert income.workload == config.workload
