"""Integration tests asserting the paper's headline result *shapes*.

These are the acceptance criteria of DESIGN.md Sec 5: who wins, by
roughly what factor, and where the qualitative crossovers lie.  Absolute
numbers are recorded in EXPERIMENTS.md, not asserted here.
"""

import pytest

from repro.analysis.theory import bound_comparison, bound_for, gap_report
from repro.config import (
    ControlConfig,
    PlatformConfig,
    SimulationConfig,
)
from repro.sim.et_sim import run_simulation


def config_for(width, routing="ear", battery="thin-film", controllers=None):
    control = ControlConfig()
    if controllers is not None:
        control = ControlConfig(
            num_controllers=controllers, controller_battery="thin-film"
        )
    return SimulationConfig(
        platform=PlatformConfig(mesh_width=width, battery_model=battery),
        control=control,
        routing=routing,
    )


class TestFig7Shape:
    """EAR vs SDR (paper Fig 7): 5-15x gains, growing with mesh size."""

    def test_gain_in_paper_band_on_4x4(self):
        ear = run_simulation(config_for(4, "ear")).jobs_fractional
        sdr = run_simulation(config_for(4, "sdr")).jobs_fractional
        assert 4.0 < ear / sdr < 22.0

    def test_gain_grows_with_mesh_size(self):
        gains = []
        for width in (4, 6):
            ear = run_simulation(config_for(width, "ear")).jobs_fractional
            sdr = run_simulation(config_for(width, "sdr")).jobs_fractional
            gains.append(ear / sdr)
        assert gains[1] > gains[0]

    def test_ear_scales_with_mesh_size(self):
        j4 = run_simulation(config_for(4, "ear")).jobs_fractional
        j6 = run_simulation(config_for(6, "ear")).jobs_fractional
        assert j6 > 1.5 * j4

    def test_sdr_flat_with_mesh_size(self):
        # SDR dies by burning out the fixed source's neighbourhood, so
        # extra nodes buy almost nothing (the paper's flat SDR bars).
        j4 = run_simulation(config_for(4, "sdr")).jobs_fractional
        j6 = run_simulation(config_for(6, "sdr")).jobs_fractional
        assert j6 < 2.0 * j4

    def test_control_overhead_grows_with_mesh(self):
        f4 = run_simulation(config_for(4, "ear")).control_overhead_fraction
        f6 = run_simulation(config_for(6, "ear")).control_overhead_fraction
        assert f4 < f6 < 0.15


class TestTable2Shape:
    """EAR vs Theorem 1 (paper Table 2): ~45-50 % of the bound."""

    def test_bound_matches_paper_within_a_percent(self):
        for width, paper_value in ((4, 131.42), (6, 295.70), (8, 525.69)):
            bound = bound_for(config_for(width, battery="ideal"))
            assert bound.jobs == pytest.approx(paper_value, rel=0.01)

    def test_simulation_below_bound(self):
        config = config_for(4, battery="ideal")
        stats = run_simulation(config)
        comparison = bound_comparison(config, stats)
        assert comparison.simulated_jobs < comparison.bound_jobs

    def test_ratio_in_band(self):
        config = config_for(4, battery="ideal")
        stats = run_simulation(config)
        comparison = bound_comparison(config, stats)
        # Paper: 44.5-48.2 %.  Accept the 0.40-0.70 band for the
        # reproduction (see EXPERIMENTS.md for measured values).
        assert 0.40 < comparison.ratio < 0.70

    def test_gap_report_fractions_sum_to_one(self):
        config = config_for(4, battery="ideal")
        stats = run_simulation(config)
        report = gap_report(config, stats)
        total = (
            report["spent_compute"]
            + report["spent_data"]
            + report["spent_upload"]
            + report["conversion_loss"]
            + report["wasted_dead"]
            + report["stranded_alive"]
        )
        assert total == pytest.approx(1.0, abs=1e-6)


class TestFig8Shape:
    """Controller provisioning (paper Fig 8)."""

    def test_plateau_at_node_limited_lifetime(self):
        unlimited = run_simulation(config_for(4)).jobs_fractional
        plateau = run_simulation(
            config_for(4, controllers=4)
        ).jobs_fractional
        assert plateau == pytest.approx(unlimited, rel=0.05)

    def test_single_controller_limits_lifetime(self):
        unlimited = run_simulation(config_for(4)).jobs_fractional
        limited = run_simulation(config_for(4, controllers=1)).jobs_fractional
        assert limited < 0.9 * unlimited

    def test_tails_decrease_with_mesh_size(self):
        # With one controller, bigger meshes complete fewer jobs because
        # the controller burns proportionally more (paper Sec 7.3).
        j4 = run_simulation(config_for(4, controllers=1)).jobs_fractional
        j6 = run_simulation(config_for(6, controllers=1)).jobs_fractional
        assert j6 < j4
