"""End-to-end fleet determinism: workers, shards, caches, the CLI.

The exported ``aggregate`` section of a fleet bundle is a pure function
of ``(distribution, fleet_seed, size)``: these tests pin that identity
across worker counts, chunk sizes, shard splits (merge of independent
aggregators) and cache replay, and check the garment configurations
themselves round-trip and hash stably.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import time

import pytest

from repro.cli import main
from repro.config import SimulationConfig
from repro.errors import ConfigurationError, ShardError
from repro.fleet import (
    FLEET_PRESETS,
    FleetAggregator,
    fleet_bundle,
    run_fleet,
)
from repro.fleet.shards import run_sharded_fleet
from repro.orchestration.cache import SweepCache, config_hash

DIST = FLEET_PRESETS["smoke"]
SEED = 2005
SIZE = 8

QUIET = logging.getLogger("test.fleet.runs")
QUIET.addHandler(logging.NullHandler())
QUIET.propagate = False


def _crash_once_pool_worker(payload: dict) -> dict:
    """Pool worker that hard-kills its process once (via a sentinel).

    ``os._exit`` bypasses all cleanup, so the executor sees a dead
    worker (``BrokenProcessPool``) — the crash mode the retry loop
    must contain by rebuilding the pool.
    """
    from repro.fleet.shards import _shard_worker

    sentinel = pathlib.Path(os.environ["ETSIM_TEST_CRASH_SENTINEL"])
    if payload["shard"]["index"] == 1 and not sentinel.exists():
        sentinel.write_text("crashed")
        os._exit(23)
    return _shard_worker(payload)


def _sleepy_pool_worker(payload: dict) -> dict:
    """Pool worker that outsleeps any reasonable per-round timeout."""
    from repro.fleet.shards import _shard_worker

    time.sleep(2.0)
    return _shard_worker(payload)


def aggregate_json(result) -> str:
    return json.dumps(result.aggregator.aggregate(), sort_keys=True)


class TestDeterminism:
    def test_worker_count_cannot_change_the_aggregate(self):
        sequential = run_fleet(DIST, SIZE, SEED, workers=1)
        parallel = run_fleet(DIST, SIZE, SEED, workers=2)
        assert aggregate_json(sequential) == aggregate_json(parallel)

    def test_chunk_size_cannot_change_the_aggregate(self):
        small = run_fleet(DIST, SIZE, SEED, chunk_size=3)
        large = run_fleet(DIST, SIZE, SEED, chunk_size=1000)
        assert aggregate_json(small) == aggregate_json(large)

    def test_shard_merge_matches_single_stream(self):
        single = run_fleet(DIST, SIZE, SEED)
        # Two shards of the same fleet, aggregated independently and
        # merged — as two hosts covering disjoint index ranges would.
        first = run_fleet(DIST, 3, SEED, start=0)
        second = run_fleet(DIST, SIZE - 3, SEED, start=3)
        merged = FleetAggregator.from_state(
            json.loads(json.dumps(first.aggregator.state_dict()))
        )
        merged.merge(second.aggregator)
        assert (
            json.dumps(merged.aggregate(), sort_keys=True)
            == aggregate_json(single)
        )

    def test_run_fleet_rejects_a_mismatched_aggregator(self):
        # A caller-supplied aggregator bucketed for a different
        # distribution (e.g. rebuilt from a stale shard state) would
        # fold garments into misaligned histograms — refused up front.
        with pytest.raises(ConfigurationError, match="bucket spec"):
            run_fleet(DIST, 2, SEED, aggregator=FleetAggregator())

    def test_run_fleet_accepts_the_matching_aggregator(self):
        from repro.fleet import aggregator_for

        aggregator = aggregator_for(DIST)
        first = run_fleet(DIST, 3, SEED, aggregator=aggregator)
        resumed = run_fleet(
            DIST, SIZE - 3, SEED, start=3, aggregator=first.aggregator
        )
        single = run_fleet(DIST, SIZE, SEED)
        assert aggregate_json(resumed) == aggregate_json(single)

    def test_cache_replay_is_bit_identical(self, tmp_path):
        cache_a = SweepCache(tmp_path, backend="sharded")
        fresh = run_fleet(DIST, SIZE, SEED, cache=cache_a)
        assert fresh.executed == SIZE and fresh.cached == 0

        cache_b = SweepCache(tmp_path, backend="sharded")
        replay = run_fleet(DIST, SIZE, SEED, cache=cache_b)
        assert replay.cached == SIZE and replay.executed == 0
        assert aggregate_json(replay) == aggregate_json(fresh)

    def test_bundle_carries_the_reproduction_recipe(self):
        result = run_fleet(DIST, SIZE, SEED, workers=2)
        bundle = fleet_bundle(DIST, SIZE, SEED, result, workers=2)
        assert bundle["fleet"]["preset"] == DIST.name
        assert bundle["fleet"]["seed"] == SEED
        assert bundle["fleet"]["size"] == SIZE
        # The embedded distribution reconstructs the exact sampler.
        from repro.fleet.distribution import FleetDistribution

        clone = FleetDistribution.from_dict(bundle["fleet"]["distribution"])
        assert clone == DIST
        assert bundle["aggregate"]["count"] == SIZE
        assert bundle["run"]["workers"] == 2


class TestMemoryBound:
    def test_aggregator_state_does_not_grow_with_fleet_size(self):
        small = run_fleet(DIST, 4, SEED)
        large = run_fleet(DIST, 16, SEED)
        small_state = json.dumps(small.aggregator.state_dict())
        large_state = json.dumps(large.aggregator.state_dict())
        # O(1): 4x the garments, same fixed-size state (up to digit
        # count in the scalars — not per-garment growth).
        assert len(large_state) <= len(small_state) + 200

    def test_progress_hook_sees_every_garment_once(self):
        seen = []
        run_fleet(
            DIST, SIZE, SEED, chunk_size=3,
            progress=lambda record, done, size: seen.append(
                (record.params["garment"], done, size)
            ),
        )
        assert sorted(g for g, _, _ in seen) == list(range(SIZE))
        assert [done for _, done, _ in seen] == list(range(1, SIZE + 1))
        assert all(size == SIZE for _, _, size in seen)


class TestGarmentConfigs:
    def test_round_trip_and_stable_hashes(self):
        for index in range(6):
            config = DIST.garment_config(SEED, index)
            clone = SimulationConfig.from_dict(
                json.loads(json.dumps(config.to_dict()))
            )
            assert clone == config
            assert config_hash(clone) == config_hash(config)


class TestFleetCli:
    def test_json_bundle_is_deterministic_across_workers(self, capsys):
        def bundle(workers: str) -> dict:
            assert main(
                ["fleet", "--smoke", "--size", "6", "--json",
                 "--workers", workers]
            ) == 0
            return json.loads(capsys.readouterr().out)

        one = bundle("1")
        two = bundle("2")
        assert one["aggregate"] == two["aggregate"]
        assert one["aggregate"]["count"] == 6
        assert one["fleet"]["preset"] == "smoke"

    def test_human_readable_summary(self, capsys):
        assert main(
            ["fleet", "--preset", "smoke", "--size", "5", "--fleet-seed",
             "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet 'smoke': 5 garments, seed 7" in out
        assert "survivors by lifetime" in out
        assert "death cause" in out

    def test_cache_backend_flag_round_trips(self, tmp_path, capsys):
        argv = [
            "fleet", "--preset", "smoke", "--size", "4", "--json",
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["run"]["executed"] == 4
        assert (tmp_path / "cache.sqlite").is_file()
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["run"]["cached"] == 4
        assert second["aggregate"] == first["aggregate"]


class TestPoolFaultTolerance:
    """Real-process failure modes of the local shard driver."""

    def test_killed_worker_is_retried_on_a_fresh_pool(
        self, tmp_path, monkeypatch
    ):
        sentinel = tmp_path / "crash-sentinel"
        monkeypatch.setenv("ETSIM_TEST_CRASH_SENTINEL", str(sentinel))
        sharded = run_sharded_fleet(
            DIST, SIZE, SEED, 2,
            directory=tmp_path / "shards",
            worker=_crash_once_pool_worker,
            pool_workers=2,
            backoff_s=0.0,
            logger=QUIET,
        )
        assert sentinel.exists()  # the crash really happened
        single = run_fleet(DIST, SIZE, SEED)
        assert json.dumps(
            sharded.result.aggregator.aggregate(), sort_keys=True
        ) == json.dumps(single.aggregator.aggregate(), sort_keys=True)
        attempts = {
            row["index"]: row["attempts"] for row in sharded.shards
        }
        assert attempts[1] >= 2

    def test_round_timeout_fails_the_run_as_shard_error(self, tmp_path):
        began = time.monotonic()
        with pytest.raises(ShardError):
            run_sharded_fleet(
                DIST, 2, SEED, 2,
                directory=tmp_path,
                worker=_sleepy_pool_worker,
                pool_workers=2,
                max_attempts=1,
                timeout_s=0.3,
                backoff_s=0.0,
                logger=QUIET,
            )
        # The driver gave up on the timeout, not on the 2s sleeps.
        assert time.monotonic() - began < 1.9
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert all(
            entry["status"] == "failed"
            and "timed out" in entry["error"]
            for entry in manifest["shards"].values()
        )


class TestShardedCli:
    def test_shards_flag_matches_single_stream(self, capsys):
        assert main(
            ["fleet", "--smoke", "--size", "6", "--json"]
        ) == 0
        single = json.loads(capsys.readouterr().out)
        assert main(
            ["fleet", "--smoke", "--size", "6", "--json",
             "--shards", "2"]
        ) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["aggregate"] == single["aggregate"]
        assert len(sharded["run"]["shards"]) == 2
        assert sharded["stream"]["lifetime_frames"]["source"] == (
            "histogram"
        )
        assert sharded["stream"]["lifetime_frames"]["p50"] is not None

    def test_shard_index_plus_merge_round_trip(self, tmp_path, capsys):
        assert main(
            ["fleet", "--smoke", "--size", "6", "--json"]
        ) == 0
        single = json.loads(capsys.readouterr().out)
        files = []
        for index in range(2):
            out = tmp_path / f"s{index}.json"
            files.append(str(out))
            assert main(
                ["fleet", "--smoke", "--size", "6",
                 "--shard-index", str(index), "--shard-count", "2",
                 "--shard-out", str(out)]
            ) == 0
        capsys.readouterr()
        assert main(["fleet-merge", *files, "--json"]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["aggregate"] == single["aggregate"]

    def test_merge_rejects_mismatched_fleet_seed(self, tmp_path, capsys):
        for index, seed in ((0, "1"), (1, "2")):
            assert main(
                ["fleet", "--smoke", "--size", "6",
                 "--fleet-seed", seed,
                 "--shard-index", str(index), "--shard-count", "2",
                 "--shard-out", str(tmp_path / f"s{index}.json")]
            ) == 0
        capsys.readouterr()
        with pytest.raises(ConfigurationError, match="seed"):
            main(
                ["fleet-merge", str(tmp_path / "s0.json"),
                 str(tmp_path / "s1.json")]
            )

    def test_incompatible_shard_flags_exit_with_usage_error(self):
        with pytest.raises(SystemExit):
            main(
                ["fleet", "--smoke", "--size", "4", "--shards", "2",
                 "--shard-index", "0", "--shard-count", "2"]
            )
        with pytest.raises(SystemExit):
            main(
                ["fleet", "--smoke", "--size", "4",
                 "--shard-index", "0"]
            )
        with pytest.raises(SystemExit):
            main(
                ["fleet", "--smoke", "--size", "4", "--shards", "2",
                 "--trace", "t.jsonl"]
            )

    def test_shard_trace_lines_carry_shard_tags(self, tmp_path, capsys):
        trace_path = tmp_path / "shard.jsonl"
        assert main(
            ["fleet", "--smoke", "--size", "4",
             "--shard-index", "1", "--shard-count", "2",
             "--shard-out", str(tmp_path / "s1.json"),
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        assert lines
        assert all(line["shard"] == 1 for line in lines)
        assert all(line["shard_count"] == 2 for line in lines)

    def test_compare_routing_reports_both_variants(self, capsys):
        assert main(
            ["fleet", "--smoke", "--size", "4", "--compare-routing"]
        ) == 0
        out = capsys.readouterr().out
        assert "ear" in out and "sdr" in out
        assert "mean lifetime ear/sdr" in out
