"""End-to-end fleet determinism: workers, shards, caches, the CLI.

The exported ``aggregate`` section of a fleet bundle is a pure function
of ``(distribution, fleet_seed, size)``: these tests pin that identity
across worker counts, chunk sizes, shard splits (merge of independent
aggregators) and cache replay, and check the garment configurations
themselves round-trip and hash stably.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.config import SimulationConfig
from repro.fleet import (
    FLEET_PRESETS,
    FleetAggregator,
    fleet_bundle,
    run_fleet,
)
from repro.orchestration.cache import SweepCache, config_hash

DIST = FLEET_PRESETS["smoke"]
SEED = 2005
SIZE = 8


def aggregate_json(result) -> str:
    return json.dumps(result.aggregator.aggregate(), sort_keys=True)


class TestDeterminism:
    def test_worker_count_cannot_change_the_aggregate(self):
        sequential = run_fleet(DIST, SIZE, SEED, workers=1)
        parallel = run_fleet(DIST, SIZE, SEED, workers=2)
        assert aggregate_json(sequential) == aggregate_json(parallel)

    def test_chunk_size_cannot_change_the_aggregate(self):
        small = run_fleet(DIST, SIZE, SEED, chunk_size=3)
        large = run_fleet(DIST, SIZE, SEED, chunk_size=1000)
        assert aggregate_json(small) == aggregate_json(large)

    def test_shard_merge_matches_single_stream(self):
        single = run_fleet(DIST, SIZE, SEED)
        # Two shards of the same fleet, aggregated independently and
        # merged — as two hosts covering disjoint index ranges would.
        first = run_fleet(DIST, 3, SEED, start=0)
        second = run_fleet(DIST, SIZE - 3, SEED, start=3)
        merged = FleetAggregator.from_state(
            json.loads(json.dumps(first.aggregator.state_dict()))
        )
        merged.merge(second.aggregator)
        assert (
            json.dumps(merged.aggregate(), sort_keys=True)
            == aggregate_json(single)
        )

    def test_cache_replay_is_bit_identical(self, tmp_path):
        cache_a = SweepCache(tmp_path, backend="sharded")
        fresh = run_fleet(DIST, SIZE, SEED, cache=cache_a)
        assert fresh.executed == SIZE and fresh.cached == 0

        cache_b = SweepCache(tmp_path, backend="sharded")
        replay = run_fleet(DIST, SIZE, SEED, cache=cache_b)
        assert replay.cached == SIZE and replay.executed == 0
        assert aggregate_json(replay) == aggregate_json(fresh)

    def test_bundle_carries_the_reproduction_recipe(self):
        result = run_fleet(DIST, SIZE, SEED, workers=2)
        bundle = fleet_bundle(DIST, SIZE, SEED, result, workers=2)
        assert bundle["fleet"]["preset"] == DIST.name
        assert bundle["fleet"]["seed"] == SEED
        assert bundle["fleet"]["size"] == SIZE
        # The embedded distribution reconstructs the exact sampler.
        from repro.fleet.distribution import FleetDistribution

        clone = FleetDistribution.from_dict(bundle["fleet"]["distribution"])
        assert clone == DIST
        assert bundle["aggregate"]["count"] == SIZE
        assert bundle["run"]["workers"] == 2


class TestMemoryBound:
    def test_aggregator_state_does_not_grow_with_fleet_size(self):
        small = run_fleet(DIST, 4, SEED)
        large = run_fleet(DIST, 16, SEED)
        small_state = json.dumps(small.aggregator.state_dict())
        large_state = json.dumps(large.aggregator.state_dict())
        # O(1): 4x the garments, same fixed-size state (up to digit
        # count in the scalars — not per-garment growth).
        assert len(large_state) <= len(small_state) + 200

    def test_progress_hook_sees_every_garment_once(self):
        seen = []
        run_fleet(
            DIST, SIZE, SEED, chunk_size=3,
            progress=lambda record, done, size: seen.append(
                (record.params["garment"], done, size)
            ),
        )
        assert sorted(g for g, _, _ in seen) == list(range(SIZE))
        assert [done for _, done, _ in seen] == list(range(1, SIZE + 1))
        assert all(size == SIZE for _, _, size in seen)


class TestGarmentConfigs:
    def test_round_trip_and_stable_hashes(self):
        for index in range(6):
            config = DIST.garment_config(SEED, index)
            clone = SimulationConfig.from_dict(
                json.loads(json.dumps(config.to_dict()))
            )
            assert clone == config
            assert config_hash(clone) == config_hash(config)


class TestFleetCli:
    def test_json_bundle_is_deterministic_across_workers(self, capsys):
        def bundle(workers: str) -> dict:
            assert main(
                ["fleet", "--smoke", "--size", "6", "--json",
                 "--workers", workers]
            ) == 0
            return json.loads(capsys.readouterr().out)

        one = bundle("1")
        two = bundle("2")
        assert one["aggregate"] == two["aggregate"]
        assert one["aggregate"]["count"] == 6
        assert one["fleet"]["preset"] == "smoke"

    def test_human_readable_summary(self, capsys):
        assert main(
            ["fleet", "--preset", "smoke", "--size", "5", "--fleet-seed",
             "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet 'smoke': 5 garments, seed 7" in out
        assert "survivors by lifetime" in out
        assert "death cause" in out

    def test_cache_backend_flag_round_trips(self, tmp_path, capsys):
        argv = [
            "fleet", "--preset", "smoke", "--size", "4", "--json",
            "--cache-dir", str(tmp_path), "--cache-backend", "sqlite",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["run"]["executed"] == 4
        assert (tmp_path / "cache.sqlite").is_file()
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["run"]["cached"] == 4
        assert second["aggregate"] == first["aggregate"]
