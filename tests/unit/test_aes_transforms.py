"""Unit tests for the AES round transforms (repro.aes.transforms)."""

import pytest

from repro.aes.state import bytes_to_grid, grid_to_bytes, state_index
from repro.aes.transforms import (
    add_round_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    inv_sub_bytes_shift_rows,
    mix_columns,
    shift_rows,
    sub_bytes,
    sub_bytes_shift_rows,
)

#: FIPS-197 Appendix B round-1 intermediate states.
START_R1 = bytes.fromhex("193de3bea0f4e22b9ac68d2ae9f84808")
AFTER_SUB = bytes.fromhex("d42711aee0bf98f1b8b45de51e415230")
AFTER_SHIFT = bytes.fromhex("d4bf5d30e0b452aeb84111f11e2798e5")
AFTER_MIX = bytes.fromhex("046681e5e0cb199a48f8d37a2806264c")
ROUND_KEY_1 = bytes.fromhex("a0fafe1788542cb123a339392a6c7605")
AFTER_ARK = bytes.fromhex("a49c7ff2689f352b6b5bea43026a5049")


class TestStateLayout:
    def test_grid_round_trip(self):
        block = bytes(range(16))
        assert grid_to_bytes(bytes_to_grid(block)) == block

    def test_column_major_layout(self):
        grid = bytes_to_grid(bytes(range(16)))
        # state[r][c] = input[r + 4c]
        assert grid[0][0] == 0
        assert grid[1][0] == 1
        assert grid[0][1] == 4
        assert grid[3][3] == 15

    def test_state_index(self):
        assert state_index(0, 0) == 0
        assert state_index(3, 3) == 15
        with pytest.raises(IndexError):
            state_index(4, 0)

    def test_bad_block_rejected(self):
        with pytest.raises(ValueError):
            sub_bytes(b"short")
        with pytest.raises(TypeError):
            sub_bytes("not-bytes")  # type: ignore[arg-type]


class TestSubBytes:
    def test_fips_appendix_b_round1(self):
        assert sub_bytes(START_R1) == AFTER_SUB

    def test_inverse_round_trip(self):
        assert inv_sub_bytes(sub_bytes(START_R1)) == START_R1


class TestShiftRows:
    def test_fips_appendix_b_round1(self):
        assert shift_rows(AFTER_SUB) == AFTER_SHIFT

    def test_row0_unchanged(self):
        block = bytes(range(16))
        shifted = shift_rows(block)
        # Row 0 lives at indices 0, 4, 8, 12 and must not move.
        for col in range(4):
            assert shifted[4 * col] == block[4 * col]

    def test_inverse_round_trip(self):
        block = bytes(range(16))
        assert inv_shift_rows(shift_rows(block)) == block

    def test_four_applications_identity(self):
        block = bytes(range(16))
        result = block
        for _ in range(4):
            result = shift_rows(result)
        assert result == block


class TestMixColumns:
    def test_fips_appendix_b_round1(self):
        assert mix_columns(AFTER_SHIFT) == AFTER_MIX

    def test_inverse_round_trip(self):
        assert inv_mix_columns(mix_columns(AFTER_SHIFT)) == AFTER_SHIFT

    def test_known_single_column(self):
        # Widely published MixColumns vector: db135345 -> 8e4da1bc.
        column = bytes.fromhex("db135345") + bytes(12)
        mixed = mix_columns(column)
        assert mixed[:4] == bytes.fromhex("8e4da1bc")


class TestAddRoundKey:
    def test_fips_appendix_b_round1(self):
        assert add_round_key(AFTER_MIX, ROUND_KEY_1) == AFTER_ARK

    def test_is_an_involution(self):
        assert add_round_key(AFTER_ARK, ROUND_KEY_1) == AFTER_MIX

    def test_zero_key_is_identity(self):
        assert add_round_key(START_R1, bytes(16)) == START_R1


class TestFusedModule1:
    def test_matches_separate_transforms(self):
        assert sub_bytes_shift_rows(START_R1) == shift_rows(
            sub_bytes(START_R1)
        )

    def test_inverse_round_trip(self):
        fused = sub_bytes_shift_rows(START_R1)
        assert inv_sub_bytes_shift_rows(fused) == START_R1
