"""Battery banks must mirror the scalar models' arithmetic exactly.

Every test drives a bank and a row of scalar batteries through the
same draw/recharge/rest sequence and compares the full state — the
vector engine's credibility rests on the bank being the *same* battery
model, just stored column-wise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.battery.ideal import IdealBattery
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters
from repro.config import PlatformConfig
from repro.errors import BatteryError, ConfigurationError
from repro.sim.vector_bank import (
    BankBatteryView,
    IdealBatteryBank,
    ThinFilmBatteryBank,
    build_battery_bank,
)

CAPACITY = 3_000.0


def thin_film_pair(count: int = 4):
    params = ThinFilmParameters(capacity_pj=CAPACITY)
    bank = ThinFilmBatteryBank(count, params)
    scalars = [ThinFilmBattery(params) for _ in range(count)]
    return bank, scalars


def drive(bank, scalars, frames):
    """Apply ``frames`` of (requests, durations) to both sides.

    The scalar side skips dead cells and zero requests exactly like the
    bank's ``active`` mask does.
    """
    for requests, durations in frames:
        bank.draw(
            np.asarray(requests, dtype=float),
            np.asarray(durations, dtype=float),
        )
        for battery, request, duration in zip(scalars, requests, durations):
            if battery.alive and request > 0.0:
                battery.draw(request, max(duration, 1.0))


class TestThinFilmParity:
    def test_draw_sequence_matches_scalar_cells(self):
        bank, scalars = thin_film_pair()
        frames = [
            ([120.0, 0.0, 55.0, 300.0], [256.0, 0.0, 128.0, 640.0]),
            ([80.0, 410.0, 0.0, 90.0], [128.0, 512.0, 0.0, 256.0]),
            ([260.0, 33.0, 500.0, 12.0], [384.0, 64.0, 1024.0, 32.0]),
        ]
        drive(bank, scalars, frames)
        for i, battery in enumerate(scalars):
            assert bank.delivered[i] == pytest.approx(
                battery.delivered_pj, rel=1e-12
            )
            assert bank.consumed[i] == pytest.approx(
                battery.consumed_pj, rel=1e-12
            )
            assert bool(bank.alive[i]) == battery.alive

    def test_deaths_land_on_the_same_draw_as_the_scalar_model(self):
        bank, scalars = thin_film_pair(count=1)
        battery = scalars[0]
        step = 0
        while battery.alive:
            step += 1
            requests = np.array([400.0])
            durations = np.array([64.0])
            _, died = bank.draw(requests, durations)
            result = battery.draw(400.0, 64.0)
            assert bool(died[0]) == result.died, f"step {step}"
        assert not bank.alive[0]

    def test_recharge_and_rest_match_scalar_cells(self):
        bank, scalars = thin_film_pair(count=2)
        drive(bank, scalars, [([500.0, 900.0], [256.0, 256.0])])
        accepted = bank.recharge(
            np.array([200.0, 5_000.0]), np.array([True, True])
        )
        for i, battery in enumerate(scalars):
            assert accepted[i] == pytest.approx(
                battery.recharge([200.0, 5_000.0][i]), rel=1e-12
            )
        bank.rest(4_096.0, np.array([True, True]))
        for battery in scalars:
            battery.rest(4_096.0)
        for i, battery in enumerate(scalars):
            assert bank.consumed[i] == pytest.approx(
                battery.consumed_pj, rel=1e-12
            )
            assert bank.ema[i] == pytest.approx(
                battery._ema_power, rel=1e-12
            )

    def test_view_draw_is_the_scalar_code_path(self):
        bank, scalars = thin_film_pair(count=2)
        view = BankBatteryView(bank, 0)
        reference = scalars[0]
        for energy, duration in ((150.0, 128.0), (90.0, 64.0), (0.0, 32.0)):
            mine = view.draw(energy, duration)
            theirs = reference.draw(energy, duration)
            assert mine.delivered_pj == theirs.delivered_pj
            assert mine.voltage == theirs.voltage
            assert mine.died == theirs.died
        assert view.consumed_pj == reference.consumed_pj
        assert view.state_of_charge == reference.state_of_charge
        assert view.voltage == reference.voltage

    def test_dead_cell_scalar_draw_raises(self):
        bank, _ = thin_film_pair(count=1)
        bank.alive[0] = False
        with pytest.raises(BatteryError):
            bank.draw_one(0, 10.0, 16.0)

    def test_invalid_draw_arguments_rejected(self):
        bank, _ = thin_film_pair(count=1)
        with pytest.raises(ConfigurationError):
            bank.draw_one(0, -1.0, 16.0)
        with pytest.raises(ConfigurationError):
            bank.draw_one(0, 1.0, 0.0)


class TestIdealParity:
    def test_draw_and_recharge_match_scalar_cells(self):
        bank = IdealBatteryBank(3, capacity_pj=500.0)
        scalars = [IdealBattery(capacity_pj=500.0) for _ in range(3)]
        for requests in ([200.0, 0.0, 499.0], [200.0, 450.0, 100.0]):
            bank.draw(np.asarray(requests), np.full(3, 64.0))
            for battery, request in zip(scalars, requests):
                if battery.alive and request > 0.0:
                    battery.draw(request, 64.0)
        accepted = bank.recharge(
            np.array([50.0, 50.0, 50.0]), np.ones(3, dtype=bool)
        )
        for i, battery in enumerate(scalars):
            expected = battery.recharge(50.0) if battery.alive else 0.0
            assert accepted[i] == pytest.approx(expected, rel=1e-12)
            assert bank.delivered[i] == pytest.approx(
                battery.delivered_pj, rel=1e-12
            )
            assert bool(bank.alive[i]) == battery.alive

    def test_exhaustion_delivers_the_remainder_and_dies(self):
        bank = IdealBatteryBank(1, capacity_pj=100.0)
        delivered, died = bank.draw(np.array([150.0]), np.array([32.0]))
        assert delivered[0] == pytest.approx(100.0)
        assert bool(died[0])
        assert not bank.alive[0]


class TestBankBuilder:
    def test_builder_respects_the_battery_model(self):
        thin = build_battery_bank(PlatformConfig(battery_model="thin-film"), 4)
        assert isinstance(thin, ThinFilmBatteryBank)
        ideal = build_battery_bank(PlatformConfig(battery_model="ideal"), 4)
        assert isinstance(ideal, IdealBatteryBank)

    def test_builder_applies_the_platform_capacity(self):
        platform = PlatformConfig(battery_capacity_pj=1234.0)
        bank = build_battery_bank(platform, 2)
        assert bank.capacity_pj == 1234.0
