"""Unit tests for the simulator building blocks: nodes, jobs, workload,
stats (repro.sim)."""

import pytest

from repro.aes.cipher import encrypt_block
from repro.aes.dataflow import AesJobDataflow
from repro.battery.ideal import IdealBattery
from repro.errors import DeadNodeError, SimulationError
from repro.sim.job import Job
from repro.sim.node import NetworkNode
from repro.sim.stats import EnergyLedger, NodeStats, SimulationStats
from repro.sim.workload import JobFactory


class TestNetworkNode:
    def test_battery_node(self):
        node = NetworkNode(0, module=1, battery=IdealBattery(100.0))
        assert node.alive
        result = node.draw(40.0, 10)
        assert result.complete
        assert node.state_of_charge == pytest.approx(0.6)

    def test_infinite_node(self):
        node = NetworkNode(0, module=None, battery=None)
        node.draw(1e9, 10)
        assert node.alive
        assert node.infinite_drawn_pj == 1e9
        assert node.state_of_charge == 1.0

    def test_drawing_from_dead_node_is_a_bug(self):
        node = NetworkNode(0, module=1, battery=IdealBattery(10.0))
        node.draw(10.0, 1)
        assert not node.alive
        with pytest.raises(DeadNodeError):
            node.draw(1.0, 1)

    def test_repr(self):
        assert "module=2" in repr(
            NetworkNode(3, module=2, battery=IdealBattery())
        )


class TestJob:
    def test_walks_the_dataflow(self):
        key = bytes(16)
        flow = AesJobDataflow(key)
        job = Job(0, bytes(16), flow, origin=99)
        assert job.holder == 99
        node = 0
        while not job.completed:
            job.execute_current(node)
            node += 1
        assert job.verify()
        assert job.holder == 29  # last executing node

    def test_tampered_state_fails_verification(self):
        flow = AesJobDataflow(bytes(16))
        job = Job(0, bytes(16), flow, origin=0)
        while not job.completed:
            job.execute_current(0)
        job.state = bytes(16)  # corrupt
        assert not job.verify()

    def test_progress_fraction(self):
        flow = AesJobDataflow(bytes(16))
        job = Job(0, bytes(16), flow, origin=0)
        assert job.progress_fraction == 0.0
        for _ in range(15):
            job.execute_current(0)
        assert job.progress_fraction == pytest.approx(0.5)

    def test_verify_before_completion_rejected(self):
        flow = AesJobDataflow(bytes(16))
        job = Job(0, bytes(16), flow, origin=0)
        with pytest.raises(SimulationError):
            job.verify()

    def test_current_op_after_completion_rejected(self):
        flow = AesJobDataflow(bytes(16))
        job = Job(0, bytes(16), flow, origin=0)
        while not job.completed:
            job.execute_current(0)
        with pytest.raises(SimulationError):
            _ = job.current_operation

    def test_expected_ciphertext_matches_reference(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes(range(16))
        flow = AesJobDataflow(key)
        job = Job(0, plaintext, flow, origin=0)
        while not job.completed:
            job.execute_current(1)
        assert job.state == encrypt_block(plaintext, key)


class TestJobFactory:
    def test_deterministic_given_seed(self):
        a = JobFactory(bytes(16), seed=7, origin=0)
        b = JobFactory(bytes(16), seed=7, origin=0)
        assert a.next_job().plaintext == b.next_job().plaintext

    def test_different_seeds_differ(self):
        a = JobFactory(bytes(16), seed=7, origin=0).next_job()
        b = JobFactory(bytes(16), seed=8, origin=0).next_job()
        assert a.plaintext != b.plaintext

    def test_ids_sequential(self):
        factory = JobFactory(bytes(16), seed=1, origin=0)
        assert [factory.next_job().job_id for _ in range(3)] == [0, 1, 2]
        assert factory.created == 3


class TestEnergyLedger:
    def test_buckets_accumulate(self):
        ledger = EnergyLedger(4)
        ledger.add_compute(0, 100.0)
        ledger.add_data_tx(0, 50.0, relay=False)
        ledger.add_data_tx(1, 25.0, relay=True)
        ledger.add_upload(2, 5.0)
        assert ledger.compute_pj == 100.0
        assert ledger.data_tx_pj == 75.0
        assert ledger.node_total_pj == 180.0
        assert ledger.nodes[0].operations == 1
        assert ledger.nodes[1].packets_relayed == 1

    def test_controller_breakdown(self):
        ledger = EnergyLedger(2)
        ledger.add_controller({"rx": 10.0, "download_tx": 4.0})
        ledger.add_controller({"rx": 5.0})
        assert ledger.controller_pj["rx"] == 15.0
        assert ledger.controller_total_pj == 19.0

    def test_control_overhead_metric(self):
        # The paper's Sec 7.1 metric counts only medium exchanges.
        ledger = EnergyLedger(2)
        ledger.add_compute(0, 900.0)
        ledger.add_upload(0, 50.0)
        ledger.add_controller({"rx": 1000.0, "download_tx": 50.0})
        assert ledger.control_medium_pj == 100.0
        assert ledger.control_overhead_fraction() == pytest.approx(0.1)

    def test_death_marked_once(self):
        ledger = EnergyLedger(2)
        ledger.mark_death(0, 10)
        ledger.mark_death(0, 20)
        assert ledger.nodes[0].died_at_frame == 10


class TestSimulationStats:
    def test_fractional_jobs(self):
        stats = SimulationStats(jobs_completed=10, partial_progress=0.8)
        assert stats.jobs_fractional == pytest.approx(10.8)

    def test_summary_is_json_safe(self):
        import json

        stats = SimulationStats(energy=EnergyLedger(2))
        json.dumps(stats.summary())

    def test_node_stats_total(self):
        stats = NodeStats(compute_pj=1.0, data_tx_pj=2.0, upload_pj=3.0)
        assert stats.total_pj == 6.0
