"""Parity and safety of the pluggable sweep-cache backends."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.orchestration.backends import (
    CACHE_BACKEND_ENV,
    CACHE_BACKENDS,
    SqliteBackend,
    default_backend_name,
    make_backend,
)
from repro.orchestration.cache import CACHE_SCHEMA_VERSION, SweepCache

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "1" * 62

RECORD = {
    "label": "4x4/ear",
    "summary": {"jobs_fractional": 12.5, "lifetime_frames": 64},
}


@pytest.fixture(params=CACHE_BACKENDS)
def backend_name(request):
    return request.param


class TestBackendParity:
    def test_round_trip_is_bit_identical(self, tmp_path, backend_name):
        cache = SweepCache(tmp_path / backend_name, backend=backend_name)
        cache.store(KEY_A, RECORD)
        loaded = cache.lookup(KEY_A)
        schema = loaded.pop("schema")
        assert schema == CACHE_SCHEMA_VERSION
        assert json.dumps(loaded, sort_keys=True) == json.dumps(
            RECORD, sort_keys=True
        )

    def test_hit_miss_accounting_matches_across_backends(self, tmp_path):
        counters = {}
        for name in CACHE_BACKENDS:
            cache = SweepCache(tmp_path / name, backend=name)
            cache.lookup(KEY_A)  # miss
            cache.store(KEY_A, RECORD)
            cache.lookup(KEY_A)  # hit
            cache.lookup(KEY_B)  # miss
            counters[name] = (cache.hits, cache.misses, len(cache))
        assert len(set(counters.values())) == 1
        assert counters["flat"] == (1, 2, 1)

    def test_stale_schema_counts_as_miss(self, tmp_path, backend_name):
        cache = SweepCache(tmp_path / backend_name, backend=backend_name)
        cache.backend.save(KEY_A, {**RECORD, "schema": -1})
        assert cache.lookup(KEY_A) is None
        assert cache.misses == 1

    def test_clear_removes_every_entry(self, tmp_path, backend_name):
        cache = SweepCache(tmp_path / backend_name, backend=backend_name)
        cache.store(KEY_A, RECORD)
        cache.store(KEY_B, RECORD)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.lookup(KEY_A) is None

    def test_lookup_never_creates_files(self, tmp_path, backend_name):
        directory = tmp_path / backend_name
        cache = SweepCache(directory, backend=backend_name)
        assert cache.lookup(KEY_A) is None
        assert len(cache) == 0
        assert not directory.exists()

    def test_concurrent_writers_leave_no_torn_records(
        self, tmp_path, backend_name
    ):
        cache = SweepCache(tmp_path / backend_name, backend=backend_name)
        keys = [f"{i:02x}" + "e" * 62 for i in range(16)]

        def hammer(worker: int) -> None:
            for round_index in range(4):
                for key in keys:
                    cache.store(
                        key,
                        {**RECORD, "worker": worker, "round": round_index},
                    )

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == len(keys)
        for key in keys:
            record = cache.lookup(key)
            assert record is not None
            assert record["label"] == RECORD["label"]
            assert record["worker"] in range(4)


class TestLayouts:
    def test_flat_is_the_default_and_reads_legacy_caches(self, tmp_path):
        legacy = SweepCache(tmp_path)  # pre-backend layout: flat files
        legacy.store(KEY_A, RECORD)
        assert (tmp_path / f"{KEY_A}.json").is_file()
        assert SweepCache(tmp_path).lookup(KEY_A) is not None

    def test_sharded_layout_uses_two_hex_prefix(self, tmp_path):
        cache = SweepCache(tmp_path, backend="sharded")
        cache.store(KEY_A, RECORD)
        assert (tmp_path / KEY_A[:2] / f"{KEY_A}.json").is_file()
        assert cache._path(KEY_A).parent.name == KEY_A[:2]

    def test_sqlite_layout_is_one_database_file(self, tmp_path):
        cache = SweepCache(tmp_path, backend="sqlite")
        cache.store(KEY_A, RECORD)
        cache.store(KEY_B, RECORD)
        assert (tmp_path / SqliteBackend.filename).is_file()
        entries = [
            p for p in tmp_path.iterdir() if p.suffix == ".json"
        ]
        assert entries == []

    def test_backends_do_not_see_each_others_records(self, tmp_path):
        SweepCache(tmp_path, backend="flat").store(KEY_A, RECORD)
        assert SweepCache(tmp_path, backend="sqlite").lookup(KEY_A) is None


class TestSelection:
    def test_unknown_backend_name_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepCache(tmp_path, backend="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            make_backend("carrier-pigeon", tmp_path)

    def test_env_var_selects_the_default_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_BACKEND_ENV, "sharded")
        assert default_backend_name() == "sharded"
        assert SweepCache(tmp_path).backend_name == "sharded"

    def test_env_var_rejects_unknown_names(self, monkeypatch):
        monkeypatch.setenv(CACHE_BACKEND_ENV, "carrier-pigeon")
        with pytest.raises(ConfigurationError):
            default_backend_name()

    def test_explicit_backend_object_wins(self, tmp_path):
        backend = SqliteBackend(tmp_path)
        cache = SweepCache(tmp_path, backend=backend)
        assert cache.backend is backend
        assert cache.backend_name == "sqlite"
