"""Unit behaviour of the shard driver: split, sign, merge, resume."""

from __future__ import annotations

import json
import logging

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, ShardError
from repro.fleet import FLEET_PRESETS, run_fleet
from repro.fleet.shards import (
    MANIFEST_FILENAME,
    SHARD_STATE_SCHEMA,
    ShardManifest,
    ShardSpec,
    fleet_signature,
    load_shard_state,
    merge_shard_states,
    merged_bundle,
    run_shard,
    run_sharded_fleet,
    shard_filename,
    shard_spec_for,
    split_fleet,
    write_shard_state,
)
from repro.fleet.shards import _shard_worker

DIST = FLEET_PRESETS["smoke"]
SEED = 2005
SIZE = 6

QUIET = logging.getLogger("test.fleet.shards")
QUIET.addHandler(logging.NullHandler())
QUIET.propagate = False


def shard_docs(size=SIZE, count=2, seed=SEED):
    return [
        run_shard(DIST, seed, size, spec)
        for spec in split_fleet(size, count)
    ]


class TestSplitFleet:
    def test_tiles_the_range_exactly(self):
        for size, count in ((10, 3), (7, 7), (5, 8), (0, 2), (100, 1)):
            specs = split_fleet(size, count)
            assert len(specs) == count
            cursor = 0
            for index, spec in enumerate(specs):
                assert spec.index == index
                assert spec.count == count
                assert spec.start == cursor
                cursor = spec.stop
            assert cursor == size

    def test_sizes_are_near_equal(self):
        sizes = [spec.size for spec in split_fleet(10, 3)]
        assert sizes == [4, 3, 3]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            split_fleet(-1, 2)
        with pytest.raises(ConfigurationError):
            split_fleet(10, 0)
        with pytest.raises(ConfigurationError):
            shard_spec_for(10, 2, 2)

    def test_spec_for_matches_split(self):
        assert shard_spec_for(10, 3, 1) == split_fleet(10, 3)[1]


class TestFleetSignature:
    def test_stable_for_identical_fleets(self):
        assert fleet_signature(DIST, SEED, SIZE) == fleet_signature(
            DIST, SEED, SIZE
        )

    def test_changes_with_any_identity_axis(self):
        reference = fleet_signature(DIST, SEED, SIZE)
        assert fleet_signature(DIST, SEED + 1, SIZE) != reference
        assert fleet_signature(DIST, SEED, SIZE + 1) != reference
        assert (
            fleet_signature(FLEET_PRESETS["default"], SEED, SIZE)
            != reference
        )
        assert (
            fleet_signature(
                DIST, SEED, SIZE, SimulationConfig(routing="sdr")
            )
            != reference
        )


class TestShardStateFiles:
    def test_round_trip(self, tmp_path):
        document = shard_docs(count=1)[0]
        path = tmp_path / shard_filename(ShardSpec(0, 1, 0, SIZE))
        write_shard_state(path, document)
        assert load_shard_state(path) == json.loads(
            json.dumps(document)
        )
        # Atomic write leaves no scratch files behind.
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ConfigurationError):
            load_shard_state(path)

    def test_run_shard_rejects_out_of_range_spec(self):
        with pytest.raises(ConfigurationError):
            run_shard(DIST, SEED, SIZE, ShardSpec(0, 1, 0, SIZE + 1))


class TestMergeValidation:
    def test_merge_is_bit_identical_to_single_stream(self):
        single = run_fleet(DIST, SIZE, SEED)
        merged = merge_shard_states(shard_docs(count=3))
        assert json.dumps(
            merged.aggregator.aggregate(), sort_keys=True
        ) == json.dumps(single.aggregator.aggregate(), sort_keys=True)

    def test_rejects_empty_input(self):
        with pytest.raises(ConfigurationError):
            merge_shard_states([])

    def test_rejects_schema_mismatch(self):
        docs = shard_docs()
        docs[1]["schema"] = SHARD_STATE_SCHEMA + 1
        with pytest.raises(ConfigurationError):
            merge_shard_states(docs)

    def test_rejects_mismatched_fleet_seed(self):
        docs = shard_docs()
        alien = run_shard(
            DIST, SEED + 1, SIZE, split_fleet(SIZE, 2)[1]
        )
        with pytest.raises(ConfigurationError, match="seed"):
            merge_shard_states([docs[0], alien])

    def test_rejects_mismatched_distribution(self):
        other = FLEET_PRESETS["default"]
        docs = shard_docs()
        alien = run_shard(other, SEED, SIZE, split_fleet(SIZE, 2)[1])
        with pytest.raises(ConfigurationError):
            merge_shard_states([docs[0], alien])

    def test_rejects_duplicate_shard(self):
        docs = shard_docs()
        with pytest.raises(ConfigurationError, match="duplicate"):
            merge_shard_states([docs[0], docs[0]])

    def test_rejects_missing_shard(self):
        docs = shard_docs(count=3)
        with pytest.raises(ConfigurationError, match="missing"):
            merge_shard_states(docs[:2])

    def test_rejects_non_canonical_range(self):
        docs = shard_docs()
        docs[1]["shard"]["start"] += 1
        with pytest.raises(ConfigurationError, match="canonical"):
            merge_shard_states(docs)

    def test_rejects_mismatched_bucket_spec(self):
        docs = shard_docs()
        # A shard whose histograms were bucketed differently (as if it
        # ran with a stale aggregator) must be refused, not merged
        # into garbage quantiles.
        metric = docs[1]["state"]["metrics"]["lifetime_frames"]
        metric["spec"]["bucket_width"] *= 2.0
        width = metric["spec"]["bucket_width"]
        assert width  # sanity: the corruption happened
        with pytest.raises(ConfigurationError):
            merge_shard_states(docs)

    def test_merged_bundle_carries_shard_breakdown(self):
        bundle = merged_bundle(shard_docs(count=3))
        assert bundle["fleet"]["preset"] == DIST.name
        assert [s["index"] for s in bundle["run"]["shards"]] == [0, 1, 2]
        assert (
            bundle["stream"]["lifetime_frames"]["source"] == "histogram"
        )
        assert bundle["stream"]["lifetime_frames"]["p50"] is not None


class TestShardManifest:
    def test_fresh_manifest_is_all_pending(self, tmp_path):
        manifest = ShardManifest.load_or_create(
            tmp_path / MANIFEST_FILENAME, signature="sig", shard_count=3
        )
        assert manifest.pending() == [0, 1, 2]
        assert (tmp_path / MANIFEST_FILENAME).is_file()

    def test_marks_persist_across_reload(self, tmp_path):
        path = tmp_path / MANIFEST_FILENAME
        manifest = ShardManifest.load_or_create(
            path, signature="sig", shard_count=2
        )
        manifest.mark(0, "done", file="shard_0000of0002.json")
        manifest.mark(1, "failed", error="boom", bump_attempt=True)
        reloaded = ShardManifest.load_or_create(
            path, signature="sig", shard_count=2
        )
        assert reloaded.pending() == [1]
        assert reloaded.attempts(1) == 1
        assert reloaded.entry(1)["error"] == "boom"

    def test_running_demotes_to_pending_on_reload(self, tmp_path):
        path = tmp_path / MANIFEST_FILENAME
        manifest = ShardManifest.load_or_create(
            path, signature="sig", shard_count=2
        )
        manifest.mark(0, "running", bump_attempt=True)
        # A manifest left mid-run by a killed driver: the shard never
        # committed its state file, so it must re-run.
        reloaded = ShardManifest.load_or_create(
            path, signature="sig", shard_count=2
        )
        assert reloaded.entry(0)["status"] == "pending"
        assert reloaded.pending() == [0, 1]

    def test_refuses_a_different_fleet(self, tmp_path):
        path = tmp_path / MANIFEST_FILENAME
        ShardManifest.load_or_create(
            path, signature="sig-a", shard_count=2
        )
        with pytest.raises(ConfigurationError, match="different fleet"):
            ShardManifest.load_or_create(
                path, signature="sig-b", shard_count=2
            )

    def test_refuses_a_different_shard_count(self, tmp_path):
        path = tmp_path / MANIFEST_FILENAME
        ShardManifest.load_or_create(path, signature="sig", shard_count=2)
        with pytest.raises(ConfigurationError, match="-way"):
            ShardManifest.load_or_create(
                path, signature="sig", shard_count=3
            )


class TestRunShardedFleet:
    def test_inline_matches_single_stream(self):
        single = run_fleet(DIST, SIZE, SEED)
        sharded = run_sharded_fleet(
            DIST, SIZE, SEED, 3, inline=True, logger=QUIET
        )
        assert json.dumps(
            sharded.result.aggregator.aggregate(), sort_keys=True
        ) == json.dumps(single.aggregator.aggregate(), sort_keys=True)
        assert sharded.result.executed == SIZE
        assert sharded.directory is None  # ephemeral dir cleaned up

    def test_retry_budget_exhaustion_raises_shard_error(self, tmp_path):
        def always_fails(payload):
            raise RuntimeError("kaput")

        naps: list[float] = []
        with pytest.raises(ShardError, match="after 2 attempt"):
            run_sharded_fleet(
                DIST, SIZE, SEED, 2,
                directory=tmp_path,
                inline=True,
                worker=always_fails,
                max_attempts=2,
                backoff_s=0.25,
                sleep=naps.append,
                logger=QUIET,
            )
        # One backoff nap between the two rounds, and the manifest
        # records the failure for post-mortem.
        assert naps == [0.25]
        manifest = json.loads(
            (tmp_path / MANIFEST_FILENAME).read_text()
        )
        assert all(
            entry["status"] == "failed" and "kaput" in entry["error"]
            for entry in manifest["shards"].values()
        )

    def test_resume_skips_finished_shards(self, tmp_path):
        calls: list[int] = []

        def counting(payload):
            calls.append(payload["shard"]["index"])
            return _shard_worker(payload)

        def crash_shard_two(payload):
            calls.append(payload["shard"]["index"])
            if payload["shard"]["index"] == 2:
                raise RuntimeError("killed mid-run")
            return _shard_worker(payload)

        # First driver "dies" after shards 0 and 1 committed.
        with pytest.raises(ShardError):
            run_sharded_fleet(
                DIST, SIZE, SEED, 3,
                directory=tmp_path,
                inline=True,
                worker=crash_shard_two,
                max_attempts=1,
                logger=QUIET,
            )
        assert sorted(calls) == [0, 1, 2]

        # The restarted driver re-runs only the missing shard.
        calls.clear()
        sharded = run_sharded_fleet(
            DIST, SIZE, SEED, 3,
            directory=tmp_path,
            inline=True,
            worker=counting,
            logger=QUIET,
        )
        assert calls == [2]
        single = run_fleet(DIST, SIZE, SEED)
        assert json.dumps(
            sharded.result.aggregator.aggregate(), sort_keys=True
        ) == json.dumps(single.aggregator.aggregate(), sort_keys=True)
        # Cached totals still cover the whole fleet.
        assert sharded.result.executed == SIZE

    def test_resume_refuses_a_different_fleet(self, tmp_path):
        run_sharded_fleet(
            DIST, SIZE, SEED, 2, directory=tmp_path, inline=True,
            logger=QUIET,
        )
        with pytest.raises(ConfigurationError, match="different fleet"):
            run_sharded_fleet(
                DIST, SIZE, SEED + 1, 2, directory=tmp_path,
                inline=True, logger=QUIET,
            )

    def test_corrupt_state_file_triggers_rerun(self, tmp_path):
        run_sharded_fleet(
            DIST, SIZE, SEED, 2, directory=tmp_path, inline=True,
            logger=QUIET,
        )
        victim = tmp_path / shard_filename(split_fleet(SIZE, 2)[0])
        victim.write_text("{ truncated")
        calls: list[int] = []

        def counting(payload):
            calls.append(payload["shard"]["index"])
            return _shard_worker(payload)

        sharded = run_sharded_fleet(
            DIST, SIZE, SEED, 2,
            directory=tmp_path, inline=True, worker=counting,
            logger=QUIET,
        )
        assert calls == [0]
        single = run_fleet(DIST, SIZE, SEED)
        assert json.dumps(
            sharded.result.aggregator.aggregate(), sort_keys=True
        ) == json.dumps(single.aggregator.aggregate(), sort_keys=True)

    def test_rejects_bad_max_attempts(self):
        with pytest.raises(ConfigurationError):
            run_sharded_fleet(
                DIST, SIZE, SEED, 2, inline=True, max_attempts=0,
                logger=QUIET,
            )
