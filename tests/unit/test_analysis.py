"""Unit tests for the analysis helpers."""

import pytest

from repro.analysis.ascii_chart import bar_chart, series_chart
from repro.analysis.calibration import (
    PAPER_TABLE2_UPPER_BOUNDS,
    calibrated_link_pitch_cm,
    implied_communication_energy_pj,
    implied_energy_per_job_pj,
)
from repro.analysis.tables import format_csv, format_table
from repro.errors import CalibrationError


class TestCalibration:
    def test_implied_energy_per_job(self):
        # DESIGN.md: Table 2 implies sum(H) ~ 7304.5 pJ.
        total = implied_energy_per_job_pj()
        assert total == pytest.approx(7304.5, abs=2.0)

    def test_implied_communication_energy(self):
        c = implied_communication_energy_pj()
        assert c == pytest.approx(116.7, abs=0.2)

    def test_calibrated_pitch_matches_default(self):
        from repro.mesh.topology import DEFAULT_LINK_PITCH_CM

        pitch = calibrated_link_pitch_cm()
        assert pitch == pytest.approx(DEFAULT_LINK_PITCH_CM, abs=0.005)

    def test_inconsistent_bounds_detected(self):
        with pytest.raises(CalibrationError):
            implied_energy_per_job_pj(bounds={4: 131.0, 8: 300.0})

    def test_paper_bounds_are_mutually_consistent(self):
        # Sanity on the transcription of Table 2 itself.
        values = [
            60_000.0 * w * w / j for w, j in PAPER_TABLE2_UPPER_BOUNDS.items()
        ]
        spread = (max(values) - min(values)) / (sum(values) / len(values))
        assert spread < 0.005


class TestTables:
    def test_alignment_and_headers(self):
        text = format_table(
            ["mesh", "jobs"], [("4x4", 62.8), ("8x8", 234.0)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "mesh" in lines[1] and "jobs" in lines[1]
        assert "62.80" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_csv(self):
        text = format_csv(["a", "b"], [(1, "x,y")])
        assert text.splitlines()[0] == "a,b"
        assert '"x,y"' in text


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart({"ear": 100.0, "sdr": 10.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert 1 <= lines[1].count("#") <= 3

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_series_chart_renders_legend(self):
        chart = series_chart(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]}, width=20, height=6
        )
        assert "legend" in chart
        assert "o = a" in chart


class TestWearComparison:
    def test_wear_aware_twin_only_flips_the_flag(self):
        from repro.analysis.faults import wear_aware_twin
        from repro.config import SimulationConfig

        config = SimulationConfig()
        twin = wear_aware_twin(config)
        assert twin.wear_aware is True
        assert twin.faults == config.faults
        assert twin.routing == config.routing

    def test_comparison_record_reports_gains(self):
        from repro.analysis.faults import wear_comparison

        reactive = {
            "jobs_fractional": 50.0,
            "lifetime_frames": 300,
            "recomputes": 70,
            "packets_rerouted": 5,
        }
        wear = {
            "jobs_fractional": 52.5,
            "lifetime_frames": 312,
            "recomputes": 90,
            "packets_rerouted": 4,
        }
        record = wear_comparison(reactive, wear)
        assert record["jobs_gain"] == pytest.approx(2.5)
        assert record["lifetime_gain_frames"] == 12
        assert record["jobs_reactive"] == 50.0
        assert record["recomputes_wear_aware"] == 90

    def test_comparison_for_runs_both_strategies(self):
        from repro.analysis.faults import wear_comparison_for
        from repro.config import SimulationConfig, WorkloadConfig
        from repro.faults import FaultConfig

        config = SimulationConfig(
            faults=FaultConfig(profile="link-attrition", seed=7),
            workload=WorkloadConfig(max_jobs=6),
        )
        record = wear_comparison_for(config)
        assert record["jobs_reactive"] > 0
        assert record["jobs_wear_aware"] > 0
