"""Unit tests for discharge profiles."""

import pytest

from repro.battery.profile import (
    CONSTANT_PROFILE,
    LI_FREE_THIN_FILM_PROFILE,
    DischargeProfile,
)
from repro.errors import ConfigurationError


class TestLiFreeProfile:
    def test_endpoints(self):
        profile = LI_FREE_THIN_FILM_PROFILE
        assert profile.voltage_at(0.0) == pytest.approx(4.17)
        assert profile.voltage_at(1.0) == pytest.approx(2.50)

    def test_monotone_non_increasing(self):
        profile = LI_FREE_THIN_FILM_PROFILE
        samples = [profile.voltage_at(i / 100) for i in range(101)]
        assert all(b <= a + 1e-12 for a, b in zip(samples, samples[1:]))

    def test_crosses_death_threshold_near_end(self):
        # The 3.0 V threshold must sit deep into the discharge so an
        # unloaded cell wastes little (paper Fig 2 shape).
        dod = LI_FREE_THIN_FILM_PROFILE.dod_at_voltage(3.0)
        assert 0.9 < dod < 1.0

    def test_plateau_region(self):
        # Mid-discharge voltage sits in the 3.4-3.8 V plateau.
        for dod in (0.3, 0.4, 0.5, 0.6):
            v = LI_FREE_THIN_FILM_PROFILE.voltage_at(dod)
            assert 3.4 < v < 3.8

    def test_clamping_outside_range(self):
        profile = LI_FREE_THIN_FILM_PROFILE
        assert profile.voltage_at(-0.5) == profile.full_voltage
        assert profile.voltage_at(1.5) == profile.empty_voltage


class TestInverseLookup:
    def test_round_trip(self):
        profile = LI_FREE_THIN_FILM_PROFILE
        for dod in (0.1, 0.35, 0.6, 0.9):
            voltage = profile.voltage_at(dod)
            assert profile.dod_at_voltage(voltage) == pytest.approx(
                dod, abs=1e-6
            )

    def test_above_full_voltage(self):
        assert LI_FREE_THIN_FILM_PROFILE.dod_at_voltage(5.0) == 0.0

    def test_below_empty_voltage(self):
        assert LI_FREE_THIN_FILM_PROFILE.dod_at_voltage(1.0) == 1.0

    def test_usable_fraction(self):
        profile = LI_FREE_THIN_FILM_PROFILE
        assert profile.usable_fraction(3.0) == profile.dod_at_voltage(3.0)
        assert profile.usable_fraction(4.5) == 0.0


class TestValidation:
    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            DischargeProfile(points=((0.0, 3.6),))

    def test_must_span_zero_to_one(self):
        with pytest.raises(ConfigurationError):
            DischargeProfile(points=((0.1, 3.6), (1.0, 3.0)))
        with pytest.raises(ConfigurationError):
            DischargeProfile(points=((0.0, 3.6), (0.9, 3.0)))

    def test_dod_must_increase(self):
        with pytest.raises(ConfigurationError):
            DischargeProfile(
                points=((0.0, 3.6), (0.5, 3.5), (0.5, 3.4), (1.0, 3.0))
            )

    def test_voltage_must_not_increase(self):
        with pytest.raises(ConfigurationError):
            DischargeProfile(points=((0.0, 3.0), (1.0, 3.6)))

    def test_constant_profile_is_flat(self):
        assert CONSTANT_PROFILE.voltage_at(0.2) == CONSTANT_PROFILE.voltage_at(
            0.8
        )
