"""Unit tests for the transmission-line substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.link.energy import LinkEnergyModel
from repro.link.packet import PacketFormat
from repro.link.spice_data import MEASURED_LINE_ENERGIES_PJ_PER_BIT
from repro.link.transmission_line import TransmissionLineModel


class TestMeasuredPoints:
    def test_paper_values_reproduced_exactly(self):
        line = TransmissionLineModel()
        for length, energy in MEASURED_LINE_ENERGIES_PJ_PER_BIT.items():
            assert line.energy_per_bit_switch_pj(length) == pytest.approx(
                energy
            )

    def test_paper_constants(self):
        # Paper Sec 5.1.2 verbatim.
        assert MEASURED_LINE_ENERGIES_PJ_PER_BIT == {
            1.0: 0.4472,
            10.0: 4.4472,
            20.0: 11.867,
            100.0: 53.082,
        }


class TestInterpolation:
    def test_monotone_increasing(self):
        line = TransmissionLineModel()
        lengths = [0.5, 1, 2, 5, 10, 15, 20, 50, 100, 150]
        energies = [line.energy_per_bit_switch_pj(l) for l in lengths]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_below_first_point_interpolates_to_origin(self):
        line = TransmissionLineModel()
        assert line.energy_per_bit_switch_pj(0.5) == pytest.approx(
            0.4472 / 2
        )

    def test_beyond_last_point_extrapolates(self):
        line = TransmissionLineModel()
        slope = (53.082 - 11.867) / 80.0
        assert line.energy_per_bit_switch_pj(120.0) == pytest.approx(
            53.082 + 20 * slope
        )

    def test_inverse_lookup_round_trip(self):
        line = TransmissionLineModel()
        for length in (0.7, 2.045, 5.0, 15.0, 60.0):
            energy = line.energy_per_bit_switch_pj(length)
            assert line.length_for_energy(energy) == pytest.approx(length)

    def test_zero_length_rejected(self):
        line = TransmissionLineModel()
        with pytest.raises(ConfigurationError):
            line.energy_per_bit_switch_pj(0.0)

    def test_custom_points_validation(self):
        with pytest.raises(ConfigurationError):
            TransmissionLineModel(points=((1.0, 1.0),))
        with pytest.raises(ConfigurationError):
            TransmissionLineModel(points=((1.0, 2.0), (2.0, 1.0)))


class TestPacketFormat:
    def test_defaults_match_paper(self):
        packet = PacketFormat()
        assert packet.payload_bits == 128
        assert packet.total_bits == 128
        assert packet.switched_bits == 128.0

    def test_header_adds_bits(self):
        packet = PacketFormat(payload_bits=128, header_bits=16)
        assert packet.total_bits == 144

    def test_switching_activity_scales(self):
        packet = PacketFormat(switching_activity=0.5)
        assert packet.switched_bits == 64.0

    def test_serialization_cycles(self):
        packet = PacketFormat()
        assert packet.serialization_cycles(1) == 128
        assert packet.serialization_cycles(2) == 64
        assert packet.serialization_cycles(3) == 43  # ceil(128/3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PacketFormat(payload_bits=0)
        with pytest.raises(ConfigurationError):
            PacketFormat(switching_activity=0.0)
        with pytest.raises(ConfigurationError):
            PacketFormat(switching_activity=1.5)
        with pytest.raises(ConfigurationError):
            PacketFormat(header_bits=-1)


class TestLinkEnergyModel:
    def test_hop_energy_is_per_bit_times_packet(self):
        model = LinkEnergyModel()
        assert model.hop_energy_pj(10.0) == pytest.approx(4.4472 * 128)

    def test_calibrated_pitch_matches_paper_implied_energy(self):
        model = LinkEnergyModel()
        # DESIGN.md: Table 2 implies ~116.7 pJ per hop at the default
        # 2.045 cm pitch.
        assert model.hop_energy_pj(2.045) == pytest.approx(116.7, abs=0.5)

    def test_path_energy_sums_hops(self):
        model = LinkEnergyModel()
        single = model.hop_energy_pj(1.0)
        assert model.path_energy_pj([1.0, 1.0, 1.0]) == pytest.approx(
            3 * single
        )

    def test_bits_energy_for_control_medium(self):
        model = LinkEnergyModel()
        assert model.bits_energy_pj(4, 1.0) == pytest.approx(4 * 0.4472)

    def test_hop_cycles_serial_line(self):
        assert LinkEnergyModel().hop_cycles() == 128
