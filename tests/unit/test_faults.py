"""Unit tests: fault configuration, schedule generation, runtime state,
and sweep-cache invalidation on fault-profile changes."""

from __future__ import annotations

from dataclasses import replace

import pytest

from helpers import make_config
from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_PROFILES,
    FaultConfig,
    FaultEvent,
    FaultRuntime,
    FaultSchedule,
    build_fault_schedule,
    fabric_links,
)
from repro.mesh.topology import attach_external_node, mesh2d
from repro.orchestration import config_hash


class TestFaultConfig:
    def test_defaults_are_inactive(self):
        config = FaultConfig()
        assert config.profile == "none"
        assert not config.is_active

    @pytest.mark.parametrize("profile", FAULT_PROFILES[1:])
    def test_active_profiles(self, profile):
        assert FaultConfig(profile=profile).is_active

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="meteor-strike")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"intensity": 0.0},
            {"intensity": -1.0},
            {"start_frame": -1},
            {"period_frames": 0},
            {"max_link_fraction": 1.5},
            {"max_node_fraction": 1.0},
            {"degrade_factor": 0.5},
            {"degrade_frames": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="link-attrition", **kwargs)

    def test_round_trips_through_simulation_config(self):
        config = make_config(fault_profile="wash-cycle", fault_seed=42)
        rebuilt = type(config).from_dict(config.to_dict())
        assert rebuilt.faults == config.faults

    def test_old_documents_without_faults_section_still_load(self):
        config = make_config()
        raw = config.to_dict()
        del raw["faults"]
        assert type(config).from_dict(raw).faults == FaultConfig()


class TestFabricLinks:
    def test_excludes_external_attachments(self):
        topology = mesh2d(4)
        external = attach_external_node(topology, 0, 10.0)
        links = fabric_links(topology, num_mesh_nodes=16)
        assert len(links) == 24  # 2 * 4 * 3 internal mesh lines
        assert all(external not in pair for pair in links)
        assert links == sorted(links)


class TestScheduleBuilders:
    def test_none_profile_is_empty(self):
        schedule = build_fault_schedule(
            FaultConfig(), mesh2d(4), num_mesh_nodes=16, horizon_frames=1000
        )
        assert schedule.is_empty
        assert len(schedule) == 0

    def test_attrition_respects_link_budget(self):
        config = FaultConfig(
            profile="link-attrition", seed=1, max_link_fraction=0.25
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert 0 < len(cuts) <= int(24 * 0.25)
        assert len({(e.node_a, e.node_b) for e in cuts}) == len(cuts)

    def test_intensity_accelerates_cadence(self):
        slow = build_fault_schedule(
            FaultConfig(profile="link-attrition", seed=1, intensity=1.0),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        fast = build_fault_schedule(
            FaultConfig(profile="link-attrition", seed=1, intensity=4.0),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        assert fast.events[-1].frame < slow.events[-1].frame

    def test_horizon_caps_events(self):
        schedule = build_fault_schedule(
            FaultConfig(profile="wash-cycle", seed=1),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=200,
        )
        assert all(event.frame < 200 for event in schedule)

    def test_zero_node_fraction_disables_dropout(self):
        schedule = build_fault_schedule(
            FaultConfig(profile="node-dropout", seed=1,
                        max_node_fraction=0.0),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        assert schedule.is_empty

    def test_dropout_never_touches_the_source(self):
        schedule = build_fault_schedule(
            FaultConfig(profile="node-dropout", seed=1,
                        max_node_fraction=0.9),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        kills = [e for e in schedule if e.kind == "node-kill"]
        assert kills
        assert all(0 <= e.node_a < 16 for e in kills)
        # never every node: the fabric keeps at least one survivor
        assert len(kills) < 16

    def test_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(frame=0, kind="gremlin", node_a=0)


class TestFaultRuntime:
    def make_runtime(self):
        return FaultRuntime(
            FaultSchedule(
                [
                    FaultEvent(frame=2, kind="link-cut", node_a=0, node_b=1),
                    FaultEvent(frame=2, kind="node-kill", node_a=5),
                    FaultEvent(frame=7, kind="link-degrade", node_a=2,
                               node_b=3, factor=2.0, duration_frames=3),
                ]
            )
        )

    def test_due_drains_in_frame_order(self):
        runtime = self.make_runtime()
        assert runtime.due(1) == []
        assert len(runtime.due(2)) == 2
        assert runtime.due(2) == []  # already delivered
        assert len(runtime.due(100)) == 1

    def test_cut_marks_both_directions(self):
        runtime = self.make_runtime()
        runtime.mark_cut(0, 1)
        assert runtime.is_cut(0, 1)
        assert runtime.is_cut(1, 0)
        assert not runtime.is_cut(0, 2)

    def test_cut_clears_degradation(self):
        runtime = self.make_runtime()
        runtime.degraded[(0, 1)] = (2.0, 50)
        runtime.mark_cut(1, 0)
        assert (0, 1) not in runtime.degraded

    def test_degradation_expiry(self):
        runtime = self.make_runtime()
        runtime.degraded[(2, 3)] = (2.0, 10)
        assert runtime.expire_degradations(9) == []
        assert runtime.expire_degradations(10) == [(2, 3)]
        assert runtime.degraded == {}


class TestSweepCacheInvalidation:
    def test_fault_profile_changes_the_config_hash(self):
        plain = make_config()
        faulty = replace(
            plain, faults=FaultConfig(profile="link-attrition", seed=1)
        )
        assert config_hash(plain) != config_hash(faulty)

    def test_fault_seed_changes_the_config_hash(self):
        one = make_config(fault_profile="link-attrition", fault_seed=1)
        two = make_config(fault_profile="link-attrition", fault_seed=2)
        assert config_hash(one) != config_hash(two)

    def test_identical_fault_configs_share_a_hash(self):
        one = make_config(fault_profile="wash-cycle", fault_seed=4)
        two = make_config(fault_profile="wash-cycle", fault_seed=4)
        assert config_hash(one) == config_hash(two)
