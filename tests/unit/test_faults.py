"""Unit tests: fault configuration, schedule generation, runtime state,
and sweep-cache invalidation on fault-profile changes."""

from __future__ import annotations

from dataclasses import replace

import pytest

from helpers import make_config
from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_PROFILES,
    FaultConfig,
    FaultEvent,
    FaultRuntime,
    FaultSchedule,
    build_fault_schedule,
    fabric_links,
)
from repro.mesh.topology import attach_external_node, mesh2d
from repro.orchestration import config_hash


class TestFaultConfig:
    def test_defaults_are_inactive(self):
        config = FaultConfig()
        assert config.profile == "none"
        assert not config.is_active

    @pytest.mark.parametrize("profile", FAULT_PROFILES[1:])
    def test_active_profiles(self, profile):
        assert FaultConfig(profile=profile).is_active

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="meteor-strike")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"intensity": 0.0},
            {"intensity": -1.0},
            {"start_frame": -1},
            {"period_frames": 0},
            {"max_link_fraction": 1.5},
            {"max_node_fraction": 1.0},
            {"degrade_factor": 0.5},
            {"degrade_frames": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="link-attrition", **kwargs)

    def test_round_trips_through_simulation_config(self):
        config = make_config(fault_profile="wash-cycle", fault_seed=42)
        rebuilt = type(config).from_dict(config.to_dict())
        assert rebuilt.faults == config.faults

    def test_old_documents_without_faults_section_still_load(self):
        config = make_config()
        raw = config.to_dict()
        del raw["faults"]
        assert type(config).from_dict(raw).faults == FaultConfig()


class TestFabricLinks:
    def test_excludes_external_attachments(self):
        topology = mesh2d(4)
        external = attach_external_node(topology, 0, 10.0)
        links = fabric_links(topology, num_mesh_nodes=16)
        assert len(links) == 24  # 2 * 4 * 3 internal mesh lines
        assert all(external not in pair for pair in links)
        assert links == sorted(links)


class TestScheduleBuilders:
    def test_none_profile_is_empty(self):
        schedule = build_fault_schedule(
            FaultConfig(), mesh2d(4), num_mesh_nodes=16, horizon_frames=1000
        )
        assert schedule.is_empty
        assert len(schedule) == 0

    def test_attrition_respects_link_budget(self):
        config = FaultConfig(
            profile="link-attrition", seed=1, max_link_fraction=0.25
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert 0 < len(cuts) <= int(24 * 0.25)
        assert len({(e.node_a, e.node_b) for e in cuts}) == len(cuts)

    def test_intensity_accelerates_cadence(self):
        slow = build_fault_schedule(
            FaultConfig(profile="link-attrition", seed=1, intensity=1.0),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        fast = build_fault_schedule(
            FaultConfig(profile="link-attrition", seed=1, intensity=4.0),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        assert fast.events[-1].frame < slow.events[-1].frame

    def test_horizon_caps_events(self):
        schedule = build_fault_schedule(
            FaultConfig(profile="wash-cycle", seed=1),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=200,
        )
        assert all(event.frame < 200 for event in schedule)

    def test_zero_node_fraction_disables_dropout(self):
        schedule = build_fault_schedule(
            FaultConfig(profile="node-dropout", seed=1,
                        max_node_fraction=0.0),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        assert schedule.is_empty

    def test_dropout_never_touches_the_source(self):
        schedule = build_fault_schedule(
            FaultConfig(profile="node-dropout", seed=1,
                        max_node_fraction=0.9),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000,
        )
        kills = [e for e in schedule if e.kind == "node-kill"]
        assert kills
        assert all(0 <= e.node_a < 16 for e in kills)
        # never every node: the fabric keeps at least one survivor
        assert len(kills) < 16

    def test_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(frame=0, kind="gremlin", node_a=0)


class TestFaultRuntime:
    def make_runtime(self):
        return FaultRuntime(
            FaultSchedule(
                [
                    FaultEvent(frame=2, kind="link-cut", node_a=0, node_b=1),
                    FaultEvent(frame=2, kind="node-kill", node_a=5),
                    FaultEvent(frame=7, kind="link-degrade", node_a=2,
                               node_b=3, factor=2.0, duration_frames=3),
                ]
            )
        )

    def test_due_drains_in_frame_order(self):
        runtime = self.make_runtime()
        assert runtime.due(1) == []
        assert len(runtime.due(2)) == 2
        assert runtime.due(2) == []  # already delivered
        assert len(runtime.due(100)) == 1

    def test_cut_marks_both_directions(self):
        runtime = self.make_runtime()
        runtime.mark_cut(0, 1)
        assert runtime.is_cut(0, 1)
        assert runtime.is_cut(1, 0)
        assert not runtime.is_cut(0, 2)

    def test_cut_clears_degradation(self):
        runtime = self.make_runtime()
        runtime.degraded[(0, 1)] = (2.0, 50)
        runtime.mark_cut(1, 0)
        assert (0, 1) not in runtime.degraded

    def test_degradation_expiry(self):
        runtime = self.make_runtime()
        runtime.degraded[(2, 3)] = (2.0, 10)
        assert runtime.expire_degradations(9) == []
        assert runtime.expire_degradations(10) == [(2, 3)]
        assert runtime.degraded == {}


class TestTearSchedule:
    def test_tear_cuts_a_neighbourhood_in_one_event(self):
        config = FaultConfig(profile="tear", seed=3)
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert cuts
        by_frame: dict[int, list] = {}
        for event in cuts:
            by_frame.setdefault(event.frame, []).append(event)
        # Correlation: at least one burst severs several links at once.
        assert max(len(batch) for batch in by_frame.values()) > 1

    def test_tear_respects_link_budget(self):
        config = FaultConfig(
            profile="tear", seed=1, max_link_fraction=0.25
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert 0 < len(cuts) <= int(24 * 0.25)
        assert len({(e.node_a, e.node_b) for e in cuts}) == len(cuts)

    def test_tear_radius_limits_the_neighbourhood(self):
        topology = mesh2d(6)
        wide = build_fault_schedule(
            FaultConfig(profile="tear", seed=2, tear_radius=2.5),
            topology, num_mesh_nodes=36, horizon_frames=100_000,
        )
        narrow = build_fault_schedule(
            FaultConfig(profile="tear", seed=2, tear_radius=0.8),
            topology, num_mesh_nodes=36, horizon_frames=100_000,
        )
        # Same budget, but the narrow tear needs more bursts: its first
        # burst severs fewer links.
        def first_burst(schedule):
            cuts = [e for e in schedule if e.kind == "link-cut"]
            first = min(e.frame for e in cuts)
            return [e for e in cuts if e.frame == first]

        assert len(first_burst(narrow)) < len(first_burst(wide))

    def test_tear_without_geometry_degrades_to_single_links(self):
        from repro.mesh.topology import Topology

        topology = Topology(4, name="strip")
        for u in range(3):
            topology.add_edge(u, u + 1, 1.0)
        schedule = build_fault_schedule(
            FaultConfig(profile="tear", seed=1, max_link_fraction=1.0),
            topology, num_mesh_nodes=4, horizon_frames=100_000,
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert cuts
        # No midpoints to correlate on: every burst is one link.
        frames = [e.frame for e in cuts]
        assert len(set(frames)) == len(frames)

    def test_moisture_without_geometry_degrades_single_links(self):
        from repro.mesh.topology import Topology

        topology = Topology(4, name="strip")
        for u in range(3):
            topology.add_edge(u, u + 1, 1.0)
        schedule = build_fault_schedule(
            FaultConfig(profile="moisture", seed=1),
            topology, num_mesh_nodes=4, horizon_frames=500,
        )
        assert len(schedule) > 0
        by_frame: dict[int, int] = {}
        for event in schedule:
            assert event.kind == "link-degrade"
            by_frame[event.frame] = by_frame.get(event.frame, 0) + 1
        assert all(count == 1 for count in by_frame.values())

    def test_rejects_bad_radius(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="tear", tear_radius=0.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="moisture", moisture_radius=-1.0)


class TestMoistureSchedule:
    def test_moisture_degrades_a_region_together(self):
        config = FaultConfig(profile="moisture", seed=5)
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=200
        )
        assert len(schedule) > 0
        assert all(e.kind == "link-degrade" for e in schedule)
        by_frame: dict[int, list] = {}
        for event in schedule:
            by_frame.setdefault(event.frame, []).append(event)
        # A patch of radius 2 on a 4x4 mesh always covers several links.
        assert all(len(batch) > 1 for batch in by_frame.values())
        assert all(
            e.factor == config.degrade_factor
            and e.duration_frames == config.degrade_frames
            for e in schedule
        )

    def test_moisture_patch_drifts(self):
        config = FaultConfig(
            profile="moisture", seed=5, moisture_radius=1.0
        )
        schedule = build_fault_schedule(
            config, mesh2d(6), num_mesh_nodes=36, horizon_frames=2_000
        )
        patches = {}
        for event in schedule:
            patches.setdefault(event.frame, set()).add(
                (event.node_a, event.node_b)
            )
        # The drifting centre produces at least two distinct patches.
        assert len({frozenset(patch) for patch in patches.values()}) > 1


class TestRepairSchedule:
    def test_repair_follows_every_cut(self):
        config = FaultConfig(
            profile="link-attrition", seed=1, repair_after_frames=10
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        cuts = {
            (e.node_a, e.node_b): e.frame
            for e in schedule
            if e.kind == "link-cut"
        }
        repairs = {
            (e.node_a, e.node_b): e.frame
            for e in schedule
            if e.kind == "link-repair"
        }
        assert cuts
        assert set(repairs) == set(cuts)
        for pair, frame in repairs.items():
            assert frame == cuts[pair] + 10

    def test_repairs_past_horizon_are_dropped(self):
        config = FaultConfig(
            profile="link-attrition", seed=1, repair_after_frames=10**6
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=1_000
        )
        assert not [e for e in schedule if e.kind == "link-repair"]

    def test_zero_repair_frames_means_no_repairs(self):
        config = FaultConfig(profile="tear", seed=1)
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        assert not [e for e in schedule if e.kind == "link-repair"]

    def test_rejects_negative_repair_frames(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="tear", repair_after_frames=-1)

    def test_cutting_profiles_constant_matches_reality(self):
        """:data:`CUTTING_PROFILES` documents which profiles emit
        permanent cuts (and therefore respond to repair_after_frames);
        derive the set empirically so the constant cannot go stale when
        a profile is added."""
        from repro.faults import CUTTING_PROFILES

        cutting = set()
        for profile in FAULT_PROFILES:
            if profile == "none":
                continue
            for seed in range(4):
                schedule = build_fault_schedule(
                    FaultConfig(
                        profile=profile, seed=seed, max_link_fraction=0.5
                    ),
                    mesh2d(4),
                    num_mesh_nodes=16,
                    horizon_frames=50_000,
                )
                if any(e.kind == "link-cut" for e in schedule):
                    cutting.add(profile)
                    break
        assert cutting == set(CUTTING_PROFILES)


class TestWashCycleBudget:
    def test_cut_budget_not_burned_on_duplicates(self):
        # Long horizon: the burst loop offers far more cut opportunities
        # than the budget, so duplicate picks would visibly undershoot.
        config = FaultConfig(
            profile="wash-cycle", seed=9, max_link_fraction=0.25
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=20_000
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert len(cuts) == int(24 * 0.25)
        # ... and every cut severs a *distinct* line.
        assert len({(e.node_a, e.node_b) for e in cuts}) == len(cuts)

    @pytest.mark.parametrize("seed", range(6))
    def test_cuts_unique_across_seeds(self, seed):
        config = FaultConfig(
            profile="wash-cycle", seed=seed, max_link_fraction=0.5
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=50_000
        )
        cuts = [(e.node_a, e.node_b) for e in schedule if e.kind == "link-cut"]
        assert len(set(cuts)) == len(cuts)


class TestWearTracking:
    def test_traversals_quantise_into_levels(self):
        runtime = FaultRuntime(
            FaultSchedule(), wear_quantum=4, wear_levels=8
        )
        for _ in range(3):
            runtime.note_traversal(0, 1)
        assert not runtime.wear_dirty  # still level 0
        runtime.note_traversal(1, 0)  # 4th crossing, either direction
        assert runtime.wear_dirty
        matrix = runtime.wear_level_matrix(4)
        assert matrix[0, 1] == 1
        assert matrix[1, 0] == 1

    def test_degradation_counts_as_a_full_level(self):
        runtime = FaultRuntime(
            FaultSchedule(), wear_quantum=100, wear_levels=8
        )
        runtime.note_degraded(2, 3)
        assert runtime.wear_dirty
        assert runtime.wear_level_matrix(4)[2, 3] == 1

    def test_levels_saturate(self):
        runtime = FaultRuntime(
            FaultSchedule(), wear_quantum=1, wear_levels=4
        )
        for _ in range(100):
            runtime.note_traversal(0, 1)
        assert runtime.wear_level_matrix(2)[0, 1] == 3

    def test_disabled_tracking_is_inert(self):
        runtime = FaultRuntime(FaultSchedule())  # quantum 0 = off
        runtime.note_traversal(0, 1)
        runtime.note_degraded(0, 1)
        assert not runtime.wear_dirty
        assert runtime.traversals == {}
        assert (runtime.wear_level_matrix(2) == 0).all()

    def test_repair_resets_the_wear_history(self):
        runtime = FaultRuntime(
            FaultSchedule(), wear_quantum=2, wear_levels=8
        )
        for _ in range(6):
            runtime.note_traversal(0, 1)
        runtime.mark_cut(0, 1)
        runtime.wear_dirty = False
        runtime.mark_repaired(0, 1)
        assert not runtime.is_cut(0, 1)
        assert not runtime.is_cut(1, 0)
        assert runtime.traversals == {}
        assert runtime.wear_dirty  # the level dropped back to 0
        assert runtime.wear_level_matrix(2)[0, 1] == 0


class TestSweepCacheInvalidation:
    def test_fault_profile_changes_the_config_hash(self):
        plain = make_config()
        faulty = replace(
            plain, faults=FaultConfig(profile="link-attrition", seed=1)
        )
        assert config_hash(plain) != config_hash(faulty)

    def test_fault_seed_changes_the_config_hash(self):
        one = make_config(fault_profile="link-attrition", fault_seed=1)
        two = make_config(fault_profile="link-attrition", fault_seed=2)
        assert config_hash(one) != config_hash(two)

    def test_identical_fault_configs_share_a_hash(self):
        one = make_config(fault_profile="wash-cycle", fault_seed=4)
        two = make_config(fault_profile="wash-cycle", fault_seed=4)
        assert config_hash(one) == config_hash(two)

    def test_wear_awareness_changes_the_config_hash(self):
        plain = make_config()
        wear = replace(plain, wear_aware=True)
        assert config_hash(plain) != config_hash(wear)

    def test_repair_frames_change_the_config_hash(self):
        one = make_config(fault_profile="tear", fault_seed=1)
        two = replace(
            one, faults=replace(one.faults, repair_after_frames=24)
        )
        assert config_hash(one) != config_hash(two)

    def test_schema_v5_invalidates_v4_entries(self, tmp_path):
        from repro.orchestration.cache import (
            CACHE_SCHEMA_VERSION,
            SweepCache,
        )

        assert CACHE_SCHEMA_VERSION == 5
        cache = SweepCache(tmp_path)
        key = config_hash(make_config())
        cache.store(key, {"summary": {"jobs_fractional": 1.0}})
        record = dict(cache.lookup(key))
        # Rewrite the entry as a v4 record: it must no longer be served.
        record["schema"] = 4
        import json

        (tmp_path / f"{key}.json").write_text(json.dumps(record))
        cache.reset_counters()
        assert cache.lookup(key) is None
        assert cache.misses == 1


class TestMoistureCorrosion:
    def corroding(self, **kwargs) -> FaultConfig:
        return FaultConfig(
            profile="moisture",
            seed=5,
            corrode_after_frames=48,
            degrade_frames=16,
            **kwargs,
        )

    def test_sustained_degradation_corrodes_into_a_cut(self):
        schedule = build_fault_schedule(
            self.corroding(), mesh2d(4), num_mesh_nodes=16,
            horizon_frames=2_000,
        )
        cuts = [e for e in schedule if e.kind == "link-cut"]
        assert cuts, "a long-wet link must corrode through"
        # Corrosion takes cumulative exposure: the threshold of 48 wet
        # frames at 16 frames per burst needs three bursts, so no cut
        # can appear before the third burst of the patch.
        degrades_before = {}
        for event in schedule:
            pair = (event.node_a, event.node_b)
            if event.kind == "link-degrade":
                degrades_before[pair] = degrades_before.get(pair, 0) + 1
            elif event.kind == "link-cut":
                assert degrades_before.get(pair, 0) >= 2

    def test_corroded_links_stop_degrading(self):
        schedule = build_fault_schedule(
            self.corroding(), mesh2d(4), num_mesh_nodes=16,
            horizon_frames=2_000,
        )
        cut_at = {
            (e.node_a, e.node_b): e.frame
            for e in schedule
            if e.kind == "link-cut"
        }
        for event in schedule:
            if event.kind == "link-degrade":
                pair = (event.node_a, event.node_b)
                if pair in cut_at:
                    assert event.frame < cut_at[pair]

    def test_zero_threshold_never_corrodes(self):
        config = FaultConfig(profile="moisture", seed=5)
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=2_000
        )
        assert not [e for e in schedule if e.kind == "link-cut"]

    def test_corrosion_reuses_the_repair_machinery(self):
        schedule = build_fault_schedule(
            self.corroding(repair_after_frames=20),
            mesh2d(4), num_mesh_nodes=16, horizon_frames=2_000,
        )
        cuts = {
            (e.node_a, e.node_b): e.frame
            for e in schedule
            if e.kind == "link-cut"
        }
        repairs = {
            (e.node_a, e.node_b): e.frame
            for e in schedule
            if e.kind == "link-repair"
        }
        assert cuts
        for pair, frame in repairs.items():
            assert frame == cuts[pair] + 20

    def test_corroding_moisture_run_severs_and_recovers(self):
        from repro.sim.et_sim import run_simulation

        config = make_config(
            faults=FaultConfig(
                profile="moisture",
                seed=5,
                corrode_after_frames=16,
                degrade_frames=16,
                repair_after_frames=24,
            ),
            max_jobs=12,
        )
        stats = run_simulation(config)
        assert stats.links_cut > 0
        assert stats.links_degraded > 0
        assert stats.verification_failures == 0

    def test_exposure_never_outruns_wall_clock_wetness(self):
        # Refresh bursts extend a wet period, they must not
        # double-count the overlap: no link can corrode earlier than
        # corrode_after_frames after it first got wet, regardless of
        # burst cadence or intensity.
        for intensity in (1.0, 4.0):
            config = FaultConfig(
                profile="moisture",
                seed=5,
                intensity=intensity,
                corrode_after_frames=48,
                degrade_frames=16,
            )
            schedule = build_fault_schedule(
                config, mesh2d(4), num_mesh_nodes=16,
                horizon_frames=2_000,
            )
            first_wet: dict[tuple[int, int], int] = {}
            cuts = {}
            for event in schedule:
                pair = (event.node_a, event.node_b)
                if event.kind == "link-degrade":
                    first_wet.setdefault(pair, event.frame)
                elif event.kind == "link-cut":
                    cuts[pair] = event.frame
            assert cuts
            for pair, cut_frame in cuts.items():
                assert cut_frame >= first_wet[pair] + 48

    def test_rejects_negative_corrode_threshold(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="moisture", corrode_after_frames=-1)


class TestRepairCrew:
    def crew_config(self, size: int, latency: int = 8) -> FaultConfig:
        return FaultConfig(
            profile="link-attrition",
            seed=1,
            repair_crew_size=size,
            repair_latency_frames=latency,
        )

    def schedule_for(self, config: FaultConfig, horizon=100_000):
        return build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=horizon
        )

    def test_crew_repairs_every_cut_oldest_first(self):
        schedule = self.schedule_for(self.crew_config(size=1, latency=8))
        cuts = [e for e in schedule if e.kind == "link-cut"]
        repairs = [e for e in schedule if e.kind == "link-repair"]
        assert len(repairs) == len(cuts)
        # One mender: repairs are strictly serial, in cut order, each
        # taking at least the latency.
        by_pair = {(e.node_a, e.node_b): e.frame for e in repairs}
        previous_done = None
        for cut in sorted(cuts, key=lambda e: e.frame):
            done = by_pair[(cut.node_a, cut.node_b)]
            assert done >= cut.frame + 8
            if previous_done is not None:
                assert done >= previous_done + 8
            previous_done = done

    def test_bigger_crew_repairs_sooner(self):
        solo = self.schedule_for(self.crew_config(size=1, latency=30))
        team = self.schedule_for(self.crew_config(size=4, latency=30))

        def total_severed_frames(schedule):
            cut_at = {}
            severed = 0
            for event in schedule:
                pair = (event.node_a, event.node_b)
                if event.kind == "link-cut":
                    cut_at[pair] = event.frame
                elif event.kind == "link-repair":
                    severed += event.frame - cut_at.pop(pair)
            return severed

        assert total_severed_frames(team) < total_severed_frames(solo)

    def test_crew_is_mutually_exclusive_with_timers(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(
                profile="tear",
                repair_after_frames=10,
                repair_crew_size=2,
            )

    def test_crew_repairs_queue_behind_capacity(self):
        # A tear burst severs several links at once; a single slow
        # mender works through the backlog, so the k-th repair lands at
        # least k latencies after the burst.
        config = FaultConfig(
            profile="tear",
            seed=3,
            max_link_fraction=0.2,
            repair_crew_size=1,
            repair_latency_frames=12,
        )
        schedule = build_fault_schedule(
            config, mesh2d(4), num_mesh_nodes=16, horizon_frames=100_000
        )
        repairs = sorted(
            e.frame for e in schedule if e.kind == "link-repair"
        )
        assert repairs
        for index in range(1, len(repairs)):
            assert repairs[index] >= repairs[index - 1] + 12

    def test_crew_run_repairs_links_live(self):
        from repro.sim.et_sim import run_simulation

        config = make_config(
            faults=FaultConfig(
                profile="tear",
                seed=3,
                max_link_fraction=0.15,
                repair_crew_size=1,
                repair_latency_frames=12,
            ),
            max_jobs=10,
        )
        stats = run_simulation(config)
        assert stats.links_cut > 0
        assert stats.links_repaired > 0
        assert stats.verification_failures == 0

    def test_rejects_bad_crew_parameters(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="tear", repair_crew_size=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(profile="tear", repair_latency_frames=0)
