"""Unit tests for the generated S-box (repro.aes.sbox)."""

from repro.aes.sbox import (
    INV_SBOX,
    SBOX,
    generate_inverse_sbox,
    generate_sbox,
)
from repro.aes.vectors import SBOX_SPOT_VALUES


class TestSbox:
    def test_published_spot_values(self):
        for value, expected in SBOX_SPOT_VALUES.items():
            assert SBOX[value] == expected, hex(value)

    def test_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_has_no_fixed_points(self):
        # The AES S-box was designed without fixed points.
        assert all(SBOX[x] != x for x in range(256))

    def test_has_no_opposite_fixed_points(self):
        assert all(SBOX[x] != (x ^ 0xFF) for x in range(256))

    def test_generation_is_deterministic(self):
        assert generate_sbox() == SBOX


class TestInverseSbox:
    def test_round_trip(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value
            assert SBOX[INV_SBOX[value]] == value

    def test_is_a_permutation(self):
        assert sorted(INV_SBOX) == list(range(256))

    def test_published_inverse_spot_value(self):
        # FIPS-197 Sec 5.3.2 example: InvSubBytes(0x63) = 0x00.
        assert INV_SBOX[0x63] == 0x00

    def test_generate_inverse_of_identity(self):
        identity = tuple(range(256))
        assert generate_inverse_sbox(identity) == identity
