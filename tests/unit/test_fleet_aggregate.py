"""Unit behaviour of the O(1) fleet statistics primitives."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.fleet.aggregate import (
    FLEET_PERCENTILES,
    BucketHistogram,
    ExactSum,
    FleetAggregator,
    MetricSpec,
    MetricStat,
    P2Quantile,
)


def summary(lifetime: float, jobs: float, cause: str = "module-unreachable"):
    return {
        "lifetime_frames": lifetime,
        "jobs_fractional": jobs,
        "death_cause": cause,
    }


class TestExactSum:
    def test_matches_fsum_on_catastrophic_cancellation(self):
        values = [1e16, 1.0, -1e16, 1.0]
        acc = ExactSum()
        for v in values:
            acc.add(v)
        assert acc.value == math.fsum(values) == 2.0

    def test_merge_equals_single_stream(self):
        values = [1e16, 3.14, -1e16, 2.71, 1e-8, -2.0]
        left, right, whole = ExactSum(), ExactSum(), ExactSum()
        for v in values[:3]:
            left.add(v)
        for v in values[3:]:
            right.add(v)
        for v in values:
            whole.add(v)
        left.merge(right)
        assert left.value == whole.value

    def test_partials_round_trip(self):
        acc = ExactSum()
        for v in (0.1, 0.2, 0.3):
            acc.add(v)
        clone = ExactSum(acc.to_list())
        assert clone.value == acc.value


class TestP2Quantile:
    def test_rejects_out_of_range_quantile(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                P2Quantile(bad)

    def test_none_before_observations(self):
        assert P2Quantile(0.5).estimate() is None

    def test_exact_for_small_streams(self):
        # Up to five observations the estimator is the buffered exact
        # empirical quantile (numpy's linear interpolation).
        numpy = pytest.importorskip("numpy")
        values = [7.0, 1.0, 5.0, 3.0]
        est = P2Quantile(0.5)
        for v in values:
            est.add(v)
        assert est.estimate() == pytest.approx(
            float(numpy.percentile(values, 50))
        )

    def test_estimate_stays_within_observed_range(self):
        est = P2Quantile(0.95)
        values = [float(((i * 37) % 100)) for i in range(200)]
        for v in values:
            est.add(v)
        assert min(values) <= est.estimate() <= max(values)


class TestBucketHistogram:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BucketHistogram(0.0, 4)
        with pytest.raises(ConfigurationError):
            BucketHistogram(1.0, 0)
        with pytest.raises(ConfigurationError):
            BucketHistogram(1.0, 4, counts=[0, 0])

    def test_overflow_bucket_catches_everything_beyond_range(self):
        hist = BucketHistogram(1.0, 4)
        for value in (0.5, 3.9, 4.0, 400.0):
            hist.add(value)
        assert hist.counts == [1, 0, 0, 1, 2]
        assert hist.total == 4

    def test_negative_values_clamp_to_first_bucket(self):
        hist = BucketHistogram(1.0, 4)
        hist.add(-3.0)
        assert hist.counts[0] == 1

    def test_merge_requires_identical_bucketing(self):
        with pytest.raises(ConfigurationError):
            BucketHistogram(1.0, 4).merge(BucketHistogram(2.0, 4))

    def test_survivors_monotone_and_anchored(self):
        hist = BucketHistogram(10.0, 4)
        for value in (5, 15, 15, 25, 35, 95):
            hist.add(value)
        survivors = hist.survivors()
        assert survivors[0] == hist.total
        assert all(a >= b for a, b in zip(survivors, survivors[1:]))

    def test_quantile_clamps_degenerate_stream_to_exact_value(self):
        hist = BucketHistogram(10.0, 4)
        for _ in range(9):
            hist.add(42.5)
        for q in FLEET_PERCENTILES:
            assert hist.quantile(q, lo=42.5, hi=42.5) == 42.5

    def test_quantile_none_when_empty(self):
        assert BucketHistogram(1.0, 4).quantile(50) is None


class TestMetricStat:
    def test_merge_rejects_mismatched_spec(self):
        a = MetricStat(MetricSpec("x", 1.0, 4))
        b = MetricStat(MetricSpec("x", 2.0, 4))
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_state_round_trip(self):
        stat = MetricStat(MetricSpec("x", 1.0, 8))
        for v in (0.5, 3.25, 7.75, 100.0):
            stat.add(v)
        clone = MetricStat.from_state(
            json.loads(json.dumps(stat.state()))
        )
        assert clone.canonical() == stat.canonical()


class TestFleetAggregator:
    def test_observe_accepts_summary_dict_and_record_objects(self):
        class FakeRecord:
            summary = summary(10.0, 2.0)

        agg = FleetAggregator()
        agg.observe(FakeRecord())
        agg.observe(summary(20.0, 4.0, cause="frame-limit"))
        assert agg.count == 2
        assert agg.death_causes == {
            "module-unreachable": 1,
            "frame-limit": 1,
        }

    def test_aggregate_document_shape(self):
        agg = FleetAggregator()
        agg.observe(summary(10.0, 2.0))
        doc = agg.aggregate()
        assert doc["count"] == 1
        assert set(doc["metrics"]) == {"jobs_fractional", "lifetime_frames"}
        for stat in doc["metrics"].values():
            assert set(stat) == {
                "count", "mean", "min", "max", "p5", "p50", "p95",
            }
        assert doc["survival"]["survivors"][0] == 1
        assert len(doc["survival"]["edges"]) == len(
            doc["survival"]["survivors"]
        )

    def test_live_stream_view_is_p2_sourced(self):
        agg = FleetAggregator()
        agg.observe(summary(10.0, 2.0))
        view = agg.stream_view()
        for stats in view.values():
            assert stats["source"] == "p2"
            assert stats["p50"] is not None

    def test_empty_stream_view_is_flagged_empty(self):
        for stats in FleetAggregator().stream_view().values():
            assert stats["source"] == "empty"
            assert stats["p50"] is None

    def test_merge_falls_back_to_histogram_stream_view(self):
        a, b = FleetAggregator(), FleetAggregator()
        a.observe(summary(10.0, 2.0))
        b.observe(summary(30.0, 6.0))
        a.merge(b)
        # Canonical layer keeps aggregating across the merge...
        assert a.count == 2
        canonical = a.aggregate()["metrics"]["lifetime_frames"]
        assert canonical["min"] == 10.0
        # ...the P2 stream layer has no single arrival order left, so
        # the reported stream percentiles fall back to the canonical
        # histogram quantiles — flagged, and never None (this was the
        # sharded-run p5/p50/p95 blackout bug).
        view = a.stream_view()
        for stats in view.values():
            assert stats["source"] == "histogram"
            for p in FLEET_PERCENTILES:
                assert stats[f"p{p:g}"] is not None
        for p in FLEET_PERCENTILES:
            key = f"p{p:g}"
            assert view["lifetime_frames"][key] == canonical[key]

    def test_merge_rejects_different_bucket_specs(self):
        a = FleetAggregator(lifetime_bucket_frames=64.0)
        b = FleetAggregator(lifetime_bucket_frames=32.0)
        b.observe(summary(10.0, 2.0))
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_rejects_different_metric_sets(self):
        a, b = FleetAggregator(), FleetAggregator()
        del b.metrics["jobs_fractional"]
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_spec_dict_is_json_safe_and_comparable(self):
        a = FleetAggregator()
        b = FleetAggregator()
        assert a.spec_dict() == json.loads(json.dumps(b.spec_dict()))
        assert a.spec_dict() != FleetAggregator(
            jobs_bucket=1.0
        ).spec_dict()

    def test_state_dict_round_trips_bit_identically(self):
        agg = FleetAggregator()
        for i in range(50):
            agg.observe(summary(float(i * 7 % 90), float(i % 11)))
        raw = json.loads(json.dumps(agg.state_dict(), sort_keys=True))
        clone = FleetAggregator.from_state(raw)
        assert json.dumps(clone.aggregate(), sort_keys=True) == json.dumps(
            agg.aggregate(), sort_keys=True
        )

    def test_from_state_rejects_unknown_schema(self):
        with pytest.raises(ConfigurationError):
            FleetAggregator.from_state({"schema": 999, "metrics": {},
                                        "death_causes": {}})

    def test_from_state_rejects_missing_metrics(self):
        state = FleetAggregator().state_dict()
        del state["metrics"]["jobs_fractional"]
        with pytest.raises(ConfigurationError):
            FleetAggregator.from_state(state)

    def test_state_size_is_independent_of_fleet_size(self):
        # The O(1) claim, stated directly: aggregating 40x more
        # garments must not grow the serialised state.
        small, large = FleetAggregator(), FleetAggregator()
        for i in range(10):
            small.observe(summary(float(i), float(i)))
        for i in range(400):
            large.observe(summary(float(i % 97), float(i % 13)))
        assert len(json.dumps(large.state_dict())) <= len(
            json.dumps(small.state_dict())
        ) + 400  # count digits / partials jitter, not per-garment growth
