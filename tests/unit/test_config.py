"""Unit tests for the configuration layer (repro.config)."""

import pytest

from repro.battery.ideal import IdealBattery
from repro.battery.thin_film import ThinFilmBattery
from repro.config import (
    ControlConfig,
    PlatformConfig,
    RoutingOptions,
    SimulationConfig,
    WorkloadConfig,
)
from repro.errors import ConfigurationError


class TestPlatformConfig:
    def test_defaults_match_paper(self):
        platform = PlatformConfig()
        assert platform.mesh_width == 4
        assert platform.battery_capacity_pj == 60_000.0
        assert platform.battery_model == "thin-film"
        assert platform.num_mesh_nodes == 16

    def test_rectangular(self):
        platform = PlatformConfig(mesh_width=4, mesh_height=6)
        assert platform.num_mesh_nodes == 24
        assert platform.height == 6

    def test_topology_includes_mesh_metadata(self):
        topo = PlatformConfig(mesh_width=5).make_topology()
        assert topo.num_nodes == 25
        assert topo.mesh_width == 5

    def test_battery_factory(self):
        assert isinstance(PlatformConfig().make_battery(), ThinFilmBattery)
        ideal = PlatformConfig(battery_model="ideal").make_battery()
        assert isinstance(ideal, IdealBattery)

    def test_battery_capacity_flows_through(self):
        platform = PlatformConfig(battery_capacity_pj=1234.0)
        assert platform.make_battery().nominal_capacity_pj == 1234.0

    def test_hop_energy_near_paper_calibration(self):
        assert PlatformConfig().hop_energy_pj() == pytest.approx(
            116.7, abs=0.5
        )

    def test_mapping_strategies(self):
        platform = PlatformConfig(mapping_strategy="uniform")
        topo = platform.make_topology()
        mapping = platform.make_mapping(topo)
        counts = mapping.duplicate_counts()
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_proportional_needs_energies(self):
        platform = PlatformConfig(mapping_strategy="proportional")
        topo = platform.make_topology()
        with pytest.raises(ConfigurationError):
            platform.make_mapping(topo)
        mapping = platform.make_mapping(
            topo, normalized_energies={1: 2.0, 2: 1.5, 3: 3.0}
        )
        assert sum(mapping.duplicate_counts().values()) == 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(mesh_width=1)
        with pytest.raises(ConfigurationError):
            PlatformConfig(battery_model="nuclear")
        with pytest.raises(ConfigurationError):
            PlatformConfig(source_attach_xy=(9, 1))
        with pytest.raises(ConfigurationError):
            PlatformConfig(battery_levels=1)
        with pytest.raises(ConfigurationError):
            PlatformConfig(node_buffer_packets=0)


class TestControlConfig:
    def test_schedule_built_for_mesh(self):
        schedule = ControlConfig().make_schedule(16)
        assert schedule.num_nodes == 16
        assert schedule.medium_width_bits == 2

    def test_infinite_controllers(self):
        batteries = ControlConfig(num_controllers=3).make_controller_batteries()
        assert batteries == [None, None, None]

    def test_thin_film_controllers_use_controller_cell(self):
        config = ControlConfig(
            num_controllers=2, controller_battery="thin-film"
        )
        batteries = config.make_controller_batteries()
        assert all(isinstance(b, ThinFilmBattery) for b in batteries)
        # The controller cell is the low-impedance variant.
        assert batteries[0].parameters.internal_resistance_ohm < 20_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ControlConfig(num_controllers=0)
        with pytest.raises(ConfigurationError):
            ControlConfig(controller_battery="coal")


class TestWorkloadConfig:
    def test_defaults(self):
        workload = WorkloadConfig()
        assert workload.kind == "sequential"
        assert workload.max_jobs is None
        assert len(workload.aes_key) == 16

    def test_key_parsing(self):
        workload = WorkloadConfig(aes_key_hex="00" * 32)
        assert workload.aes_key == bytes(32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(kind="open-loop")
        with pytest.raises(ConfigurationError):
            WorkloadConfig(concurrency=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(aes_key_hex="0011")
        with pytest.raises(ConfigurationError):
            WorkloadConfig(max_jobs=0)


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.routing == "ear"
        assert config.weight_function().levels == 8

    def test_routing_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(routing="ospf")
        with pytest.raises(ConfigurationError):
            SimulationConfig(weight_q=0.0)

    def test_dict_round_trip(self):
        config = SimulationConfig(
            platform=PlatformConfig(mesh_width=6, battery_model="ideal"),
            control=ControlConfig(num_controllers=4),
            workload=WorkloadConfig(seed=42, max_jobs=7),
            routing="sdr",
            weight_q=2.5,
        )
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored == config

    def test_dict_round_trip_is_json_safe(self):
        import json

        config = SimulationConfig()
        text = json.dumps(config.to_dict())
        restored = SimulationConfig.from_dict(json.loads(text))
        assert restored == config

    def test_wear_defaults_and_validation(self):
        config = SimulationConfig()
        assert config.wear_aware is False
        assert config.wear_function() is None
        aware = SimulationConfig(wear_aware=True)
        assert aware.wear_function() is not None
        assert aware.wear_function().q == aware.wear_q
        with pytest.raises(ConfigurationError):
            SimulationConfig(wear_q=0.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(wear_quantum=0)

    def test_wear_fields_round_trip(self):
        config = SimulationConfig(
            wear_aware=True, wear_q=1.25, wear_quantum=32
        )
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.wear_function().quantum == 32

    def test_old_documents_without_wear_fields_still_load(self):
        raw = SimulationConfig().to_dict()
        for key in ("wear_aware", "wear_q", "wear_quantum"):
            del raw[key]
        assert SimulationConfig.from_dict(raw) == SimulationConfig()


class TestRoutingOptions:
    def test_defaults_are_inert(self):
        config = SimulationConfig()
        assert config.routing_opts == RoutingOptions()
        assert config.congestion_function() is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoutingOptions(congestion_q=0.5)
        with pytest.raises(ConfigurationError):
            RoutingOptions(congestion_quantum=0.0)

    def test_congestion_function_only_when_aware(self):
        aware = SimulationConfig(
            routing_opts=RoutingOptions(
                congestion_aware=True, congestion_q=1.5
            )
        )
        fn = aware.congestion_function()
        assert fn is not None and fn.q == 1.5

    def test_default_options_stay_out_of_the_document(self):
        # The serialised document — and therefore the sweep cache hash
        # — must not change for configs that never touch the new
        # routing options, so the cache keeps hitting across versions.
        raw = SimulationConfig().to_dict()
        assert "routing_opts" not in raw
        assert SimulationConfig.from_dict(raw) == SimulationConfig()

    def test_non_default_options_round_trip(self):
        config = SimulationConfig(
            routing_opts=RoutingOptions(
                congestion_aware=True, congestion_q=1.5, ecmp=True,
                ecmp_seed=11,
            )
        )
        raw = config.to_dict()
        assert raw["routing_opts"]["ecmp_seed"] == 11
        assert SimulationConfig.from_dict(raw) == config

    def test_default_hash_unchanged_by_the_new_section(self):
        from repro.orchestration.cache import config_hash

        default = SimulationConfig()
        explicit = SimulationConfig(routing_opts=RoutingOptions())
        assert config_hash(default) == config_hash(explicit)
        enabled = SimulationConfig(
            routing_opts=RoutingOptions(congestion_aware=True)
        )
        assert config_hash(enabled) != config_hash(default)
