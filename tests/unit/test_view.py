"""Unit tests for the controller's network view (repro.core.view)."""

import numpy as np
import pytest

from repro.core.view import NetworkView
from repro.errors import ConfigurationError
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d


def build_view(**overrides):
    topo = mesh2d(4)
    mapping = checkerboard_mapping(topo)
    kwargs = dict(
        lengths=topo.length_matrix(),
        alive=np.ones(16, dtype=bool),
        battery_levels=np.full(16, 7, dtype=int),
        levels=8,
        mapping=mapping,
    )
    kwargs.update(overrides)
    return NetworkView(**kwargs)


class TestNetworkView:
    def test_basic_accessors(self):
        view = build_view()
        assert view.num_nodes == 16
        assert view.alive_nodes() == tuple(range(16))

    def test_alive_nodes_filters(self):
        alive = np.ones(16, dtype=bool)
        alive[[2, 5]] = False
        view = build_view(alive=alive)
        assert 2 not in view.alive_nodes()
        assert 5 not in view.alive_nodes()
        assert len(view.alive_nodes()) == 14

    def test_with_blocked_ports(self):
        view = build_view()
        blocked = frozenset({(0, 1)})
        updated = view.with_blocked_ports(blocked)
        assert updated.blocked_ports == blocked
        assert view.blocked_ports == frozenset()
        assert updated.levels == view.levels

    def test_non_square_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            build_view(lengths=np.zeros((4, 5)))

    def test_vector_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            build_view(alive=np.ones(15, dtype=bool))
        with pytest.raises(ConfigurationError):
            build_view(battery_levels=np.zeros(15, dtype=int))

    def test_levels_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            build_view(battery_levels=np.full(16, 8, dtype=int))
        with pytest.raises(ConfigurationError):
            build_view(battery_levels=np.full(16, -1, dtype=int))

    def test_zero_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            build_view(levels=0)

    def test_wear_defaults_to_none(self):
        assert build_view().wear is None

    def test_wear_matrix_accepted_and_propagated(self):
        wear = np.zeros((16, 16), dtype=int)
        wear[0, 1] = wear[1, 0] = 2
        view = build_view(wear=wear)
        assert view.wear[0, 1] == 2
        blocked = view.with_blocked_ports(frozenset({(0, 1)}))
        assert np.array_equal(blocked.wear, wear)

    def test_wear_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            build_view(wear=np.zeros((4, 4), dtype=int))

    def test_negative_wear_rejected(self):
        wear = np.zeros((16, 16), dtype=int)
        wear[3, 4] = -1
        with pytest.raises(ConfigurationError):
            build_view(wear=wear)
