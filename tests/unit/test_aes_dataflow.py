"""Unit tests for the distributed-AES job dataflow."""

import pytest

from repro.aes.cipher import encrypt_block
from repro.aes.dataflow import (
    AesJobDataflow,
    MODULE_ADDROUNDKEY,
    MODULE_MIXCOLUMNS,
    MODULE_SUBBYTES_SHIFTROWS,
    operation_sequence,
    operations_per_module,
)
from repro.aes.energy import AES_MODULE_ENERGIES_PJ, module_energy_pj
from repro.errors import ConfigurationError


class TestOperationSequence:
    def test_paper_f_values_for_aes128(self):
        # Paper Sec 3: f1=10, f2=9, f3=11 for 128-bit AES.
        assert operations_per_module(10) == {1: 10, 2: 9, 3: 11}

    def test_total_operations(self):
        assert len(operation_sequence(10)) == 30

    def test_starts_with_initial_add_round_key(self):
        ops = operation_sequence(10)
        assert ops[0].module == MODULE_ADDROUNDKEY
        assert ops[0].round == 0

    def test_final_round_has_no_mixcolumns(self):
        ops = operation_sequence(10)
        final_round_ops = [op for op in ops if op.round == 10]
        assert [op.module for op in final_round_ops] == [
            MODULE_SUBBYTES_SHIFTROWS,
            MODULE_ADDROUNDKEY,
        ]

    def test_middle_round_structure(self):
        ops = operation_sequence(10)
        round5 = [op.module for op in ops if op.round == 5]
        assert round5 == [
            MODULE_SUBBYTES_SHIFTROWS,
            MODULE_MIXCOLUMNS,
            MODULE_ADDROUNDKEY,
        ]

    def test_indices_are_sequential(self):
        ops = operation_sequence(10)
        assert [op.index for op in ops] == list(range(30))

    def test_generalizes_to_other_round_counts(self):
        assert operations_per_module(12) == {1: 12, 2: 11, 3: 13}
        assert operations_per_module(14) == {1: 14, 2: 13, 3: 15}

    def test_bad_round_count_rejected(self):
        with pytest.raises(ValueError):
            operation_sequence(0)

    def test_operation_name_readable(self):
        op = operation_sequence(10)[1]
        assert "SubBytes" in op.name and "r1" in op.name


class TestAesJobDataflow:
    def test_distributed_equals_monolithic(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        flow = AesJobDataflow(key)
        assert flow.run_reference(plaintext) == encrypt_block(plaintext, key)

    def test_apply_index_steps_match_sequence(self):
        flow = AesJobDataflow(bytes(16))
        state = bytes(16)
        for index in range(flow.total_operations):
            state = flow.apply_index(index, state)
        assert state == encrypt_block(bytes(16), bytes(16))

    def test_aes256_dataflow(self):
        flow = AesJobDataflow(bytes(32))
        assert flow.rounds == 14
        # f1 + f2 + f3 = Nr + (Nr-1) + (Nr+1) = 3*Nr = 42 operations.
        assert flow.total_operations == 42
        assert flow.run_reference(bytes(16)) == encrypt_block(
            bytes(16), bytes(32)
        )

    def test_module_of(self):
        flow = AesJobDataflow(bytes(16))
        assert flow.module_of(0) == MODULE_ADDROUNDKEY
        assert flow.module_of(1) == MODULE_SUBBYTES_SHIFTROWS


class TestModuleEnergies:
    def test_paper_values(self):
        # Paper Sec 5.1.1.
        assert AES_MODULE_ENERGIES_PJ[1] == pytest.approx(120.1)
        assert AES_MODULE_ENERGIES_PJ[2] == pytest.approx(73.34)
        assert AES_MODULE_ENERGIES_PJ[3] == pytest.approx(176.55)

    def test_lookup_helper(self):
        assert module_energy_pj(3) == pytest.approx(176.55)

    def test_unknown_module_rejected(self):
        with pytest.raises(ConfigurationError):
            module_energy_pj(4)
