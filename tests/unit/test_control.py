"""Unit tests for the TDMA control mechanism (repro.control)."""

import pytest

from repro.battery.ideal import IdealBattery
from repro.control.controller import ControlPlane, StatusReport
from repro.control.controller_power import (
    ControllerEnergyModel,
    ControllerPowerReference,
)
from repro.control.deadlock import BlockedPortRegistry, DeadlockPolicy
from repro.control.tdma import TdmaSchedule
from repro.core.engines import EnergyAwareRouting
from repro.errors import ConfigurationError
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d


class TestTdmaSchedule:
    def test_paper_medium_width(self):
        schedule = TdmaSchedule(num_nodes=16)
        assert schedule.medium_width_bits == 2

    def test_slot_cycles(self):
        schedule = TdmaSchedule(num_nodes=16, status_bits=4)
        assert schedule.upload_slot_cycles == 2  # ceil(4/2)
        assert schedule.download_slot_cycles == 6  # ceil(12/2)

    def test_control_section_fits_in_frame(self):
        schedule = TdmaSchedule(num_nodes=64)
        assert schedule.control_section_cycles <= schedule.frame_cycles
        assert schedule.data_section_cycles > 0

    def test_frame_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            TdmaSchedule(num_nodes=64, frame_cycles=100)

    def test_upload_energy_from_line_model(self):
        schedule = TdmaSchedule(num_nodes=16, medium_segment_cm=1.0)
        assert schedule.upload_energy_pj == pytest.approx(4 * 0.4472)

    def test_frame_of_cycle(self):
        schedule = TdmaSchedule(num_nodes=16, frame_cycles=1000)
        assert schedule.frame_of_cycle(0) == 0
        assert schedule.frame_of_cycle(999) == 0
        assert schedule.frame_of_cycle(1000) == 1


class TestControllerPower:
    def test_reference_numbers_from_paper(self):
        ref = ControllerPowerReference()
        # 6.94 mW at 100 MHz = 69.4 pJ/cycle; 0.57 mW = 5.7 pJ/cycle.
        assert ref.dynamic_pj_per_cycle == pytest.approx(69.4)
        assert ref.leakage_pj_per_cycle == pytest.approx(5.7)

    def test_route_compute_scales_cubically(self):
        model = ControllerEnergyModel(route_compute_coeff_pj=0.001)
        e16 = model.route_compute_energy_pj(16)
        e64 = model.route_compute_energy_pj(64)
        assert e64 == pytest.approx(64 * e16)

    def test_housekeeping_scales_with_mesh(self):
        model = ControllerEnergyModel(housekeeping_per_frame_pj=60.0)
        assert model.housekeeping_energy_pj(16) == pytest.approx(60.0)
        assert model.housekeeping_energy_pj(64) == pytest.approx(240.0)

    def test_rx_energy(self):
        model = ControllerEnergyModel(rx_per_status_pj=8.0)
        assert model.rx_energy_pj(10) == pytest.approx(80.0)
        with pytest.raises(ConfigurationError):
            model.rx_energy_pj(-1)


class TestDeadlockRegistry:
    def test_report_and_expiry(self):
        registry = BlockedPortRegistry(
            DeadlockPolicy(wait_threshold_frames=2, blocked_expiry_frames=5)
        )
        assert registry.report(3, 4, frame=10) is True
        assert registry.is_blocked(3, 4)
        # Re-reporting refreshes the expiry (frame 11 + 5 = 16).
        assert registry.report(3, 4, frame=11) is False  # already known
        assert registry.expire(frame=15) is False
        assert registry.expire(frame=16) is True
        assert not registry.is_blocked(3, 4)

    def test_total_reports_counted(self):
        registry = BlockedPortRegistry(DeadlockPolicy())
        registry.report(0, 1, 0)
        registry.report(0, 1, 1)
        assert registry.total_reports == 2

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlockPolicy(wait_threshold_frames=0)
        with pytest.raises(ConfigurationError):
            DeadlockPolicy(blocked_expiry_frames=0)


def make_control_plane(batteries=None):
    topo = mesh2d(4)
    mapping = checkerboard_mapping(topo)
    return ControlPlane(
        lengths=topo.length_matrix(),
        mapping=mapping,
        engine=EnergyAwareRouting(),
        levels=8,
        schedule=TdmaSchedule(num_nodes=16),
        energy_model=ControllerEnergyModel(),
        deadlock_policy=DeadlockPolicy(),
        controller_batteries=batteries if batteries is not None else [None],
    )


class TestControlPlane:
    def test_bootstrap_produces_plan(self):
        plane = make_control_plane()
        plan = plane.bootstrap()
        assert plan is plane.plan
        assert plan.has_destination(0, 3)

    def test_frame_without_changes_keeps_plan(self):
        plane = make_control_plane()
        plane.bootstrap()
        outcome = plane.process_frame(0, reports=[], heartbeat_count=16)
        assert outcome.recomputed is False
        assert outcome.table_entries_sent == 0
        assert plane.recompute_count == 0

    def test_level_change_triggers_recompute(self):
        plane = make_control_plane()
        plane.bootstrap()
        outcome = plane.process_frame(
            0,
            reports=[StatusReport(node=5, level=2, alive=True)],
            heartbeat_count=16,
        )
        assert outcome.recomputed is True
        assert plane.recompute_count == 1

    def test_death_report_reroutes(self):
        plane = make_control_plane()
        plane.bootstrap()
        before = plane.plan.destination(1, 1)  # nearest module-1 node
        outcome = plane.process_frame(
            0,
            reports=[StatusReport(node=before, level=0, alive=False)],
            heartbeat_count=16,
        )
        assert outcome.recomputed
        assert plane.plan.destination(1, 1) != before

    def test_deadlock_report_blocks_port(self):
        plane = make_control_plane()
        plane.bootstrap()
        outcome = plane.process_frame(
            0,
            reports=[
                StatusReport(node=1, level=7, alive=True, blocked_port=0)
            ],
            heartbeat_count=16,
        )
        assert outcome.recomputed
        assert (1, 0) in plane.view().blocked_ports
        assert plane.deadlock_reports == 1

    def test_blocked_port_expires_and_recomputes(self):
        plane = make_control_plane()
        plane.bootstrap()
        plane.process_frame(
            0,
            reports=[
                StatusReport(node=1, level=7, alive=True, blocked_port=0)
            ],
        )
        expiry = DeadlockPolicy().blocked_expiry_frames
        outcome = plane.process_frame(expiry, reports=[])
        assert outcome.recomputed  # expiry changes the view
        assert (1, 0) not in plane.view().blocked_ports

    def test_energy_charged_to_active_controller(self):
        battery = IdealBattery(capacity_pj=1e9)
        plane = make_control_plane(batteries=[battery])
        plane.bootstrap()
        plane.process_frame(0, reports=[], heartbeat_count=16)
        assert battery.delivered_pj > 0

    def test_failover_chain(self):
        # First controller with a tiny battery dies; the spare takes over.
        tiny = IdealBattery(capacity_pj=1.0)
        spare = IdealBattery(capacity_pj=1e9)
        plane = make_control_plane(batteries=[tiny, spare])
        plane.bootstrap()
        outcome = plane.process_frame(0, reports=[], heartbeat_count=16)
        assert outcome.failed_over is True
        assert plane.alive
        outcome = plane.process_frame(1, reports=[], heartbeat_count=16)
        assert outcome.active_controller == 1

    def test_all_controllers_dead(self):
        tiny = IdealBattery(capacity_pj=1.0)
        plane = make_control_plane(batteries=[tiny])
        plane.bootstrap()
        plane.process_frame(0, reports=[], heartbeat_count=16)
        assert not plane.alive
        outcome = plane.process_frame(1, reports=[], heartbeat_count=16)
        assert outcome.controllers_alive == 0
        assert outcome.active_controller is None

    def test_unknown_report_rejected(self):
        plane = make_control_plane()
        plane.bootstrap()
        with pytest.raises(ConfigurationError):
            plane.process_frame(
                0, reports=[StatusReport(node=99, level=0, alive=True)]
            )

    def test_frames_before_bootstrap_rejected(self):
        plane = make_control_plane()
        with pytest.raises(ConfigurationError):
            plane.process_frame(0, reports=[])


class TestDeadNodeTableAccounting:
    """Regression: the controller must not pay to download routing
    tables to dead nodes.  A death flips the corpse's table row to -1
    against the previous tables, and every one of those stale entries
    used to be charged as ``download_tx``."""

    def test_dead_node_rows_not_charged(self):
        import numpy as np

        plane = make_control_plane()
        plane.bootstrap()
        victim = 5
        before = plane._tables_of(plane.plan)
        outcome = plane.process_frame(
            0,
            reports=[StatusReport(node=victim, level=0, alive=False)],
            heartbeat_count=15,
        )
        assert outcome.recomputed
        after = plane._tables_of(plane.plan)
        # The corpse's row flipped to -1 — a non-empty stale diff that
        # the old accounting charged as download_tx.
        assert np.all(after[victim] == -1)
        assert int(np.count_nonzero(after[victim] != before[victim])) > 0
        # The pinned count is the hand diff over *live* rows only.
        alive = plane._node_alive
        hand_count = int(
            np.count_nonzero((after != before) & alive[:, np.newaxis])
        )
        assert outcome.table_entries_sent == hand_count
        assert hand_count < int(np.count_nonzero(after != before))

    def test_download_energy_matches_masked_entries(self):
        plane = make_control_plane()
        plane.bootstrap()
        outcome = plane.process_frame(
            0,
            reports=[StatusReport(node=10, level=0, alive=False)],
            heartbeat_count=15,
        )
        schedule = TdmaSchedule(num_nodes=16)
        assert outcome.controller_energy_pj["download_tx"] == pytest.approx(
            outcome.table_entries_sent * schedule.table_entry_energy_pj
        )


class TestIdleLeakAccounting:
    """Regression: ``idle_leak`` must report what the idle cells
    actually *delivered*, not the nominal per-unit quantum — a unit
    dying mid-draw delivers less."""

    def test_healthy_idle_units_report_nominal_leak(self):
        active = IdealBattery(capacity_pj=1e9)
        idle = IdealBattery(capacity_pj=1e9)
        plane = make_control_plane(batteries=[active, idle])
        plane.bootstrap()
        outcome = plane.process_frame(0, reports=[], heartbeat_count=16)
        idle_cost = ControllerEnergyModel().idle_energy_pj(16)
        assert outcome.controller_energy_pj["idle_leak"] == pytest.approx(
            idle_cost
        )

    def test_dying_idle_unit_reports_delivered_energy(self):
        idle_cost = ControllerEnergyModel().idle_energy_pj(16)
        active = IdealBattery(capacity_pj=1e9)
        # The idle unit holds half a leak quantum: it dies mid-draw and
        # delivers only what it had.
        dying = IdealBattery(capacity_pj=idle_cost / 2)
        plane = make_control_plane(batteries=[active, dying])
        plane.bootstrap()
        outcome = plane.process_frame(0, reports=[], heartbeat_count=16)
        assert outcome.controller_energy_pj["idle_leak"] == pytest.approx(
            idle_cost / 2
        )
        assert not dying.alive
        # The breakdown agrees with the battery's own ledger.
        assert plane.units[1].delivered_pj == pytest.approx(idle_cost / 2)

    def test_dead_idle_unit_contributes_nothing(self):
        active = IdealBattery(capacity_pj=1e9)
        dead = IdealBattery(capacity_pj=1.0)
        dead.draw(2.0, 1.0)  # deplete before the frame
        assert not dead.alive
        plane = make_control_plane(batteries=[active, dead])
        plane.bootstrap()
        outcome = plane.process_frame(0, reports=[], heartbeat_count=16)
        assert outcome.controller_energy_pj["idle_leak"] == 0.0


class TestWearHook:
    def test_update_wear_triggers_recompute(self):
        import numpy as np

        plane = make_control_plane()
        plane.bootstrap()
        wear = np.zeros((16, 16), dtype=int)
        wear[0, 1] = wear[1, 0] = 3
        plane.update_wear(wear)
        outcome = plane.process_frame(0, reports=[], heartbeat_count=16)
        assert outcome.recomputed
        assert plane.view().wear is not None
        assert plane.view().wear[0, 1] == 3
        # No further change, no further recompute.
        outcome = plane.process_frame(1, reports=[], heartbeat_count=16)
        assert not outcome.recomputed
