"""Unit tests for the routing core: weights, Floyd-Warshall, phase 3,
engines (repro.core)."""

import numpy as np
import pytest

from helpers import make_view
from repro.core.engines import (
    EnergyAwareRouting,
    ShortestDistanceRouting,
    routing_engine,
)
from repro.core.floyd_warshall import (
    NO_SUCCESSOR,
    extract_path,
    floyd_warshall_successors,
    path_length,
    reference_floyd_warshall,
)
from repro.core.phase3 import NO_DESTINATION, select_destinations
from repro.core.weights import (
    BatteryWeightFunction,
    WearWeightFunction,
    apply_wear_penalty,
    ear_weight_matrix,
    sdr_weight_matrix,
)
from repro.errors import (
    ConfigurationError,
    RoutingError,
    UnreachableModuleError,
)
from repro.mesh.geometry import node_id


class TestWeightFunction:
    def test_full_battery_weight_is_one(self):
        f = BatteryWeightFunction(q=1.5, levels=8)
        assert f(7) == pytest.approx(1.0)

    def test_monotone_decreasing_level_increases_weight(self):
        f = BatteryWeightFunction(q=1.5, levels=8)
        weights = [f(level) for level in range(8)]
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_paper_form(self):
        # f(n) = Q^(2*(N_B - 1 - n))
        f = BatteryWeightFunction(q=2.0, levels=4)
        assert f(3) == 1.0
        assert f(2) == 4.0
        assert f(1) == 16.0
        assert f(0) == 64.0

    def test_q_one_degenerates_to_sdr(self):
        f = BatteryWeightFunction(q=1.0, levels=8)
        assert all(f(level) == 1.0 for level in range(8))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BatteryWeightFunction(q=0.0)
        with pytest.raises(ConfigurationError):
            BatteryWeightFunction(levels=0)
        f = BatteryWeightFunction(levels=8)
        with pytest.raises(ConfigurationError):
            f(8)


class TestWearWeightFunction:
    def test_pristine_link_is_unpenalised(self):
        g = WearWeightFunction(q=1.3, quantum=8, levels=8)
        assert g(0) == pytest.approx(1.0)

    def test_monotone_and_saturating(self):
        g = WearWeightFunction(q=1.3, quantum=8, levels=4)
        values = [g(level) for level in range(6)]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert g(3) == g(5)  # saturates at levels - 1

    def test_q_one_degenerates_to_reactive_ear(self):
        g = WearWeightFunction(q=1.0, quantum=8, levels=8)
        assert all(g(level) == 1.0 for level in range(8))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            WearWeightFunction(q=0.9)
        with pytest.raises(ConfigurationError):
            WearWeightFunction(quantum=0)
        with pytest.raises(ConfigurationError):
            WearWeightFunction(levels=0)
        with pytest.raises(ConfigurationError):
            WearWeightFunction()(-1)

    def test_apply_wear_penalty_preserves_conventions(
        self, mesh4, mapping4, full_view
    ):
        weights = sdr_weight_matrix(full_view)
        wear = np.zeros((16, 16), dtype=int)
        wear[0, 1] = wear[1, 0] = 2
        wear[3, 3] = 5  # diagonal wear must stay inert
        g = WearWeightFunction(q=1.5, quantum=8, levels=8)
        penalised = apply_wear_penalty(weights, wear, g)
        pitch = mesh4.edge_length(0, 1)
        assert penalised[0, 1] == pytest.approx(pitch * 1.5**2)
        assert penalised[1, 0] == pytest.approx(pitch * 1.5**2)
        assert penalised[0, 4] == pytest.approx(pitch)  # untouched
        assert penalised[3, 3] == 0.0
        assert np.isinf(penalised[0, 5])  # non-edges stay inf

    def test_ear_engine_applies_wear_from_the_view(
        self, mesh4, mapping4, full_view
    ):
        wear = np.zeros((16, 16), dtype=int)
        wear[0, 1] = wear[1, 0] = 3
        worn_view = make_view(mesh4, mapping4)
        worn_view = type(worn_view)(
            lengths=worn_view.lengths,
            alive=worn_view.alive,
            battery_levels=worn_view.battery_levels,
            levels=worn_view.levels,
            mapping=worn_view.mapping,
            wear=wear,
        )
        g = WearWeightFunction(q=1.5, quantum=8, levels=8)
        engine = EnergyAwareRouting(wear_function=g)
        weights = engine.weight_matrix(worn_view)
        reactive = EnergyAwareRouting().weight_matrix(worn_view)
        assert weights[0, 1] == pytest.approx(reactive[0, 1] * 1.5**3)
        assert weights[2, 3] == pytest.approx(reactive[2, 3])
        # Without wear data in the view, the wear engine is reactive.
        assert np.array_equal(
            engine.weight_matrix(full_view),
            EnergyAwareRouting().weight_matrix(full_view),
        )


class TestWeightMatrices:
    def test_sdr_weights_are_lengths(self, mesh4, mapping4, full_view):
        weights = sdr_weight_matrix(full_view)
        lengths = mesh4.length_matrix()
        assert np.array_equal(weights, lengths)

    def test_dead_node_removed_from_graph(self, mesh4, mapping4):
        alive = np.ones(16, dtype=bool)
        alive[5] = False
        view = make_view(mesh4, mapping4, alive=alive)
        weights = sdr_weight_matrix(view)
        assert np.isinf(weights[5, 6]) and np.isinf(weights[4, 5])
        assert weights[5, 5] == 0.0

    def test_ear_scales_by_receiver_level(self, mesh4, mapping4):
        levels = np.full(16, 7)
        levels[1] = 0  # depleted node
        view = make_view(mesh4, mapping4, levels_vector=levels)
        f = BatteryWeightFunction(q=1.5, levels=8)
        weights = ear_weight_matrix(view, f)
        pitch = mesh4.edge_length(0, 1)
        assert weights[0, 1] == pytest.approx(pitch * f(0))
        assert weights[1, 0] == pytest.approx(pitch * 1.0)

    def test_ear_full_battery_equals_sdr(self, full_view):
        f = BatteryWeightFunction(q=1.7, levels=8)
        assert np.array_equal(
            ear_weight_matrix(full_view, f), sdr_weight_matrix(full_view)
        )

    def test_level_count_mismatch_rejected(self, full_view):
        f = BatteryWeightFunction(q=1.5, levels=16)
        with pytest.raises(ConfigurationError):
            ear_weight_matrix(full_view, f)


class TestFloydWarshall:
    def test_matches_reference_on_mesh(self, full_view):
        weights = sdr_weight_matrix(full_view)
        d_fast, s_fast = floyd_warshall_successors(weights)
        d_ref, s_ref = reference_floyd_warshall(weights)
        assert np.allclose(d_fast, d_ref)
        assert np.array_equal(s_fast, s_ref)

    def test_matches_networkx(self, mesh4, full_view):
        import networkx as nx

        weights = sdr_weight_matrix(full_view)
        distances, _ = floyd_warshall_successors(weights)
        graph = mesh4.to_networkx()
        nx_lengths = dict(
            nx.all_pairs_dijkstra_path_length(graph, weight="length")
        )
        for i in range(16):
            for j in range(16):
                assert distances[i, j] == pytest.approx(nx_lengths[i][j])

    def test_successor_walk_reaches_destination(self, full_view):
        weights = sdr_weight_matrix(full_view)
        distances, successors = floyd_warshall_successors(weights)
        path = extract_path(successors, 0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert path_length(full_view.lengths, path) == pytest.approx(
            distances[0, 15]
        )

    def test_unreachable_marked(self):
        weights = np.array(
            [[0.0, 1.0, np.inf], [1.0, 0.0, np.inf], [np.inf, np.inf, 0.0]]
        )
        distances, successors = floyd_warshall_successors(weights)
        assert np.isinf(distances[0, 2])
        assert successors[0, 2] == NO_SUCCESSOR
        with pytest.raises(RoutingError):
            extract_path(successors, 0, 2)

    def test_negative_weights_rejected(self):
        weights = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(RoutingError):
            floyd_warshall_successors(weights)

    def test_nonzero_diagonal_rejected(self):
        weights = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(RoutingError):
            floyd_warshall_successors(weights)

    def test_relay_through_cheap_detour(self):
        # A 3-node line where the direct edge is expensive: the shortest
        # path detours through the middle node.
        weights = np.array(
            [[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]]
        )
        distances, successors = floyd_warshall_successors(weights)
        assert distances[0, 2] == pytest.approx(2.0)
        assert successors[0, 2] == 1


class TestPhase3:
    def test_module_node_selects_itself(self, full_view):
        weights = sdr_weight_matrix(full_view)
        d, s = floyd_warshall_successors(weights)
        dests = select_destinations(full_view, d, s)
        for module in (1, 2, 3):
            for node in full_view.mapping.duplicates(module):
                assert dests[node, module] == node

    def test_nearest_duplicate_chosen(self, mesh4, mapping4, full_view):
        weights = sdr_weight_matrix(full_view)
        d, s = floyd_warshall_successors(weights)
        dests = select_destinations(full_view, d, s)
        origin = node_id(2, 1, 4)  # module 3 node
        # Nearest module-1 duplicates are (1,1) and (3,1), both 1 hop;
        # the tie breaks to the lower node id = (1,1) = 0.
        assert dests[origin, 1] == node_id(1, 1, 4)

    def test_dead_duplicates_skipped(self, mesh4, mapping4):
        alive = np.ones(16, dtype=bool)
        alive[node_id(1, 1, 4)] = False
        view = make_view(mesh4, mapping4, alive=alive)
        weights = sdr_weight_matrix(view)
        d, s = floyd_warshall_successors(weights)
        dests = select_destinations(view, d, s)
        origin = node_id(2, 1, 4)
        assert dests[origin, 1] == node_id(3, 1, 4)

    def test_all_dead_module_unreachable(self, mesh4, mapping4):
        alive = np.ones(16, dtype=bool)
        for dup in mapping4.duplicates(2):
            alive[dup] = False
        view = make_view(mesh4, mapping4, alive=alive)
        weights = sdr_weight_matrix(view)
        d, s = floyd_warshall_successors(weights)
        dests = select_destinations(view, d, s)
        assert np.all(dests[:, 2] == NO_DESTINATION)

    def test_blocked_port_redirects(self, mesh4, mapping4):
        origin = node_id(2, 1, 4)
        preferred = node_id(1, 1, 4)
        blocked = frozenset({(origin, preferred)})
        view = make_view(mesh4, mapping4, blocked=blocked)
        weights = sdr_weight_matrix(view)
        d, s = floyd_warshall_successors(weights)
        dests = select_destinations(view, d, s)
        # The first hop to (1,1) is blocked, so another duplicate whose
        # first hop differs must be chosen.
        assert dests[origin, 1] != preferred


class TestEngines:
    def test_factory(self):
        assert isinstance(routing_engine("ear"), EnergyAwareRouting)
        assert isinstance(routing_engine("sdr"), ShortestDistanceRouting)
        with pytest.raises(ConfigurationError):
            routing_engine("dijkstra")

    def test_plan_accessors(self, full_view):
        plan = ShortestDistanceRouting().compute_plan(full_view)
        assert plan.num_nodes == 16
        dest = plan.destination(0, 2)
        assert dest in full_view.mapping.duplicates(2)
        path = plan.path_to_module(0, 2)
        assert path[0] == 0 and path[-1] == dest

    def test_unreachable_raises(self, mesh4, mapping4):
        alive = np.ones(16, dtype=bool)
        for dup in mapping4.duplicates(2):
            alive[dup] = False
        view = make_view(mesh4, mapping4, alive=alive)
        plan = ShortestDistanceRouting().compute_plan(view)
        assert not plan.has_destination(0, 2)
        with pytest.raises(UnreachableModuleError):
            plan.destination(0, 2)

    def test_ear_avoids_depleted_relay(self, mesh4, mapping4):
        # Deplete (2,2); EAR routes 2-hop journeys around it.
        levels = np.full(16, 7)
        depleted = node_id(2, 2, 4)
        levels[depleted] = 0
        view = make_view(mesh4, mapping4, levels_vector=levels)
        ear_plan = EnergyAwareRouting(
            BatteryWeightFunction(q=2.0, levels=8)
        ).compute_plan(view)
        sdr_plan = ShortestDistanceRouting().compute_plan(view)
        origin = node_id(1, 2, 4)  # module 3, adjacent to depleted node
        # SDR still happily selects the depleted module-2 node.
        assert sdr_plan.destination(origin, 2) == depleted
        # EAR prefers a farther but charged duplicate.
        assert ear_plan.destination(origin, 2) != depleted

    def test_engines_identical_at_full_charge(self, full_view):
        ear = EnergyAwareRouting().compute_plan(full_view)
        sdr = ShortestDistanceRouting().compute_plan(full_view)
        assert np.array_equal(ear.destinations, sdr.destinations)
        assert np.allclose(ear.distances, sdr.distances)

    def test_repr(self):
        assert "q=" in repr(EnergyAwareRouting())
        assert repr(ShortestDistanceRouting())
