"""Unit tests for Theorem 1 (repro.core.upper_bound)."""

import pytest

from repro.core.parameters import ApplicationProfile
from repro.core.upper_bound import (
    jobs_for_duplicates,
    optimize_duplicates,
    theorem1,
)
from repro.errors import ConfigurationError


@pytest.fixture
def aes_profile():
    """AES profile at the calibrated per-hop energy (DESIGN.md)."""
    return ApplicationProfile.aes128(116.74)


class TestProfile:
    def test_paper_f_and_e_values(self, aes_profile):
        assert aes_profile.operations == {1: 10, 2: 9, 3: 11}
        assert aes_profile.computation_energy_pj[1] == pytest.approx(120.1)

    def test_normalized_energy_formula(self, aes_profile):
        # H_i = f_i * (E_i + c_i)
        assert aes_profile.normalized_energy(1) == pytest.approx(
            10 * (120.1 + 116.74)
        )
        assert aes_profile.normalized_energy(3) == pytest.approx(
            11 * (176.55 + 116.74)
        )

    def test_module3_dominates(self, aes_profile):
        energies = aes_profile.normalized_energies()
        assert energies[3] == max(energies.values())

    def test_operations_per_job(self, aes_profile):
        assert aes_profile.operations_per_job == 30

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ApplicationProfile(
                name="bad",
                operations={1: 10},
                computation_energy_pj={1: 1.0, 2: 1.0},
                communication_energy_pj={1: 1.0},
            )
        with pytest.raises(ConfigurationError):
            ApplicationProfile.aes128(-1.0)
        with pytest.raises(ConfigurationError):
            ApplicationProfile(
                name="bad-ids",
                operations={2: 1, 3: 1},
                computation_energy_pj={2: 1.0, 3: 1.0},
                communication_energy_pj={2: 0.0, 3: 0.0},
            )


class TestTheorem1:
    def test_paper_table2_bounds(self, aes_profile):
        # Theorem 1 must reproduce the paper's Table 2 J* column.
        paper = {16: 131.42, 25: 205.25, 36: 295.70, 49: 402.48, 64: 525.69}
        for nodes, expected in paper.items():
            bound = theorem1(aes_profile, 60_000.0, nodes)
            assert bound.jobs == pytest.approx(expected, rel=0.002)

    def test_bound_linear_in_k(self, aes_profile):
        j16 = theorem1(aes_profile, 60_000.0, 16).jobs
        j64 = theorem1(aes_profile, 60_000.0, 64).jobs
        assert j64 == pytest.approx(4 * j16)

    def test_bound_linear_in_b(self, aes_profile):
        j1 = theorem1(aes_profile, 60_000.0, 16).jobs
        j2 = theorem1(aes_profile, 120_000.0, 16).jobs
        assert j2 == pytest.approx(2 * j1)

    def test_optimal_duplicates_proportional_to_h(self, aes_profile):
        bound = theorem1(aes_profile, 60_000.0, 16)
        energies = bound.normalized_energies
        dups = bound.optimal_duplicates
        # n_i* / H_i constant across modules (Eq 3).
        ratios = [dups[m] / energies[m] for m in energies]
        assert max(ratios) == pytest.approx(min(ratios))
        assert sum(dups.values()) == pytest.approx(16.0)

    def test_energy_per_job(self, aes_profile):
        bound = theorem1(aes_profile, 60_000.0, 16)
        assert bound.energy_per_job_pj == pytest.approx(
            aes_profile.total_normalized_energy
        )

    def test_too_few_nodes_rejected(self, aes_profile):
        with pytest.raises(ConfigurationError):
            theorem1(aes_profile, 60_000.0, 2)


class TestOptimizer:
    def test_real_relaxation_matches_closed_form(self, aes_profile):
        jobs, allocation = optimize_duplicates(
            aes_profile, 60_000.0, 16, integral=False
        )
        bound = theorem1(aes_profile, 60_000.0, 16)
        assert jobs == pytest.approx(bound.jobs)
        for module in allocation:
            assert allocation[module] == pytest.approx(
                bound.optimal_duplicates[module]
            )

    def test_integer_never_beats_bound(self, aes_profile):
        for nodes in (3, 5, 8, 16, 25):
            jobs_int, _ = optimize_duplicates(
                aes_profile, 60_000.0, nodes, integral=True
            )
            bound = theorem1(aes_profile, 60_000.0, nodes).jobs
            assert jobs_int <= bound + 1e-9

    def test_integer_allocation_sums_to_budget(self, aes_profile):
        _, allocation = optimize_duplicates(
            aes_profile, 60_000.0, 16, integral=True
        )
        assert sum(allocation.values()) == 16
        assert all(v >= 1 for v in allocation.values())

    def test_integer_optimum_beats_naive_split(self, aes_profile):
        jobs_opt, _ = optimize_duplicates(
            aes_profile, 60_000.0, 16, integral=True
        )
        naive = {1: 6.0, 2: 6.0, 3: 4.0}  # wrong-headed allocation
        jobs_naive = jobs_for_duplicates(
            aes_profile, 60_000.0, naive, floor_jobs=True
        )
        assert jobs_opt > jobs_naive

    def test_jobs_for_duplicates_validation(self, aes_profile):
        with pytest.raises(ConfigurationError):
            jobs_for_duplicates(aes_profile, 60_000.0, {1: 5.0})

    def test_single_module_application(self):
        profile = ApplicationProfile(
            name="mono",
            operations={1: 4},
            computation_energy_pj={1: 100.0},
            communication_energy_pj={1: 50.0},
        )
        jobs, allocation = optimize_duplicates(
            profile, 1_000.0, 5, integral=True
        )
        assert allocation == {1: 5.0}
        # 5 nodes * 1000 pJ / (4 * 150 pJ) = 8.33 -> floor 8.
        assert jobs == 8.0
