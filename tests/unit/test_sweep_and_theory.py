"""Unit tests for the sweep harness and theory comparisons."""

import pytest

from repro.analysis.sweep import (
    run_sweep,
    sweep_controllers,
    sweep_mesh_sizes,
)
from repro.analysis.theory import (
    bound_comparison,
    bound_for,
    gap_report,
    profile_for,
)
from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig


def tiny_config(**kwargs):
    """A configuration capped to a couple of jobs for speed."""
    return SimulationConfig(
        platform=PlatformConfig(mesh_width=4),
        workload=WorkloadConfig(max_jobs=2, max_frames=20_000),
        **kwargs,
    )


class TestRunSweep:
    def test_labels_and_records(self):
        results = run_sweep(
            {"a": tiny_config(routing="ear"), "b": tiny_config(routing="sdr")}
        )
        assert [r.label for r in results] == ["a", "b"]
        record = results[0].record()
        assert record["label"] == "a"
        assert record["jobs_completed"] == 2

    def test_hook_invoked(self):
        seen = []
        run_sweep(
            {"only": tiny_config()},
            hook=lambda label, stats: seen.append(
                (label, stats.jobs_completed)
            ),
        )
        assert seen == [("only", 2)]


class TestGridSweeps:
    def test_mesh_size_sweep_structure(self):
        base = tiny_config()
        results = sweep_mesh_sizes(base, widths=(4,), routings=("ear", "sdr"))
        assert len(results) == 2
        assert {r.params["routing"] for r in results} == {"ear", "sdr"}
        assert all(r.params["mesh"] == "4x4" for r in results)

    def test_controller_sweep_structure(self):
        base = tiny_config()
        results = sweep_controllers(
            base, widths=(4,), controller_counts=(1, 2)
        )
        assert len(results) == 2
        assert [r.params["controllers"] for r in results] == [1, 2]


class TestTheory:
    def test_profile_uses_config_hop_energy(self):
        config = SimulationConfig(platform=PlatformConfig(mesh_width=4))
        profile = profile_for(config)
        assert profile.communication_energy_pj[1] == pytest.approx(
            config.platform.hop_energy_pj()
        )

    def test_bound_for_matches_paper(self):
        config = SimulationConfig(platform=PlatformConfig(mesh_width=8))
        assert bound_for(config).jobs == pytest.approx(525.69, rel=0.01)

    def test_bound_comparison_fields(self):
        from repro.sim.et_sim import run_simulation

        config = tiny_config()
        stats = run_simulation(config)
        comparison = bound_comparison(config, stats)
        assert comparison.mesh == "4x4"
        assert comparison.ratio == pytest.approx(
            comparison.simulated_jobs / comparison.bound_jobs
        )

    def test_gap_report_covers_the_budget(self):
        from repro.sim.et_sim import run_simulation

        config = SimulationConfig(
            platform=PlatformConfig(mesh_width=4), routing="ear"
        )
        stats = run_simulation(config)
        report = gap_report(config, stats)
        assert set(report) == {
            "spent_compute",
            "spent_data",
            "spent_upload",
            "conversion_loss",
            "wasted_dead",
            "stranded_alive",
        }
        assert sum(report.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(v >= 0 for v in report.values())
