"""The engine registry and the ``SimulationConfig.engine`` field."""

from __future__ import annotations

import pytest

from helpers import build_engine, make_config
from repro.config import ENGINE_NAMES, SimulationConfig
from repro.errors import ConfigurationError
from repro.orchestration.cache import config_hash
from repro.sim import ENGINE_REGISTRY
from repro.sim import build_engine as registry_build_engine
from repro.sim.concurrent_engine import ConcurrentEngine
from repro.sim.sequential_engine import SequentialEngine
from repro.sim.vector_engine import VectorEngine


class TestRegistry:
    def test_registry_names_match_the_config_constant(self):
        # "auto" is a config-level alias, never a registry key.
        assert set(ENGINE_REGISTRY) == set(ENGINE_NAMES) - {"auto"}

    @pytest.mark.parametrize(
        "engine, expected",
        [
            ("sequential", SequentialEngine),
            ("concurrent", ConcurrentEngine),
            ("vector", VectorEngine),
        ],
    )
    def test_explicit_name_selects_the_engine(self, engine, expected):
        built = build_engine(make_config(engine=engine))
        assert type(built) is expected

    def test_auto_resolves_by_workload_kind(self):
        sequential = build_engine(make_config(kind="sequential"))
        assert type(sequential) is SequentialEngine
        concurrent = build_engine(
            make_config(kind="concurrent", concurrency=2)
        )
        assert type(concurrent) is ConcurrentEngine

    def test_registry_build_rejects_unregistered_names(self):
        config = make_config()
        object.__setattr__(config, "engine", "warp")
        with pytest.raises(ConfigurationError, match="warp"):
            registry_build_engine(config)

    def test_unknown_engine_name_is_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            make_config(engine="warp")


class TestConfigField:
    def test_engine_survives_the_dict_round_trip(self):
        config = make_config(engine="vector")
        restored = SimulationConfig.from_dict(config.to_dict())
        assert restored.engine == "vector"
        assert restored == config

    def test_pre_engine_payloads_default_to_auto(self):
        data = make_config().to_dict()
        del data["engine"]
        assert SimulationConfig.from_dict(data).engine == "auto"

    def test_resolved_engine(self):
        assert make_config().resolved_engine() == "sequential"
        assert (
            make_config(kind="concurrent", concurrency=2).resolved_engine()
            == "concurrent"
        )
        assert make_config(engine="vector").resolved_engine() == "vector"


class TestCacheHashStability:
    def test_auto_and_explicit_default_engine_hash_identically(self):
        """Pre-field cache entries must keep hitting: spelling out the
        engine ``"auto"`` would pick cannot change the key."""
        auto = make_config(engine="auto")
        explicit = make_config(engine="sequential")
        assert config_hash(auto) == config_hash(explicit)

    def test_concurrent_workloads_normalise_their_own_default(self):
        auto = make_config(kind="concurrent", concurrency=2)
        explicit = make_config(
            kind="concurrent", concurrency=2, engine="concurrent"
        )
        assert config_hash(auto) == config_hash(explicit)

    def test_overriding_engine_forks_the_hash(self):
        assert config_hash(make_config(engine="vector")) != config_hash(
            make_config()
        )

    def test_engine_key_is_absent_from_the_normalised_payload(self):
        """The seed-era payload had no ``engine`` key at all, so the
        normalised form must match it byte for byte."""
        data = make_config().to_dict()
        assert data.pop("engine") == "auto"
        legacy_style = make_config()
        assert config_hash(legacy_style) == config_hash(
            SimulationConfig.from_dict(data)
        )
