"""Unit tests for the orchestration layer: cache, runner, scenarios."""

import dataclasses

import pytest

from repro.config import PlatformConfig, SimulationConfig, WorkloadConfig
from repro.errors import ConfigurationError
from repro.orchestration import (
    ParallelSweepRunner,
    SequentialSweepRunner,
    SweepCache,
    SweepPoint,
    build_scenario,
    config_hash,
    derive_seed,
    scenario_names,
    scenarios,
)
from repro.orchestration import cache as cache_module
from repro.orchestration import runner as runner_module


def tiny_config(**kwargs):
    return SimulationConfig(
        platform=PlatformConfig(mesh_width=4),
        workload=WorkloadConfig(max_jobs=2, max_frames=20_000),
        **kwargs,
    )


def tiny_points():
    return [
        SweepPoint("ear", tiny_config(routing="ear"), {"routing": "ear"}),
        SweepPoint("sdr", tiny_config(routing="sdr"), {"routing": "sdr"}),
    ]


class TestConfigHash:
    def test_stable_across_instances(self):
        assert config_hash(tiny_config()) == config_hash(tiny_config())

    def test_sensitive_to_any_knob(self):
        base = tiny_config()
        variants = [
            tiny_config(routing="sdr"),
            tiny_config(weight_q=2.0),
            dataclasses.replace(
                base, platform=dataclasses.replace(base.platform, mesh_width=5)
            ),
            dataclasses.replace(
                base, workload=dataclasses.replace(base.workload, seed=7)
            ),
        ]
        hashes = {config_hash(c) for c in variants}
        assert config_hash(base) not in hashes
        assert len(hashes) == len(variants)

    def test_round_trip_preserves_hash(self):
        base = tiny_config()
        rebuilt = SimulationConfig.from_dict(base.to_dict())
        assert config_hash(rebuilt) == config_hash(base)


class TestSweepCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.lookup("deadbeef") is None
        cache.store("deadbeef", {"summary": {"jobs_completed": 3}})
        record = cache.lookup("deadbeef")
        assert record["summary"]["jobs_completed"] == 3
        assert (cache.hits, cache.misses) == (1, 1)

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("k", {"summary": {}})
        path = cache._path("k")
        text = path.read_text().replace(
            f'"schema": {cache_module.CACHE_SCHEMA_VERSION}', '"schema": 0'
        )
        path.write_text(text)
        assert cache.lookup("k") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("k", {"summary": {}})
        cache._path("k").write_text("{not json")
        assert cache.lookup("k") is None

    def test_len_and_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert len(cache) == 0
        cache.store("a", {"summary": {}})
        cache.store("b", {"summary": {}})
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_env_var_selects_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path / "c"))
        cache = SweepCache()
        assert cache.directory == tmp_path / "c"


class TestSequentialRunner:
    def test_records_in_input_order(self):
        records = SequentialSweepRunner().run(tiny_points())
        assert [r.label for r in records] == ["ear", "sdr"]
        assert all(r.stats is not None for r in records)
        assert all(not r.cached for r in records)
        assert records[0].summary["jobs_completed"] == 2

    def test_record_row_merges_params_and_summary(self):
        record = SequentialSweepRunner().run(tiny_points())[0]
        row = record.record()
        assert row["label"] == "ear"
        assert row["routing"] == "ear"
        assert row["jobs_completed"] == 2

    def test_hook_sees_every_record(self):
        seen = []
        SequentialSweepRunner().run(
            tiny_points(), hook=lambda r: seen.append(r.label)
        )
        assert seen == ["ear", "sdr"]

    def test_cache_miss_then_hit_skips_execution(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        first = SequentialSweepRunner(cache=cache).run(tiny_points())
        assert cache.misses == 2 and cache.hits == 0

        def boom(point):
            raise AssertionError(f"re-executed {point.label}")

        monkeypatch.setattr(runner_module, "execute_point", boom)
        cache.reset_counters()
        second = SequentialSweepRunner(cache=cache).run(tiny_points())
        assert cache.hits == 2 and cache.misses == 0
        assert all(r.cached for r in second)
        assert [r.summary for r in second] == [r.summary for r in first]

    def test_partial_cache_executes_only_missing(self, tmp_path):
        cache = SweepCache(tmp_path)
        points = tiny_points()
        SequentialSweepRunner(cache=cache).run(points[:1])
        records = SequentialSweepRunner(cache=cache).run(points)
        assert [r.cached for r in records] == [True, False]


class TestParallelRunnerValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepRunner(max_workers=0)

    def test_single_pending_point_runs_inline(self):
        records = ParallelSweepRunner(max_workers=2).run(tiny_points()[:1])
        assert records[0].summary["jobs_completed"] == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2005, "a") == derive_seed(2005, "a")

    def test_varies_with_label_and_base(self):
        seeds = {
            derive_seed(2005, "a"),
            derive_seed(2005, "b"),
            derive_seed(7, "a"),
        }
        assert len(seeds) == 3


class TestScenarios:
    def test_registry_contains_paper_and_extension_grids(self):
        names = scenario_names()
        for expected in (
            "fig7",
            "fig8",
            "table2",
            "large-mesh",
            "mixed-workload",
            "battery-ablation",
        ):
            assert expected in names
        assert all(s.description for s in scenarios().values())

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            build_scenario("nope")

    def test_unknown_scale_raises(self):
        with pytest.raises(ConfigurationError):
            build_scenario("fig7", scale="huge")

    def test_fig7_full_matches_paper_grid(self):
        points = build_scenario("fig7")
        assert len(points) == 10  # 5 widths x 2 routings
        labels = {p.label for p in points}
        assert "8x8/ear" in labels and "4x4/sdr" in labels

    def test_smoke_grids_are_small_and_bounded(self):
        for name in scenario_names():
            points = build_scenario(name, scale="smoke")
            assert 0 < len(points) <= 4, name
            for point in points:
                # Bounded by a job budget, or (the fleet garments,
                # which run to death on deliberately small battery
                # lots) by a tight frame safety cap.
                workload = point.config.workload
                assert (
                    workload.max_jobs is not None
                    or workload.max_frames <= 2_000
                ), name

    def test_mixed_workload_uses_distinct_derived_seeds(self):
        points = build_scenario("mixed-workload", scale="full")
        seeds = [p.config.workload.seed for p in points]
        assert len(set(seeds)) == len(seeds)
        again = build_scenario("mixed-workload", scale="full")
        assert seeds == [p.config.workload.seed for p in again]

    def test_table2_uses_ideal_battery(self):
        for point in build_scenario("table2", scale="smoke"):
            assert point.config.platform.battery_model == "ideal"

    def test_duplicate_registration_rejected(self):
        from repro.orchestration.scenarios import scenario

        with pytest.raises(ConfigurationError):
            scenario("fig7", "again")(lambda scale, base: [])

    def test_tear_repair_smoke_covers_both_engines(self):
        points = build_scenario("tear-repair", scale="smoke")
        kinds = {p.config.workload.kind for p in points}
        assert kinds == {"sequential", "concurrent"}
        for point in points:
            assert point.config.faults.profile == "tear"
            assert point.config.faults.repair_after_frames > 0

    def test_tear_repair_uses_distinct_derived_seeds(self):
        points = build_scenario("tear-repair", scale="full")
        seeds = [p.config.faults.seed for p in points]
        assert len(set(seeds)) == len(seeds)

    def test_wear_aware_pairs_reactive_and_wear_points(self):
        points = build_scenario("wear-aware", scale="quick")
        by_intensity: dict[float, set[str]] = {}
        for point in points:
            by_intensity.setdefault(
                point.params["fault_intensity"], set()
            ).add(point.params["strategy"])
        assert by_intensity
        for strategies in by_intensity.values():
            assert strategies == {"reactive", "wear"}
        for point in points:
            wear_expected = point.params["strategy"] == "wear"
            assert point.config.wear_aware is wear_expected
            assert point.config.routing == "ear"
            # The paired points share one fault schedule per intensity.
        seeds = {
            (p.params["fault_intensity"], p.config.faults.seed)
            for p in points
        }
        assert len(seeds) == len(by_intensity)
