"""Unit behaviour of the wearer/lot distribution sampling."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.fleet.distribution import FLEET_PRESETS, FleetDistribution
from repro.orchestration.cache import config_hash


class TestValidation:
    def test_rejects_empty_widths(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(widths=(), width_weights=())

    def test_rejects_tiny_widths(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(widths=(1,), width_weights=(1.0,))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(widths=(4, 5), width_weights=(1.0,))

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(widths=(4,), width_weights=(0.0,))

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(engines=("warp-drive",))

    def test_rejects_unknown_harvest_profile(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(harvest_profile="antimatter")

    def test_rejects_fractions_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(harvest_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FleetDistribution(wash_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            FleetDistribution(equipped_fraction=0.0)

    def test_rejects_inverted_bands(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(amplitude_low=10.0, amplitude_high=5.0)
        with pytest.raises(ConfigurationError):
            FleetDistribution(capacity_low=0.0)
        with pytest.raises(ConfigurationError):
            FleetDistribution(capacity_low=10.0, capacity_high=5.0)

    def test_rejects_gain_spread_reaching_one(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(gain_spread_low=0.5, gain_spread_high=1.0)

    def test_rejects_degenerate_limits(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution(max_jobs=0)
        with pytest.raises(ConfigurationError):
            FleetDistribution(max_frames=0)

    def test_rejects_negative_garment_index(self):
        with pytest.raises(ConfigurationError):
            FleetDistribution().garment_config(1, -1)


class TestSampling:
    def test_same_pair_is_bit_identical(self):
        dist = FLEET_PRESETS["default"]
        assert dist.garment_config(7, 3) == dist.garment_config(7, 3)
        assert config_hash(dist.garment_config(7, 3)) == config_hash(
            dist.garment_config(7, 3)
        )

    def test_different_indices_differ(self):
        dist = FLEET_PRESETS["default"]
        configs = [dist.garment_config(7, i) for i in range(16)]
        assert len({config_hash(c) for c in configs}) > 1

    def test_different_seeds_differ(self):
        dist = FLEET_PRESETS["default"]
        assert dist.garment_config(1, 0) != dist.garment_config(2, 0)

    def test_preset_name_forks_the_draws(self):
        # Two presets with identical bands but different names must not
        # share garment draws: the name is mixed into every seed.
        a = FleetDistribution(name="a")
        b = dataclasses.replace(a, name="b")
        assert a.garment_config(1, 0) != b.garment_config(1, 0)

    def test_samples_stay_inside_declared_bands(self):
        dist = FLEET_PRESETS["active"]
        for index in range(64):
            config = dist.garment_config(11, index)
            assert config.platform.mesh_width in dist.widths
            assert config.engine in dist.engines
            cap = config.platform.battery_capacity_pj
            assert dist.capacity_low <= cap <= dist.capacity_high
            if config.harvest.is_active:
                amp = config.harvest.amplitude_pj
                assert dist.amplitude_low <= amp <= dist.amplitude_high
                spread = config.harvest.hardware.gain_spread
                assert dist.gain_spread_low <= spread
                assert spread <= dist.gain_spread_high
            if config.faults.profile != "none":
                assert config.faults.profile == "wash-cycle"
                assert (
                    dist.wash_intensity_low
                    <= config.faults.intensity
                    <= dist.wash_intensity_high
                )

    def test_population_mixes_harvesting_and_washing(self):
        dist = FLEET_PRESETS["smoke"]
        configs = [dist.garment_config(3, i) for i in range(64)]
        harvesting = sum(1 for c in configs if c.harvest.is_active)
        washing = sum(1 for c in configs if c.faults.profile != "none")
        assert 0 < harvesting < len(configs)
        assert 0 < washing < len(configs)

    def test_base_config_is_grafted_not_replaced(self):
        base = SimulationConfig(routing="sdr")
        config = FLEET_PRESETS["smoke"].garment_config(5, 0, base)
        assert config.routing == "sdr"

    def test_point_params_mirror_the_config(self):
        dist = FLEET_PRESETS["default"]
        for index in (0, 5, 11):
            point = dist.point(9, index)
            width = point.config.platform.mesh_width
            assert point.label == f"g{index:04d}/{width}x{width}"
            assert point.params["garment"] == index
            assert point.params["mesh"] == f"{width}x{width}"
            assert (
                point.params["capacity_pj"]
                == point.config.platform.battery_capacity_pj
            )
            if not point.config.harvest.is_active:
                assert point.params["amplitude_pj"] == 0.0
            if point.config.faults.profile == "none":
                assert point.params["fault_intensity"] == 0.0

    def test_points_cover_a_shard_range(self):
        dist = FLEET_PRESETS["smoke"]
        shard = dist.points(2, range(10, 14))
        assert [p.params["garment"] for p in shard] == [10, 11, 12, 13]
        # A shard draws the same garments the whole fleet would.
        whole = dist.points(2, range(16))
        assert [p.config for p in shard] == [
            p.config for p in whole[10:14]
        ]


class TestSerialisation:
    @pytest.mark.parametrize("name", sorted(FLEET_PRESETS))
    def test_presets_round_trip(self, name):
        dist = FLEET_PRESETS[name]
        clone = FleetDistribution.from_dict(dist.to_dict())
        assert clone == dist
        # The round-tripped distribution draws identical garments.
        assert clone.garment_config(1, 0) == dist.garment_config(1, 0)

    def test_to_dict_is_json_safe(self):
        import json

        raw = FLEET_PRESETS["default"].to_dict()
        assert json.loads(json.dumps(raw)) == raw
