"""Unit tests for GF(2^8) arithmetic (repro.aes.gf)."""

import pytest

from repro.aes.gf import gf_dot, gf_inverse, gf_mul, gf_pow, xtime


class TestXtime:
    def test_doubles_small_values(self):
        assert xtime(0x01) == 0x02
        assert xtime(0x02) == 0x04
        assert xtime(0x40) == 0x80

    def test_reduces_on_overflow(self):
        # FIPS-197 Sec 4.2.1 worked example: xtime(0x80) = 0x1B.
        assert xtime(0x80) == 0x1B

    def test_fips_example_chain(self):
        # {57} * {02} chain from FIPS-197 Sec 4.2.
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47
        assert xtime(0x47) == 0x8E
        assert xtime(0x8E) == 0x07

    def test_result_always_a_byte(self):
        for value in range(256):
            assert 0 <= xtime(value) <= 0xFF


class TestMul:
    def test_fips_worked_example(self):
        # FIPS-197 Sec 4.2: {57} x {13} = {fe}.
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_multiplication_by_zero(self):
        for value in (0x00, 0x01, 0x53, 0xFF):
            assert gf_mul(value, 0) == 0
            assert gf_mul(0, value) == 0

    def test_multiplication_by_one_is_identity(self):
        for value in range(256):
            assert gf_mul(value, 1) == value

    def test_commutativity_exhaustive_sample(self):
        for a in range(0, 256, 17):
            for b in range(0, 256, 13):
                assert gf_mul(a, b) == gf_mul(b, a)

    def test_distributes_over_xor(self):
        for a, b, c in [(0x57, 0x83, 0x1B), (0xCA, 0x35, 0xF0)]:
            assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestPow:
    def test_zeroth_power_is_one(self):
        assert gf_pow(0x57, 0) == 1

    def test_first_power_is_identity(self):
        assert gf_pow(0x57, 1) == 0x57

    def test_square_matches_mul(self):
        for value in (0x02, 0x57, 0xCA):
            assert gf_pow(value, 2) == gf_mul(value, value)

    def test_order_of_multiplicative_group(self):
        # Every non-zero element satisfies a^255 == 1.
        for value in (0x01, 0x02, 0x03, 0x57, 0xFF):
            assert gf_pow(value, 255) == 1

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            gf_pow(0x02, -1)


class TestInverse:
    def test_zero_maps_to_zero(self):
        assert gf_inverse(0) == 0

    def test_inverse_of_one(self):
        assert gf_inverse(1) == 1

    def test_all_nonzero_elements_invert(self):
        for value in range(1, 256):
            assert gf_mul(value, gf_inverse(value)) == 1

    def test_inverse_is_involution(self):
        for value in range(256):
            assert gf_inverse(gf_inverse(value)) == value


class TestDot:
    def test_matches_manual_expansion(self):
        coeffs = (0x02, 0x03, 0x01, 0x01)
        values = (0xD4, 0xBF, 0x5D, 0x30)
        # First MixColumns output byte of the FIPS-197 Appendix B round 1.
        expected = (
            gf_mul(0x02, 0xD4)
            ^ gf_mul(0x03, 0xBF)
            ^ gf_mul(0x01, 0x5D)
            ^ gf_mul(0x01, 0x30)
        )
        assert gf_dot(coeffs, values) == expected == 0x04

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gf_dot((1, 2), (1, 2, 3))
