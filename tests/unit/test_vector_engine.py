"""Unit tests for the vectorised engine's internal machinery.

The cross-engine property suite pins the *observable* agreements
(jobs, conservation, event counts); these tests reach into the
engine itself: the node facade, the deferred draw buckets, the
upload-vector cache and the finalisation-time conservation check.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import build_engine, make_config
from repro.errors import DeadNodeError, SimulationError
from repro.sim.vector_engine import VectorEngine, VectorNode


def vector_config(**kwargs):
    kwargs.setdefault("engine", "vector")
    kwargs.setdefault("max_jobs", 5)
    kwargs.setdefault("seed", 11)
    return make_config(**kwargs)


class TestRunBehaviour:
    def test_smoke_run_completes_the_job_budget(self):
        engine = build_engine(vector_config())
        assert isinstance(engine, VectorEngine)
        summary = engine.run().summary()
        assert summary["jobs_completed"] == 5
        assert summary["death_cause"] == "job-budget"
        assert summary["verification_failures"] == 0

    @pytest.mark.parametrize("battery", ["ideal", "thin-film"])
    def test_matches_sequential_jobs_on_a_budget(self, battery):
        results = {}
        for engine_name in ("sequential", "vector"):
            config = vector_config(engine=engine_name, battery=battery)
            results[engine_name] = build_engine(config).run().summary()
        assert (
            results["vector"]["jobs_completed"]
            == results["sequential"]["jobs_completed"]
        )

    def test_ledger_merge_is_idempotent(self):
        engine = build_engine(vector_config())
        engine.run()
        booked = engine.ledger.node_total_pj
        engine._merge_ledger()  # _finalize already merged once
        assert engine.ledger.node_total_pj == booked

    def test_conservation_check_trips_on_a_cooked_ledger(self):
        engine = build_engine(vector_config())
        engine.run()
        engine._assert_conservation()  # closes on an honest run
        engine.ledger.data_tx_pj += 123.0
        with pytest.raises(SimulationError, match="conservation"):
            engine._assert_conservation()


class TestDeferredDraws:
    def test_buckets_empty_after_every_flush(self):
        engine = build_engine(vector_config())
        engine.run()
        assert not engine._hop_senders
        assert not engine._hop_energies
        assert not engine._compute_nodes
        assert not engine._compute_energies

    def test_upload_vector_cache_drops_on_death(self):
        engine = build_engine(vector_config())
        engine._flush_buckets(upload=True)
        assert engine._upload_vectors is not None
        victim = 5
        engine.bank.alive[victim] = False
        engine.on_node_death(victim)
        assert engine._upload_vectors is None
        engine._flush_buckets(upload=True)
        upload_req, upload_dur = engine._upload_vectors
        assert upload_req[victim] == 0.0
        assert upload_dur[victim] == 0.0
        survivors = np.flatnonzero(upload_req)
        assert victim not in survivors
        assert len(survivors) > 0

    def test_fault_killed_nodes_pay_no_upload(self):
        engine = build_engine(vector_config())
        victim = 7
        engine.nodes[victim].fail()
        engine.on_node_death(victim)
        engine._flush_buckets(upload=True)
        upload_req, _ = engine._upload_vectors
        assert upload_req[victim] == 0.0


class TestVectorNode:
    def test_facade_tracks_the_shared_arrays(self):
        engine = build_engine(vector_config())
        node = engine.nodes[3]
        assert isinstance(node, VectorNode)
        assert node.alive and not node.fault_killed
        engine.bank.alive[3] = False
        assert not node.alive
        engine.bank.alive[3] = True
        node.fail()
        assert node.fault_killed and not node.alive

    def test_dead_facade_rejects_draws(self):
        engine = build_engine(vector_config())
        node = engine.nodes[3]
        node.fail()
        with pytest.raises(DeadNodeError):
            node.draw(10.0, 16.0)

    def test_source_keeps_its_infinite_supply_node(self):
        engine = build_engine(vector_config())
        assert not isinstance(engine.nodes[engine.source], VectorNode)
        assert engine.nodes[engine.source].has_infinite_supply
