"""The CI bench-regression guard must tolerate fleet-shaped documents."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "scripts"
    / "check_bench_regression.py"
)


@pytest.fixture(scope="module")
def guard():
    spec = importlib.util.spec_from_file_location("bench_guard", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write(tmp_path, name: str, document: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(document), encoding="utf-8")
    return str(path)


BENCH_RECORDS = {
    "fig7": [
        {"label": "4x4/ear", "elapsed_s": 0.5},
        {"label": "4x4/sdr"},  # cached: no timing
    ],
}


class TestLoadPoints:
    def test_flattens_scenario_records(self, guard, tmp_path):
        path = write(tmp_path, "bench.json", BENCH_RECORDS)
        assert guard.load_points(path) == {"fig7/4x4/ear": 0.5}

    def test_skips_fleet_bundle_keys(self, guard, tmp_path):
        document = {
            **BENCH_RECORDS,
            # A fleet bundle merged into the same document: a dict, not
            # a list of labelled records.
            "fleet_smoke": {
                "schema": 1,
                "aggregate": {"count": 1000},
                "run": {"elapsed_s": 42.0},
            },
            # And a record list with aggregate-shaped entries.
            "fleet_points": [{"aggregate": {"count": 4}}, "not-a-dict"],
        }
        path = write(tmp_path, "mixed.json", document)
        assert guard.load_points(path) == {"fig7/4x4/ear": 0.5}

    def test_guard_passes_on_mixed_documents(self, guard, tmp_path):
        document = {
            **BENCH_RECORDS,
            "fleet_smoke": {"schema": 1, "aggregate": {"count": 10}},
        }
        baseline = write(tmp_path, "baseline.json", document)
        fresh = write(tmp_path, "fresh.json", document)
        assert guard.main([baseline, fresh]) == 0

    def test_guard_still_fails_on_regression(self, guard, tmp_path):
        baseline = write(tmp_path, "baseline.json", BENCH_RECORDS)
        slower = {
            "fig7": [{"label": "4x4/ear", "elapsed_s": 5.0}],
            "fleet_smoke": {"schema": 1},
        }
        fresh = write(tmp_path, "fresh.json", slower)
        assert guard.main([baseline, fresh]) == 1


class TestMissingSections:
    """A silently dropped scenario section must fail, not pass."""

    def test_load_document_returns_sections(self, guard, tmp_path):
        document = {
            **BENCH_RECORDS,
            "all_cached": [{"label": "4x4/ear"}],
            "fleet_smoke": {"schema": 1},
        }
        path = write(tmp_path, "bench.json", document)
        points, sections = guard.load_document(path)
        assert points == {"fig7/4x4/ear": 0.5}
        # Dict-shaped keys are not scenario sections; record lists are,
        # even when every point was served from the cache.
        assert sections == {"fig7", "all_cached"}

    def test_fresh_missing_baseline_section_is_fatal(
        self, guard, tmp_path, capsys
    ):
        baseline = write(
            tmp_path,
            "baseline.json",
            {
                **BENCH_RECORDS,
                "engine-speed": [
                    {"label": "4x4/vector", "elapsed_s": 0.4}
                ],
            },
        )
        fresh = write(tmp_path, "fresh.json", BENCH_RECORDS)
        assert guard.main([baseline, fresh]) == 2
        out = capsys.readouterr().out
        assert "missing scenario section(s)" in out
        assert "engine-speed" in out

    def test_fresh_only_section_is_informational(self, guard, tmp_path):
        baseline = write(tmp_path, "baseline.json", BENCH_RECORDS)
        fresh = write(
            tmp_path,
            "fresh.json",
            {
                **BENCH_RECORDS,
                "brand-new": [{"label": "4x4/x", "elapsed_s": 0.3}],
            },
        )
        assert guard.main([baseline, fresh]) == 0

    def test_empty_fresh_document_is_fatal(self, guard, tmp_path):
        baseline = write(tmp_path, "baseline.json", BENCH_RECORDS)
        fresh = write(tmp_path, "fresh.json", {"fleet_smoke": {"a": 1}})
        assert guard.main([baseline, fresh]) == 2


class TestSectionThresholds:
    """Noisy sections carry their own tolerance entry."""

    def test_fleet_shard_section_has_a_tolerance_entry(self, guard):
        assert "fleet-shard" in guard.SECTION_THRESHOLDS
        assert guard.SECTION_THRESHOLDS["fleet-shard"] > 1.25

    def test_threshold_for_falls_back_to_the_default(self, guard):
        assert guard.threshold_for("fig7/4x4/ear", 1.25) == 1.25
        assert (
            guard.threshold_for("fleet-shard/2way", 1.25)
            == guard.SECTION_THRESHOLDS["fleet-shard"]
        )

    # Two unchanged simulation points pin the machine-normalisation
    # median at 1.0, so the fleet-shard delta is judged raw.
    STABLE = {
        **BENCH_RECORDS,
        "engine-speed": [{"label": "4x4/vector", "elapsed_s": 0.4}],
    }

    def test_fleet_shard_points_use_the_looser_limit(
        self, guard, tmp_path
    ):
        baseline = write(
            tmp_path,
            "baseline.json",
            {
                **self.STABLE,
                "fleet-shard": [{"label": "2way", "elapsed_s": 1.0}],
            },
        )
        # +40%: beyond the default 1.25 limit but inside the
        # fleet-shard section's 1.50 tolerance.
        fresh = write(
            tmp_path,
            "fresh.json",
            {
                **self.STABLE,
                "fleet-shard": [{"label": "2way", "elapsed_s": 1.4}],
            },
        )
        assert guard.main([baseline, fresh]) == 0

    def test_fleet_shard_points_still_fail_beyond_their_limit(
        self, guard, tmp_path
    ):
        baseline = write(
            tmp_path,
            "baseline.json",
            {
                **self.STABLE,
                "fleet-shard": [{"label": "2way", "elapsed_s": 1.0}],
            },
        )
        fresh = write(
            tmp_path,
            "fresh.json",
            {
                **self.STABLE,
                "fleet-shard": [{"label": "2way", "elapsed_s": 2.0}],
            },
        )
        assert guard.main([baseline, fresh]) == 1
