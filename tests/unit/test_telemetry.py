"""Unit tests for the telemetry layer: recorders, trace IO, console."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.telemetry import (
    NULL_RECORDER,
    Heartbeat,
    NullRecorder,
    Recorder,
    TraceRecorder,
    TraceWriter,
    dump_trace,
    load_trace,
    setup_logging,
    strip_timings,
)
from repro.telemetry.console import LOGGER_NAME, get_logger


class TestNullRecorder:
    def test_is_the_shared_singleton(self):
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert NULL_RECORDER.active is False
        assert NULL_RECORDER.times is False

    def test_satisfies_the_protocol(self):
        assert isinstance(NULL_RECORDER, Recorder)
        assert isinstance(TraceRecorder(), Recorder)

    def test_hooks_are_no_ops(self):
        NULL_RECORDER.frame(0, alive=16)
        NULL_RECORDER.event("replan", frame=3, cause=["bootstrap"])
        NULL_RECORDER.timing("frame-step", 0.001)
        # Stateless by construction: no __dict__ to accumulate into.
        assert not hasattr(NULL_RECORDER, "__dict__")


class TestTraceRecorder:
    def test_frame_probes_and_events_arrive_in_order(self):
        recorder = TraceRecorder()
        recorder.frame(0, alive=16, jobs=0)
        recorder.event("replan", frame=0, cause=["bootstrap"])
        recorder.frame(1, alive=16, jobs=1)
        kinds = [line["kind"] for line in recorder.lines()]
        assert kinds == ["frame", "event", "frame"]
        assert recorder.lines()[1]["event"] == "replan"

    def test_meta_header_leads_and_carries_the_schema(self):
        recorder = TraceRecorder()
        recorder.frame(0, alive=4)
        lines = recorder.lines(meta={"command": "simulate"})
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == 1
        assert lines[0]["command"] == "simulate"

    def test_frame_stride_subsamples_probes(self):
        recorder = TraceRecorder(frame_stride=3)
        for frame in range(7):
            recorder.frame(frame, alive=4)
        frames = [
            line["frame"]
            for line in recorder.lines()
            if line["kind"] == "frame"
        ]
        assert frames == [0, 3, 6]

    def test_frame_stride_must_be_positive(self):
        with pytest.raises(ValueError, match="frame_stride"):
            TraceRecorder(frame_stride=0)

    def test_level_snapshots_are_deduplicated(self):
        recorder = TraceRecorder(frame_stride=10)
        levels_a = {(0, 1): 2, (1, 2): 0}
        recorder.frame(0, alive=4, load_levels=levels_a)
        recorder.frame(1, alive=4, load_levels=dict(levels_a))
        recorder.frame(2, alive=4, load_levels={(0, 1): 3, (1, 2): 0})
        level_lines = [
            line for line in recorder.lines() if line["kind"] == "levels"
        ]
        # Frame 1 repeated frame 0's snapshot: only the crossings land.
        assert [line["frame"] for line in level_lines] == [0, 2]
        assert level_lines[0]["metric"] == "load"
        assert level_lines[0]["levels"] == {"0-1": 2, "1-2": 0}

    def test_level_crossings_ignore_the_frame_stride(self):
        recorder = TraceRecorder(frame_stride=100)
        recorder.frame(1, alive=4, wear_levels={(0, 1): 1})
        recorder.frame(2, alive=4, wear_levels={(0, 1): 2})
        kinds = [line["kind"] for line in recorder.lines()]
        # Both crossings recorded; neither frame probe sampled.
        assert kinds == ["levels", "levels"]

    def test_timers_aggregate_per_name(self):
        recorder = TraceRecorder()
        recorder.timing("frame-step", 0.002)
        recorder.timing("frame-step", 0.004)
        recorder.timing("plan-compute", 0.010)
        stats = recorder.timer_stats()
        assert stats["frame-step"]["count"] == 2
        assert stats["frame-step"]["total_s"] == pytest.approx(0.006)
        assert stats["frame-step"]["min_s"] == pytest.approx(0.002)
        assert stats["frame-step"]["max_s"] == pytest.approx(0.004)
        assert list(stats) == ["frame-step", "plan-compute"]

    def test_timers_trail_as_one_line(self):
        recorder = TraceRecorder()
        recorder.frame(0, alive=4)
        recorder.timing("frame-step", 0.001)
        lines = recorder.lines()
        assert lines[-1]["kind"] == "timers"
        assert sum(1 for li in lines if li["kind"] == "timers") == 1

    def test_capture_timings_false_drops_the_channel(self):
        recorder = TraceRecorder(capture_timings=False)
        assert recorder.times is False
        recorder.frame(0, alive=4)
        assert all(li["kind"] != "timers" for li in recorder.lines())

    def test_deterministic_lines_strip_the_wallclock_channel(self):
        recorder = TraceRecorder()
        recorder.frame(0, alive=4)
        recorder.event("run-end", frame=9, cause="death", elapsed_s=1.25)
        recorder.timing("frame-step", 0.001)
        deterministic = recorder.deterministic_lines()
        assert all(li["kind"] != "timers" for li in deterministic)
        assert all("elapsed_s" not in li for li in deterministic)
        # The original trace still carries both.
        assert recorder.lines()[-1]["kind"] == "timers"
        assert recorder.events[-1]["elapsed_s"] == 1.25


class TestStripTimings:
    def test_does_not_mutate_the_input(self):
        lines = [
            {"kind": "frame", "frame": 0, "elapsed_s": 0.5},
            {"kind": "timers", "timers": {}},
        ]
        stripped = strip_timings(lines)
        assert stripped == [{"kind": "frame", "frame": 0}]
        assert lines[0]["elapsed_s"] == 0.5


class TestTraceIo:
    def test_dump_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            {"kind": "meta", "schema": 1},
            {"kind": "frame", "frame": 0, "soc": [0.9, 1.0, 1.0]},
        ]
        assert dump_trace(path, lines) == 2
        assert load_trace(path) == lines

    def test_dumped_lines_have_sorted_keys(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_trace(path, [{"zeta": 1, "alpha": 2, "kind": "frame"}])
        raw = path.read_text(encoding="utf-8").strip()
        assert raw == '{"alpha": 2, "kind": "frame", "zeta": 1}'

    def test_writer_tags_every_line(self, tmp_path):
        path = tmp_path / "multi.jsonl"
        with TraceWriter(path) as writer:
            writer.add(
                [{"kind": "frame", "frame": 0}],
                scenario="fig7",
                point="4x4/ear",
            )
            writer.add([{"kind": "frame", "frame": 0}], point="4x4/sdr")
        lines = load_trace(path)
        assert lines[0]["scenario"] == "fig7"
        assert lines[0]["point"] == "4x4/ear"
        assert lines[1]["point"] == "4x4/sdr"
        assert writer.lines_written == 2
        assert writer.points_written == 2

    def test_writer_add_none_is_a_no_op(self, tmp_path):
        # Cache hits carry no trace: the hook passes None through.
        path = tmp_path / "multi.jsonl"
        with TraceWriter(path) as writer:
            assert writer.add(None, point="cached") == 0
        assert writer.points_written == 0
        assert load_trace(path) == []

    def test_line_tags_never_mask_trace_keys(self, tmp_path):
        path = tmp_path / "multi.jsonl"
        with TraceWriter(path) as writer:
            writer.add([{"kind": "frame", "point": "inner"}], point="outer")
        # The trace's own key wins over the writer tag.
        assert load_trace(path)[0]["point"] == "inner"


class TestSetupLogging:
    def teardown_method(self):
        # Leave the package logger pristine for other tests.
        logger = logging.getLogger(LOGGER_NAME)
        logger.handlers.clear()
        logger.setLevel(logging.NOTSET)

    def test_levels_follow_the_flags(self):
        assert setup_logging().level == logging.INFO
        assert setup_logging(verbose=True).level == logging.DEBUG
        assert setup_logging(quiet=True).level == logging.WARNING

    def test_repeated_calls_do_not_stack_handlers(self):
        for _ in range(3):
            logger = setup_logging()
        assert len(logger.handlers) == 1
        assert logger.propagate is False

    def test_messages_reach_the_given_stream(self):
        stream = io.StringIO()
        setup_logging(stream=stream)
        get_logger("cli").info("42 points in 1.0s")
        assert stream.getvalue() == "42 points in 1.0s\n"

    def test_quiet_suppresses_progress(self):
        stream = io.StringIO()
        setup_logging(quiet=True, stream=stream)
        get_logger().info("progress line")
        get_logger().warning("warning line")
        assert stream.getvalue() == "warning line\n"


class TestHeartbeat:
    def make(self, clock, **kwargs):
        logger = logging.getLogger("repro-heartbeat-test")
        logger.handlers.clear()
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        beat = Heartbeat(logger=logger, clock=clock, **kwargs)
        return beat, stream

    def test_rate_limited_to_the_interval(self):
        now = [0.0]
        beat, stream = self.make(
            lambda: now[0], total=100, min_interval_s=1.0
        )
        beat(None, 1, 100)  # first emit is free
        for done in range(2, 10):
            now[0] += 0.01  # well inside the interval
            beat(None, done, 100)
        assert len(stream.getvalue().splitlines()) == 1

    def test_final_line_always_emits(self):
        now = [0.0]
        beat, stream = self.make(
            lambda: now[0], total=3, min_interval_s=60.0
        )
        beat(None, 1, 3)
        beat(None, 2, 3)
        beat(None, 3, 3)  # done == total forces the final emit
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "3/3 (100.0%)" in lines[-1]

    def test_line_reports_rate_and_eta(self):
        now = [0.0]
        beat, _ = self.make(lambda: now[0], total=10, label="garments")
        now[0] = 2.0
        beat(None, 4, 10)
        line = beat.line()
        assert line.startswith("garments 4/10 (40.0%)")
        assert "2.0/s" in line
        assert "ETA 3s" in line

    def test_tick_counts_without_a_total(self):
        now = [0.0]
        beat, _ = self.make(lambda: now[0])
        beat.tick()
        beat.tick()
        now[0] = 1.0
        assert beat.line() == "points 2 — 2.0/s"

    def test_eta_formatting_scales_units(self):
        from repro.telemetry.console import _fmt_eta

        assert _fmt_eta(42.0) == "42s"
        assert _fmt_eta(150.0) == "2.5m"
        assert _fmt_eta(7200.0) == "2.0h"

    def test_rate_forgets_an_initial_cache_burst(self):
        # A warm-cache fleet serves its first 1000 garments instantly,
        # then settles to 1/s.  A cumulative rate would keep promising
        # ~500/s and an absurd ETA; the sliding window must converge to
        # the post-burst rate instead.
        now = [0.0]
        beat, _ = self.make(
            lambda: now[0], total=2000, window_s=10.0
        )
        now[0] = 0.001
        beat(None, 1000, 2000)  # the burst
        for step in range(1, 31):  # 30s of 1/s steady state
            now[0] = 0.001 + step
            beat(None, 1000 + step, 2000)
        rate = beat.rate()
        assert rate < 5.0, f"burst still dominates: {rate}/s"
        assert rate == pytest.approx(1.0, rel=0.35)
        # And the ETA derived from it is in the right decade: ~970
        # garments left at ~1/s, nowhere near the ~2s a cumulative
        # rate would have promised.
        assert "ETA" in beat.line()
        assert "h" not in beat.line() or "m" in beat.line()

    def test_rate_falls_back_to_cumulative_before_the_window_fills(self):
        now = [0.0]
        beat, _ = self.make(lambda: now[0], total=10)
        now[0] = 2.0
        beat(None, 4, 10)
        assert beat.rate() == pytest.approx(2.0)

    def test_finish_emits_exactly_one_terminal_line(self):
        now = [0.0]
        beat, stream = self.make(
            lambda: now[0], total=5, min_interval_s=60.0
        )
        beat(None, 1, 5)  # first emit is free
        now[0] = 0.5
        beat(None, 4, 5)  # swallowed by the rate limiter
        assert len(stream.getvalue().splitlines()) == 1
        beat.finish()  # the guaranteed terminal line
        beat.finish()  # idempotent
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "4/5" in lines[-1]

    def test_final_callback_and_finish_do_not_double_emit(self):
        now = [0.0]
        beat, stream = self.make(
            lambda: now[0], total=2, min_interval_s=60.0
        )
        beat(None, 1, 2)
        beat(None, 2, 2)  # done == total emits the terminal line
        beat.finish()  # the CLI's finally must not add another
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "2/2 (100.0%)" in lines[-1]


class TestTraceLinesAreJsonSafe:
    def test_recorder_lines_serialise(self):
        recorder = TraceRecorder()
        recorder.frame(
            0, alive=16, soc=[0.1, 0.5, 0.9], load_levels={(0, 1): 2}
        )
        recorder.event("fault", frame=3, kind="link-cut", link=[0, 1])
        recorder.timing("plan-compute", 0.003)
        for line in recorder.lines(meta={"command": "test"}):
            json.dumps(line, sort_keys=True)
