"""Unit tests for the full cipher and key expansion."""

import pytest

from repro.aes.cipher import decrypt_block, encrypt_block, expand_key
from repro.aes.key_expansion import (
    expand_key_words,
    round_keys,
    rounds_for_key,
)
from repro.aes.vectors import (
    KEY_EXPANSION_EXAMPLE_KEY,
    KEY_EXPANSION_EXAMPLE_WORDS,
    KNOWN_ANSWER_VECTORS,
)


class TestKeyExpansion:
    def test_rounds_for_key_sizes(self):
        assert rounds_for_key(bytes(16)) == 10
        assert rounds_for_key(bytes(24)) == 12
        assert rounds_for_key(bytes(32)) == 14

    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError):
            rounds_for_key(bytes(15))
        with pytest.raises(ValueError):
            round_keys(bytes(17))

    def test_fips_appendix_a1_words(self):
        words = expand_key_words(KEY_EXPANSION_EXAMPLE_KEY)
        for index, expected_hex in KEY_EXPANSION_EXAMPLE_WORDS.items():
            actual = "".join(f"{b:02x}" for b in words[index])
            assert actual == expected_hex, f"w[{index}]"

    def test_round_key_count(self):
        assert len(round_keys(bytes(16))) == 11
        assert len(round_keys(bytes(24))) == 13
        assert len(round_keys(bytes(32))) == 15

    def test_round_key_zero_is_the_key_itself(self):
        key = KEY_EXPANSION_EXAMPLE_KEY
        assert round_keys(key)[0] == key

    def test_expand_key_alias(self):
        assert expand_key(bytes(16)) == round_keys(bytes(16))


class TestCipherKnownAnswers:
    @pytest.mark.parametrize(
        "vector", KNOWN_ANSWER_VECTORS, ids=lambda v: v.name
    )
    def test_encrypt(self, vector):
        assert encrypt_block(vector.plaintext, vector.key) == vector.ciphertext

    @pytest.mark.parametrize(
        "vector", KNOWN_ANSWER_VECTORS, ids=lambda v: v.name
    )
    def test_decrypt(self, vector):
        assert decrypt_block(vector.ciphertext, vector.key) == vector.plaintext


class TestCipherErrors:
    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            encrypt_block(bytes(15), bytes(16))

    def test_wrong_key_size_rejected(self):
        with pytest.raises(ValueError):
            encrypt_block(bytes(16), bytes(20))

    def test_encryption_changes_data(self):
        assert encrypt_block(bytes(16), bytes(16)) != bytes(16)
