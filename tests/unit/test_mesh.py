"""Unit tests for topology, geometry, mapping and connectivity."""

import numpy as np
import pytest

from repro.errors import MappingError, TopologyError
from repro.mesh.connectivity import (
    articulation_points,
    dead_modules,
    reachable_set,
    system_is_alive,
)
from repro.mesh.geometry import (
    manhattan_distance,
    node_coordinates,
    node_id,
    parity,
)
from repro.mesh.mapping import (
    ModuleMapping,
    checkerboard_mapping,
    harvest_proportional_mapping,
    proportional_mapping,
    uniform_mapping,
)
from repro.mesh.topology import Topology, attach_external_node, mesh2d


class TestGeometry:
    def test_node_id_round_trip(self):
        for width in (2, 4, 7):
            for y in range(1, 4):
                for x in range(1, width + 1):
                    node = node_id(x, y, width)
                    assert node_coordinates(node, width) == (x, y)

    def test_row_major_order(self):
        assert node_id(1, 1, 4) == 0
        assert node_id(4, 1, 4) == 3
        assert node_id(1, 2, 4) == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            node_id(5, 1, 4)
        with pytest.raises(TopologyError):
            node_id(0, 1, 4)

    def test_manhattan_distance(self):
        assert manhattan_distance((1, 1), (4, 4)) == 6
        assert manhattan_distance((2, 3), (2, 3)) == 0

    def test_parity(self):
        assert parity(1) == 1 and parity(2) == 0


class TestMesh2d:
    def test_node_and_edge_counts(self):
        topo = mesh2d(4)
        assert topo.num_nodes == 16
        assert topo.num_undirected_edges() == 2 * 4 * 3  # 24 for 4x4

    def test_rectangular_mesh(self):
        topo = mesh2d(3, 5)
        assert topo.num_nodes == 15
        assert topo.mesh_width == 3 and topo.mesh_height == 5

    def test_neighbor_structure(self):
        topo = mesh2d(4)
        corner = node_id(1, 1, 4)
        assert len(topo.neighbors(corner)) == 2
        center = node_id(2, 2, 4)
        assert len(topo.neighbors(center)) == 4

    def test_edge_lengths_are_the_pitch(self):
        topo = mesh2d(4, link_pitch_cm=3.0)
        assert topo.edge_length(0, 1) == 3.0

    def test_length_matrix_conventions(self):
        matrix = mesh2d(3).length_matrix()
        assert matrix.shape == (9, 9)
        assert np.all(np.diag(matrix) == 0.0)
        assert np.isinf(matrix[0, 8])  # non-adjacent
        assert np.isfinite(matrix[0, 1])

    def test_coordinates_require_mesh(self):
        topo = Topology(3)
        with pytest.raises(TopologyError):
            topo.coordinates(0)

    def test_to_networkx(self):
        graph = mesh2d(3).to_networkx()
        assert graph.number_of_nodes() == 9
        assert graph.has_edge(0, 1)
        assert graph[0][1]["length"] > 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(TopologyError):
            mesh2d(0)


class TestTopologyEdits:
    def test_add_edge_validation(self):
        topo = Topology(3)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 0, 1.0)  # self loop
        with pytest.raises(TopologyError):
            topo.add_edge(0, 5, 1.0)  # unknown node

    def test_directed_edge(self):
        topo = Topology(2)
        topo.add_edge(0, 1, 1.0, bidirectional=False)
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(1, 0)

    def test_attach_external_node(self):
        topo = mesh2d(4)
        external = attach_external_node(topo, 0, 10.0)
        assert external == 16
        assert topo.has_edge(external, 0)
        assert topo.edge_length(external, 0) == 10.0


class TestGeometryLookups:
    def test_mesh_node_position_from_coordinates(self):
        topo = mesh2d(4)
        assert topo.node_position(0) == (1.0, 1.0)
        assert topo.node_position(5) == (2.0, 2.0)

    def test_edge_midpoint_on_mesh(self):
        topo = mesh2d(4)
        assert topo.edge_midpoint(0, 1) == (1.5, 1.0)
        assert topo.edge_midpoint(0, 4) == (1.0, 1.5)

    def test_position_unknown_without_geometry(self):
        topo = Topology(3)
        topo.add_edge(0, 1, 1.0)
        assert topo.node_position(0) is None
        assert topo.edge_midpoint(0, 1) is None

    def test_explicit_positions_win(self):
        topo = Topology(2)
        topo.add_edge(0, 1, 1.0)
        topo.positions[0] = (0.0, 0.0)
        topo.positions[1] = (2.0, 2.0)
        assert topo.edge_midpoint(0, 1) == (1.0, 1.0)


class TestCheckerboardMapping:
    def test_paper_rule_on_4x4(self, mesh4):
        mapping = checkerboard_mapping(mesh4)
        # Paper Sec 5.2: module 1 on odd/odd, module 2 on even/even,
        # module 3 elsewhere.
        assert mapping.module_of(node_id(1, 1, 4)) == 1
        assert mapping.module_of(node_id(3, 3, 4)) == 1
        assert mapping.module_of(node_id(2, 2, 4)) == 2
        assert mapping.module_of(node_id(4, 4, 4)) == 2
        assert mapping.module_of(node_id(2, 1, 4)) == 3
        assert mapping.module_of(node_id(1, 2, 4)) == 3

    def test_counts_on_4x4(self, mapping4):
        assert mapping4.duplicate_counts() == {1: 4, 2: 4, 3: 8}

    def test_module3_has_most_duplicates_every_size(self):
        # Theorem 1: module 3 has the highest H_i, hence most duplicates.
        for width in (4, 5, 6, 7, 8):
            mapping = checkerboard_mapping(mesh2d(width))
            counts = mapping.duplicate_counts()
            assert counts[3] == max(counts.values())

    def test_requires_mesh_topology(self):
        with pytest.raises(MappingError):
            checkerboard_mapping(Topology(4))

    def test_restricted_node_set(self):
        topo = mesh2d(4)
        attach_external_node(topo, 0, 10.0)
        mapping = checkerboard_mapping(topo, nodes=range(16))
        assert mapping.module_of(16) is None


class TestProportionalMapping:
    def test_counts_follow_theorem1(self):
        topo = mesh2d(4)
        energies = {1: 2367.9, 2: 1710.3, 3: 3225.7}
        mapping = proportional_mapping(topo, energies)
        counts = mapping.duplicate_counts()
        assert sum(counts.values()) == 16
        # Theorem-1 reals are (5.19, 3.75, 7.07); integer allocation
        # must round to (5, 4, 7).
        assert counts == {1: 5, 2: 4, 3: 7}

    def test_every_module_present(self):
        topo = mesh2d(3)
        mapping = proportional_mapping(topo, {1: 1.0, 2: 1000.0, 3: 1.0})
        counts = mapping.duplicate_counts()
        assert all(counts[m] >= 1 for m in (1, 2, 3))

    def test_too_few_nodes_rejected(self):
        topo = Topology(2)
        with pytest.raises(MappingError):
            proportional_mapping(topo, {1: 1.0, 2: 1.0, 3: 1.0})


class TestUniformMapping:
    def test_balanced_counts(self):
        mapping = uniform_mapping(mesh2d(3), num_modules=3)
        assert mapping.duplicate_counts() == {1: 3, 2: 3, 3: 3}


class TestHarvestProportionalMapping:
    ENERGIES = {1: 2367.9, 2: 1710.3, 3: 3225.7}

    def test_zero_income_equals_proportional(self):
        topo = mesh2d(4)
        aware = harvest_proportional_mapping(
            topo, self.ENERGIES, [0.0] * 16
        )
        assert aware == proportional_mapping(topo, self.ENERGIES)

    def test_income_moves_placement(self):
        topo = mesh2d(4)
        income = [30.0 if node % 4 == 0 else 0.0 for node in range(16)]
        aware = harvest_proportional_mapping(topo, self.ENERGIES, income)
        assert aware != proportional_mapping(topo, self.ENERGIES)
        counts = aware.duplicate_counts()
        assert sum(counts.values()) == 16
        assert all(count >= 1 for count in counts.values())

    def test_rejects_bad_bias(self):
        with pytest.raises(MappingError):
            harvest_proportional_mapping(
                mesh2d(4), self.ENERGIES, [0.0] * 16, income_bias=1.5
            )

    def test_accepts_mapping_style_income(self):
        topo = mesh2d(3)
        income = {node: float(node) for node in range(9)}
        mapping = harvest_proportional_mapping(topo, self.ENERGIES, income)
        assert sum(mapping.duplicate_counts().values()) == 9


class TestMappingErrorMessages:
    """The missing-module message names the modules and says why it is
    fatal; each strategy's failure mode surfaces an explicit message."""

    def test_missing_module_message_names_the_modules(self):
        with pytest.raises(
            MappingError,
            match=r"modules \[2\] are not instantiated on any node",
        ):
            ModuleMapping({0: 1, 1: 1}, num_modules=2)

    def test_checkerboard_subset_missing_a_parity_class(self):
        # Only odd/odd and even/even nodes selected: module 3 (mixed
        # parity) is never instantiated.
        topo = mesh2d(4)
        nodes = [node_id(1, 1, 4), node_id(2, 2, 4)]
        with pytest.raises(
            MappingError,
            match=r"modules \[3\] are not instantiated on any node; "
            r"every module needs at least one duplicate",
        ):
            checkerboard_mapping(topo, nodes)

    def test_proportional_too_few_nodes_message(self):
        with pytest.raises(
            MappingError,
            match=r"cannot allocate 2 nodes to 3 modules",
        ):
            proportional_mapping(
                Topology(2), {1: 1.0, 2: 1.0, 3: 1.0}
            )

    def test_uniform_too_few_nodes_message(self):
        with pytest.raises(
            MappingError, match=r"2 nodes cannot host 3 modules"
        ):
            uniform_mapping(Topology(2), num_modules=3)


class TestModuleMapping:
    def test_missing_module_rejected(self):
        with pytest.raises(MappingError):
            ModuleMapping({0: 1, 1: 1}, num_modules=2)

    def test_bad_module_id_rejected(self):
        with pytest.raises(MappingError):
            ModuleMapping({0: 0}, num_modules=1)

    def test_duplicates_sorted(self):
        mapping = ModuleMapping({3: 1, 1: 1, 2: 2}, num_modules=2)
        assert mapping.duplicates(1) == (1, 3)

    def test_equality(self):
        a = ModuleMapping({0: 1, 1: 2}, num_modules=2)
        b = ModuleMapping({0: 1, 1: 2}, num_modules=2)
        assert a == b


class TestConnectivity:
    def test_reachable_set_full_mesh(self, mesh4):
        reachable = reachable_set(mesh4, range(16), 0)
        assert reachable == frozenset(range(16))

    def test_dead_origin_reaches_nothing(self, mesh4):
        assert reachable_set(mesh4, range(1, 16), 0) == frozenset()

    def test_dead_wall_partitions(self):
        topo = mesh2d(4)
        # Kill the entire second column (x=2): left column isolated.
        dead = {node_id(2, y, 4) for y in range(1, 5)}
        alive = set(range(16)) - dead
        reachable = reachable_set(topo, alive, node_id(1, 1, 4))
        assert reachable == {node_id(1, y, 4) for y in range(1, 5)}

    def test_system_alive_full(self, mesh4, mapping4):
        assert system_is_alive(mesh4, range(16), mapping4, 0)

    def test_system_dies_when_module_exhausted(self, mesh4, mapping4):
        alive = set(range(16)) - set(mapping4.duplicates(2))
        assert not system_is_alive(mesh4, alive, mapping4, 0)
        assert dead_modules(mesh4, alive, mapping4, 0) == (2,)

    def test_system_dies_when_partitioned_from_module(self, mesh4, mapping4):
        # Kill the two neighbours of corner (1,1): the corner is cut off.
        dead = {node_id(2, 1, 4), node_id(1, 2, 4)}
        alive = set(range(16)) - dead
        origin = node_id(1, 1, 4)
        assert not system_is_alive(mesh4, alive, mapping4, origin)

    def test_articulation_points_line(self):
        topo = Topology(3)
        topo.add_edge(0, 1, 1.0)
        topo.add_edge(1, 2, 1.0)
        assert articulation_points(topo) == frozenset({1})

    def test_articulation_points_full_mesh_has_none(self):
        assert articulation_points(mesh2d(3)) == frozenset()

    def test_articulation_respects_dead_nodes(self):
        topo = mesh2d(3)
        # Kill the centre: corners connect through edge nodes; killing
        # (2,1) too makes (3,1)... compute on the live subgraph.
        alive = set(range(9)) - {node_id(2, 2, 3)}
        points = articulation_points(topo, alive)
        # The ring of 8 nodes around a dead centre has no articulation.
        assert points == frozenset()
