"""Unit tests for the cost pipeline, congestion tracking and ECMP.

Covers the pieces the routing refactor introduced: the composable
``CostPipeline`` and its terms, the ``CongestionWeightFunction`` /
penalty application, the shared ``LinkLevelStore``, the per-link EMA
``CongestionRuntime``, and the equal-cost successor machinery
(``equal_cost_successors`` + ``EcmpSelector``).
"""

import numpy as np
import pytest

from helpers import make_view
from repro.core import (
    BatteryTerm,
    CongestionTerm,
    CostPipeline,
    CostTerm,
    EcmpSelector,
    HarvestTerm,
    WearTerm,
    equal_cost_successors,
)
from repro.core.floyd_warshall import floyd_warshall_successors
from repro.core.link_levels import LinkLevelStore
from repro.core.weights import (
    BatteryWeightFunction,
    CongestionWeightFunction,
    HarvestWeightFunction,
    WearWeightFunction,
    apply_congestion_penalty,
    ear_weight_matrix,
    sdr_weight_matrix,
)
from repro.errors import ConfigurationError
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d
from repro.sim.congestion import CongestionRuntime


def build_view(**overrides):
    topo = mesh2d(4)
    return make_view(topo, checkerboard_mapping(topo), **overrides)


class TestCongestionWeightFunction:
    def test_defaults_and_cap(self):
        f = CongestionWeightFunction()
        assert f(0) == 1.0
        assert f(3) == pytest.approx(f.q**3)
        # Levels beyond the cap saturate at the top multiplier.
        assert f(99) == f(f.levels - 1)

    def test_neutral_detection(self):
        assert CongestionWeightFunction(q=1.0).is_neutral
        assert not CongestionWeightFunction().is_neutral

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CongestionWeightFunction(q=0.9)
        with pytest.raises(ConfigurationError):
            CongestionWeightFunction(quantum=0.0)
        with pytest.raises(ConfigurationError):
            CongestionWeightFunction(levels=0)

    def test_table_matches_call(self):
        f = CongestionWeightFunction(q=1.5, levels=4)
        assert np.allclose(f.table(), [f(i) for i in range(4)])


class TestApplyCongestionPenalty:
    def test_scales_loaded_links_only(self):
        view = build_view()
        weights = sdr_weight_matrix(view)
        load = np.zeros((16, 16), dtype=int)
        load[0, 1] = load[1, 0] = 2
        f = CongestionWeightFunction(q=2.0)
        penalised = apply_congestion_penalty(weights.copy(), load, f)
        assert penalised[0, 1] == pytest.approx(weights[0, 1] * 4.0)
        assert penalised[1, 0] == pytest.approx(weights[1, 0] * 4.0)
        mask = np.ones_like(weights, dtype=bool)
        mask[0, 1] = mask[1, 0] = False
        np.fill_diagonal(mask, False)
        assert np.array_equal(penalised[mask], weights[mask])
        assert np.all(np.diag(penalised) == 0.0)


class TestCostPipeline:
    def test_terms_satisfy_protocol(self):
        for term in (
            BatteryTerm(BatteryWeightFunction()),
            WearTerm(WearWeightFunction()),
            HarvestTerm(HarvestWeightFunction()),
            CongestionTerm(CongestionWeightFunction()),
        ):
            assert isinstance(term, CostTerm)

    def test_empty_pipeline_is_sdr(self):
        view = build_view()
        assert np.array_equal(
            CostPipeline().weight_matrix(view), sdr_weight_matrix(view)
        )

    def test_ear_composition_and_lookup(self):
        pipeline = CostPipeline.ear(
            BatteryWeightFunction(),
            wear_function=WearWeightFunction(),
            congestion_function=CongestionWeightFunction(),
        )
        assert [t.name for t in pipeline.terms] == [
            "battery", "wear", "congestion",
        ]
        assert pipeline.term("wear") is pipeline.terms[1]
        assert pipeline.term("harvest") is None
        assert repr(pipeline) == "CostPipeline(battery+wear+congestion)"
        assert repr(CostPipeline()) == "CostPipeline(sdr)"

    def test_terms_gate_on_view_telemetry(self):
        view = build_view()
        assert BatteryTerm(BatteryWeightFunction()).applies(view)
        assert not WearTerm(WearWeightFunction()).applies(view)
        assert not CongestionTerm(CongestionWeightFunction()).applies(view)
        loaded = build_view(
            # make_view has no load kwarg; rebuild with load telemetry.
        )
        loaded = type(loaded)(
            lengths=loaded.lengths,
            alive=loaded.alive,
            battery_levels=loaded.battery_levels,
            levels=loaded.levels,
            mapping=loaded.mapping,
            load=np.zeros((16, 16), dtype=int),
        )
        assert CongestionTerm(CongestionWeightFunction()).applies(loaded)

    def test_battery_only_pipeline_matches_ear(self):
        view = build_view()
        fn = BatteryWeightFunction()
        pipeline = CostPipeline.ear(fn)
        assert np.array_equal(
            pipeline.weight_matrix(view), ear_weight_matrix(view, fn)
        )


class TestLinkLevelStore:
    def test_canonical_ordering(self):
        assert LinkLevelStore.canonical(3, 1) == (1, 3)
        assert LinkLevelStore.canonical(1, 3) == (1, 3)

    def test_dirty_only_on_change(self):
        store = LinkLevelStore()
        assert not store.dirty
        assert store.set_level((0, 1), 2)
        assert store.dirty
        store.dirty = False
        # Same level again: no change, no dirt.
        assert not store.set_level((0, 1), 2)
        assert not store.dirty
        assert store.set_level((0, 1), 3)
        assert store.dirty

    def test_zero_level_clears(self):
        store = LinkLevelStore()
        store.set_level((0, 1), 2)
        store.dirty = False
        assert store.set_level((0, 1), 0)
        assert store.dirty
        assert len(store) == 0
        assert store.level((0, 1)) == 0

    def test_matrix_and_max(self):
        store = LinkLevelStore()
        store.set_level(LinkLevelStore.canonical(2, 0), 4)
        matrix = store.matrix(4)
        assert matrix[0, 2] == 4 and matrix[2, 0] == 4
        assert matrix.sum() == 8
        assert store.max_level() == 4
        store.clear((0, 2))
        assert store.max_level() == 0
        assert len(store) == 0


class TestCongestionRuntime:
    def test_disabled_without_quantum(self):
        runtime = CongestionRuntime(quantum=0.0)
        assert not runtime.tracks_load
        runtime.note_traversal(0, 1)
        runtime.end_frame()
        assert runtime.total_traversals() == 0

    def test_ema_folds_and_levels(self):
        runtime = CongestionRuntime(quantum=1.0, levels=8, alpha=0.5)
        for _ in range(4):
            runtime.note_traversal(0, 1)
        runtime.end_frame()
        # rate = 0 + 0.5 * (4 - 0) = 2.0 -> level 2
        assert runtime.load_dirty
        assert runtime.load_level_matrix(2)[0, 1] == 2
        assert runtime.total_traversals() == 4
        assert runtime.max_link_traversals() == 4

    def test_quiet_links_decay(self):
        runtime = CongestionRuntime(quantum=1.0, levels=8, alpha=0.5)
        for _ in range(8):
            runtime.note_traversal(0, 1)
        runtime.end_frame()
        level0 = runtime.load_level_matrix(2)[0, 1]
        for _ in range(6):
            runtime.end_frame()
        assert runtime.load_level_matrix(2)[0, 1] < level0

    def test_hot_link_share(self):
        runtime = CongestionRuntime(quantum=1.0)
        for _ in range(3):
            runtime.note_traversal(0, 1)
        runtime.note_traversal(1, 2)
        runtime.end_frame()
        assert runtime.hot_link_share() == pytest.approx(0.75)


class TestEqualCostSuccessors:
    def test_uniform_mesh_has_two_way_fan(self):
        view = build_view()
        weights = sdr_weight_matrix(view)
        distances, successors = floyd_warshall_successors(weights)
        # Corner 0 -> opposite corner 15: both neighbours (1 and 4)
        # start minimal paths on a uniform 4x4 mesh.
        group = equal_cost_successors(weights, distances, successors, 0, 15)
        assert group == [1, 4]
        # A straight-line pair has a single minimal successor.
        assert equal_cost_successors(
            weights, distances, successors, 0, 3
        ) == [1]

    def test_unreachable_and_self(self):
        view = build_view()
        weights = sdr_weight_matrix(view)
        weights[:, 5] = np.inf  # nothing enters node 5
        weights[5, 5] = 0.0
        distances, successors = floyd_warshall_successors(weights)
        assert equal_cost_successors(
            weights, distances, successors, 0, 5
        ) == []
        assert equal_cost_successors(
            weights, distances, successors, 3, 3
        ) == []

    def test_members_strictly_progress(self):
        view = build_view()
        weights = sdr_weight_matrix(view)
        distances, successors = floyd_warshall_successors(weights)
        for source in range(16):
            for dest in range(16):
                if source == dest:
                    continue
                for member in equal_cost_successors(
                    weights, distances, successors, source, dest
                ):
                    assert distances[member, dest] < distances[source, dest]
                    assert (
                        weights[source, member] + distances[member, dest]
                        <= distances[source, dest] * (1 + 1e-9)
                    )


class TestEcmpSelector:
    def _selector(self, blocked=frozenset(), seed=0):
        view = build_view()
        weights = sdr_weight_matrix(view)
        distances, successors = floyd_warshall_successors(weights)
        return EcmpSelector(weights, distances, successors, blocked, seed)

    def test_round_robin_cycles_group(self):
        selector = self._selector()
        hops = [selector.next_hop(0, 15) for _ in range(4)]
        assert sorted(set(hops)) == [1, 4]
        assert hops[:2] != hops[2:0:-1] or hops[0] != hops[1]
        # Consecutive picks alternate around the two-member group.
        assert hops[0] != hops[1] and hops[2] != hops[3]
        assert hops[0] == hops[2] and hops[1] == hops[3]

    def test_seed_changes_rotation_start(self):
        starts = {
            self._selector(seed=seed).next_hop(0, 15) for seed in range(8)
        }
        assert starts == {1, 4}

    def test_blocked_ports_skipped(self):
        selector = self._selector(blocked=frozenset({(0, 1)}))
        assert all(selector.next_hop(0, 15) == 4 for _ in range(4))

    def test_all_blocked_falls_back(self):
        selector = self._selector(
            blocked=frozenset({(0, 1), (0, 4)})
        )
        assert selector.next_hop(0, 15) is None

    def test_single_member_group_is_stable(self):
        selector = self._selector()
        assert all(selector.next_hop(0, 3) == 1 for _ in range(3))
