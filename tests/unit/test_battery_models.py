"""Unit tests for the ideal and thin-film battery models."""

import pytest

from repro.battery.ideal import IdealBattery
from repro.battery.monitor import BatteryLevelQuantizer, LevelTracker
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters
from repro.errors import BatteryError, ConfigurationError


class TestIdealBattery:
    def test_initial_state(self):
        battery = IdealBattery(capacity_pj=1000.0)
        assert battery.alive
        assert battery.state_of_charge == 1.0
        assert battery.delivered_pj == 0.0

    def test_delivers_exactly_requested(self):
        battery = IdealBattery(capacity_pj=1000.0)
        result = battery.draw(300.0, 10)
        assert result.complete
        assert result.delivered_pj == 300.0
        assert battery.state_of_charge == pytest.approx(0.7)

    def test_dies_exactly_at_depletion(self):
        battery = IdealBattery(capacity_pj=100.0)
        result = battery.draw(100.0, 10)
        assert result.died
        assert not battery.alive
        assert battery.wasted_pj == pytest.approx(0.0, abs=1e-6)

    def test_final_draw_partially_delivered(self):
        battery = IdealBattery(capacity_pj=100.0)
        result = battery.draw(150.0, 10)
        assert result.died
        assert result.delivered_pj == pytest.approx(100.0)
        assert not result.complete

    def test_draw_after_death_is_a_bug(self):
        battery = IdealBattery(capacity_pj=10.0)
        battery.draw(10.0, 1)
        with pytest.raises(BatteryError):
            battery.draw(1.0, 1)

    def test_voltage_constant_until_death(self):
        battery = IdealBattery(capacity_pj=100.0, voltage=3.6)
        assert battery.voltage == 3.6
        battery.draw(50.0, 10)
        assert battery.voltage == 3.6
        battery.draw(50.0, 10)
        assert battery.voltage == 0.0

    def test_invalid_draws_rejected(self):
        battery = IdealBattery()
        with pytest.raises(ConfigurationError):
            battery.draw(-1.0, 10)
        with pytest.raises(ConfigurationError):
            battery.draw(1.0, 0)


class TestThinFilmBattery:
    def test_fresh_cell_voltage(self):
        battery = ThinFilmBattery()
        assert battery.voltage == pytest.approx(4.17)
        assert battery.alive

    def test_gentle_discharge_uses_most_of_the_cell(self):
        # Tiny, widely-spaced draws keep the smoothed current near zero,
        # so the cell should deliver >85 % of nominal before 3.0 V.
        battery = ThinFilmBattery(ThinFilmParameters(capacity_pj=10_000.0))
        while battery.alive:
            battery.draw(20.0, 50)
            battery.rest(20_000)
        assert battery.delivered_pj > 0.85 * 10_000.0

    def test_sustained_load_dies_early(self):
        # Back-to-back heavy draws raise the smoothed current, sag the
        # output voltage and kill the cell with energy stranded.
        battery = ThinFilmBattery(ThinFilmParameters(capacity_pj=10_000.0))
        while battery.alive:
            battery.draw(200.0, 15)
        assert battery.delivered_pj < 0.75 * 10_000.0
        assert battery.wasted_pj > 0.0

    def test_rate_penalty_consumes_extra_charge(self):
        battery = ThinFilmBattery()
        for _ in range(50):
            battery.draw(100.0, 10)
        assert battery.consumed_pj > battery.delivered_pj
        assert battery.loss_pj > 0.0

    def test_rest_relaxes_the_load_average(self):
        battery = ThinFilmBattery()
        for _ in range(20):
            battery.draw(150.0, 10)
        loaded = battery.voltage
        battery.rest(100_000)
        assert battery.voltage > loaded

    def test_death_is_permanent(self):
        battery = ThinFilmBattery(ThinFilmParameters(capacity_pj=2_000.0))
        while battery.alive:
            battery.draw(150.0, 10)
        battery.rest(1_000_000)  # long rest must not revive it
        assert not battery.alive
        assert battery.voltage == 0.0

    def test_allow_recovery_survives_voltage_dips(self):
        params = ThinFilmParameters(
            capacity_pj=10_000.0, allow_recovery=True
        )
        battery = ThinFilmBattery(params)
        # The same sustained load that kills the default cell early.
        for _ in range(25):
            if not battery.alive:
                break
            battery.draw(200.0, 15)
        # With recovery the cell survives the dip phase.
        assert battery.delivered_pj >= 4_000.0

    def test_zero_draw_is_free(self):
        battery = ThinFilmBattery()
        result = battery.draw(0.0, 10)
        assert result.delivered_pj == 0.0
        assert battery.consumed_pj == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ThinFilmParameters(capacity_pj=-1)
        with pytest.raises(ConfigurationError):
            ThinFilmParameters(cutoff_voltage=5.0)  # above fresh voltage
        with pytest.raises(ConfigurationError):
            ThinFilmParameters(ema_window_cycles=0)


class TestQuantizer:
    def test_full_battery_reports_top_level(self):
        quantizer = BatteryLevelQuantizer(levels=8)
        assert quantizer.level_of_fraction(1.0) == 7

    def test_empty_battery_reports_zero(self):
        quantizer = BatteryLevelQuantizer(levels=8)
        assert quantizer.level_of_fraction(0.0) == 0

    def test_equal_bands(self):
        quantizer = BatteryLevelQuantizer(levels=4)
        assert quantizer.level_of_fraction(0.10) == 0
        assert quantizer.level_of_fraction(0.30) == 1
        assert quantizer.level_of_fraction(0.60) == 2
        assert quantizer.level_of_fraction(0.90) == 3

    def test_dead_battery_reports_zero(self):
        quantizer = BatteryLevelQuantizer(levels=8)
        battery = IdealBattery(capacity_pj=10.0)
        battery.draw(10.0, 1)
        assert quantizer.level_of(battery) == 0

    def test_bits(self):
        assert BatteryLevelQuantizer(levels=8).bits == 3
        assert BatteryLevelQuantizer(levels=16).bits == 4
        assert BatteryLevelQuantizer(levels=3).bits == 2

    def test_needs_two_levels(self):
        with pytest.raises(ConfigurationError):
            BatteryLevelQuantizer(levels=1)

    def test_negative_state_of_charge_clamps_to_zero(self):
        assert BatteryLevelQuantizer(levels=8).level_of_fraction(-0.5) == 0

    def test_overfull_fraction_clamps_to_top_level(self):
        assert BatteryLevelQuantizer(levels=8).level_of_fraction(1.5) == 7

    def test_levels_property_round_trips(self):
        assert BatteryLevelQuantizer(levels=6).levels == 6

    def test_two_levels_need_one_bit(self):
        assert BatteryLevelQuantizer(levels=2).bits == 1

    def test_alive_battery_reports_its_band(self):
        quantizer = BatteryLevelQuantizer(levels=4)
        battery = IdealBattery(capacity_pj=100.0)
        battery.draw(30.0, 10)  # 70 % -> level 2
        assert quantizer.level_of(battery) == 2


class TestLevelTracker:
    def test_detects_level_changes(self):
        quantizer = BatteryLevelQuantizer(levels=4)
        tracker = LevelTracker(quantizer)
        battery = IdealBattery(capacity_pj=100.0)
        assert tracker.observe(0, battery) is True  # first observation
        assert tracker.observe(0, battery) is False  # unchanged
        battery.draw(30.0, 10)  # 70 % -> level 2
        assert tracker.observe(0, battery) is True
        assert tracker.level(0) == 2

    def test_detects_death(self):
        quantizer = BatteryLevelQuantizer(levels=4)
        tracker = LevelTracker(quantizer)
        battery = IdealBattery(capacity_pj=100.0)
        tracker.observe(0, battery)
        battery.draw(100.0, 10)
        assert tracker.observe(0, battery) is True

    def test_snapshot(self):
        quantizer = BatteryLevelQuantizer(levels=4)
        tracker = LevelTracker(quantizer)
        tracker.observe(3, IdealBattery())
        assert tracker.snapshot() == {3: 3}

    def test_unobserved_node_reports_level_zero(self):
        tracker = LevelTracker(BatteryLevelQuantizer(levels=4))
        assert tracker.level(42) == 0

    def test_quantizer_accessor(self):
        quantizer = BatteryLevelQuantizer(levels=4)
        assert LevelTracker(quantizer).quantizer is quantizer

    def test_observe_flags_revival_style_alive_flips(self):
        # Liveness changes alone (same quantised level) must trigger a
        # report: a fault-killed node with a charged cell still reports
        # level 0 via level_of, so the alive flag is the discriminator.
        quantizer = BatteryLevelQuantizer(levels=4)
        tracker = LevelTracker(quantizer)

        class Unit:
            alive = True
            state_of_charge = 0.05

        unit = Unit()
        assert tracker.observe(0, unit) is True
        unit.alive = False
        assert tracker.observe(0, unit) is True
