"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestBound:
    def test_prints_theorem1(self, capsys):
        assert main(["bound", "--mesh", "4"]) == 0
        out = capsys.readouterr().out
        assert "131.4" in out
        assert "H_i" in out


class TestMapping:
    def test_checkerboard_grid(self, capsys):
        assert main(["mapping", "--mesh", "4"]) == 0
        out = capsys.readouterr().out
        assert "n1=4, n2=4, n3=8" in out

    def test_uniform_strategy(self, capsys):
        assert main(["mapping", "--mesh", "4", "--strategy", "uniform"]) == 0
        out = capsys.readouterr().out
        assert "uniform mapping" in out


class TestBatteryCurve:
    def test_prints_discharge_rows(self, capsys):
        assert main(["battery-curve", "--points", "6"]) == 0
        out = capsys.readouterr().out
        assert "open-circuit" in out
        assert "4.1" in out  # fresh-cell voltage visible


class TestSimulate:
    def test_json_summary(self, capsys):
        code = main(
            [
                "simulate",
                "--mesh",
                "4",
                "--routing",
                "sdr",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["routing"] == "sdr"
        assert payload["jobs_completed"] >= 1

    def test_table_summary(self, capsys):
        assert main(["simulate", "--mesh", "4", "--battery", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "jobs_completed" in out
