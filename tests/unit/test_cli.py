"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestBound:
    def test_prints_theorem1(self, capsys):
        assert main(["bound", "--mesh", "4"]) == 0
        out = capsys.readouterr().out
        assert "131.4" in out
        assert "H_i" in out


class TestMapping:
    def test_checkerboard_grid(self, capsys):
        assert main(["mapping", "--mesh", "4"]) == 0
        out = capsys.readouterr().out
        assert "n1=4, n2=4, n3=8" in out

    def test_uniform_strategy(self, capsys):
        assert main(["mapping", "--mesh", "4", "--strategy", "uniform"]) == 0
        out = capsys.readouterr().out
        assert "uniform mapping" in out

    def test_harvest_proportional_strategy(self, capsys):
        assert main(
            [
                "mapping",
                "--mesh", "4",
                "--strategy", "harvest-proportional",
                "--harvest-profile", "motion",
                "--harvest-hardware", "0.25",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "harvest-proportional mapping" in out
        assert "duplicates:" in out

    def test_harvest_proportional_without_income_prints_proportional(
        self, capsys
    ):
        # No harvest profile: the income picture is flat, so the grid
        # must match the plain proportional strategy's.
        assert main(
            ["mapping", "--mesh", "4", "--strategy", "harvest-proportional"]
        ) == 0
        aware = capsys.readouterr().out.splitlines()[2:]
        assert main(
            ["mapping", "--mesh", "4", "--strategy", "proportional"]
        ) == 0
        plain = capsys.readouterr().out.splitlines()[2:]
        assert aware == plain


class TestRegenGolden:
    def test_rewrites_a_fixture_that_matches_the_committed_one(
        self, capsys, tmp_path, monkeypatch
    ):
        # One representative point proves the command wiring and the
        # byte format; staleness of *every* fixture is already caught
        # by tests/integration/test_golden_traces.py, which re-runs
        # each golden point through both sweep runners.
        import repro.cli as cli_module

        case = next(
            entry
            for entry in cli_module.GOLDEN_SMOKE_POINTS
            if entry[0] == "fig7"
        )
        monkeypatch.setattr(cli_module, "GOLDEN_SMOKE_POINTS", (case,))
        assert main(["regen-golden", "--dir", str(tmp_path)]) == 0
        from pathlib import Path

        committed = Path(__file__).resolve().parents[1] / "golden"
        filename = case[2]
        fresh = (tmp_path / filename).read_text(encoding="utf-8")
        assert fresh == (committed / filename).read_text(
            encoding="utf-8"
        ), f"{filename} is stale — run `python -m repro regen-golden`"

    def test_check_mode_detects_staleness_without_writing(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.cli as cli_module

        case = next(
            entry
            for entry in cli_module.GOLDEN_SMOKE_POINTS
            if entry[0] == "fig7"
        )
        monkeypatch.setattr(cli_module, "GOLDEN_SMOKE_POINTS", (case,))
        filename = case[2]
        # Missing fixture: check fails without creating anything.
        assert main(["regen-golden", "--dir", str(tmp_path), "--check"]) == 1
        assert "MISSING" in capsys.readouterr().out
        assert not (tmp_path / filename).exists()
        # Fresh fixture: check passes.
        assert main(["regen-golden", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["regen-golden", "--dir", str(tmp_path), "--check"]) == 0
        assert "ok" in capsys.readouterr().out
        # Tampered fixture: check flags it and leaves the bytes alone.
        path = tmp_path / filename
        stale = json.loads(path.read_text(encoding="utf-8"))
        stale["summary"]["jobs_completed"] = 9999
        tampered = json.dumps(stale, indent=2, sort_keys=True) + "\n"
        path.write_text(tampered, encoding="utf-8")
        assert main(["regen-golden", "--dir", str(tmp_path), "--check"]) == 1
        out = capsys.readouterr().out
        assert "STALE" in out
        assert "regen-golden" in out
        assert path.read_text(encoding="utf-8") == tampered


class TestRoutingFlags:
    def test_defaults_are_the_inert_options(self):
        from repro.config import RoutingOptions

        args = build_parser().parse_args(["simulate", "--mesh", "4"])
        from repro.cli import _routing_options

        assert _routing_options(args) == RoutingOptions()

    def test_inert_knobs_do_not_fork_the_config(self):
        # Tuning knobs without their enabling flag must normalise away,
        # so they cannot split the sweep cache hash.
        from repro.cli import _routing_options
        from repro.config import RoutingOptions

        args = build_parser().parse_args(
            ["simulate", "--mesh", "4", "--congestion-q", "2.0",
             "--ecmp-seed", "7"]
        )
        assert _routing_options(args) == RoutingOptions()

    def test_flags_reach_the_options(self):
        from repro.cli import _routing_options

        args = build_parser().parse_args(
            ["simulate", "--mesh", "4", "--congestion-weight",
             "--congestion-q", "1.5", "--ecmp", "--ecmp-seed", "3"]
        )
        opts = _routing_options(args)
        assert opts.congestion_aware and opts.ecmp
        assert opts.congestion_q == 1.5
        assert opts.ecmp_seed == 3

    def test_simulate_accepts_the_congestion_flags(self, capsys):
        assert main(
            ["simulate", "--mesh", "4", "--congestion-weight", "--ecmp"]
        ) == 0
        out = capsys.readouterr().out
        assert "jobs" in out.lower()


class TestBenchAndSweepPaths:
    def test_bench_list_prints_the_registry(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "harvest-mapping" in out
        assert "fig7" in out

    def test_bench_rejects_unknown_scenarios(self, tmp_path, monkeypatch):
        from repro.errors import ConfigurationError

        monkeypatch.setenv("ETSIM_CACHE_DIR", str(tmp_path))
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            main(["bench", "--smoke", "--scenario", "fig99"])

    def test_bench_smoke_runs_the_mapping_scenario(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("ETSIM_CACHE_DIR", str(tmp_path))
        assert main(
            ["bench", "--smoke", "--scenario", "harvest-mapping", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        records = payload["harvest-mapping"]
        assert {r["workload"] for r in records} == {
            "sequential",
            "concurrent",
        }
        assert all(
            r["mapping"] == "harvest-proportional" for r in records
        )
        assert all(r["harvested_pj"] > 0 for r in records)

    def test_sweep_command_prints_the_gain_table(self, capsys):
        assert main(
            ["sweep", "--min-mesh", "4", "--max-mesh", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "EAR vs SDR" in out
        assert "4x4" in out


class TestBatteryCurve:
    def test_prints_discharge_rows(self, capsys):
        assert main(["battery-curve", "--points", "6"]) == 0
        out = capsys.readouterr().out
        assert "open-circuit" in out
        assert "4.1" in out  # fresh-cell voltage visible


class TestSimulate:
    def test_json_summary(self, capsys):
        code = main(
            [
                "simulate",
                "--mesh",
                "4",
                "--routing",
                "sdr",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["routing"] == "sdr"
        assert payload["jobs_completed"] >= 1

    def test_table_summary(self, capsys):
        assert main(["simulate", "--mesh", "4", "--battery", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "jobs_completed" in out


class TestFaultFlags:
    def test_fault_flags_parse_on_all_run_commands(self):
        parser = build_parser()
        for command in (
            ["simulate"],
            ["sweep"],
            ["bench", "--smoke"],
        ):
            args = parser.parse_args(
                command
                + [
                    "--fault-profile", "link-attrition",
                    "--fault-seed", "7",
                    "--fault-intensity", "2.0",
                ]
            )
            assert args.fault_profile == "link-attrition"
            assert args.fault_seed == 7
            assert args.fault_intensity == 2.0

    def test_fault_profile_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--fault-profile", "meteor-strike"]
            )

    def test_simulate_with_faults_reports_fault_counters(self, capsys):
        code = main(
            [
                "simulate",
                "--mesh", "4",
                "--fault-profile", "link-attrition",
                "--fault-seed", "7",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["links_cut"] > 0
        assert payload["faults_injected"] >= payload["links_cut"]

    def test_simulate_fault_seed_changes_the_outcome(self, capsys):
        payloads = []
        for seed in ("7", "8"):
            assert main(
                [
                    "simulate",
                    "--fault-profile", "node-dropout",
                    "--fault-seed", seed,
                    "--json",
                ]
            ) == 0
            payloads.append(json.loads(capsys.readouterr().out))
        assert payloads[0] != payloads[1]

    def test_inert_fault_flags_do_not_change_the_config(self):
        # Seed/intensity without a profile must normalise away, so the
        # sweep-cache hash matches a flag-free invocation exactly.
        from repro.cli import _fault_config
        from repro.faults import FaultConfig

        parser = build_parser()
        flagged = parser.parse_args(
            ["simulate", "--fault-seed", "7", "--fault-intensity", "3.0"]
        )
        assert _fault_config(flagged) == FaultConfig()

    def test_default_is_fault_free(self, capsys):
        assert main(["simulate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults_injected"] == 0
        assert payload["links_cut"] == 0

    def test_wear_and_repair_flags_parse_on_all_run_commands(self):
        parser = build_parser()
        for command in (["simulate"], ["sweep"], ["bench", "--smoke"]):
            args = parser.parse_args(
                command
                + [
                    "--fault-profile", "tear",
                    "--fault-repair-frames", "24",
                    "--wear-weight",
                ]
            )
            assert args.fault_profile == "tear"
            assert args.fault_repair_frames == 24
            assert args.wear_weight is True

    def test_simulate_tear_with_repair_reports_repairs(self, capsys):
        code = main(
            [
                "simulate",
                "--fault-profile", "tear",
                "--fault-seed", "0",
                "--fault-repair-frames", "24",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["links_cut"] > 0
        assert payload["links_repaired"] > 0

    def test_simulate_moisture_reports_degradations(self, capsys):
        code = main(
            [
                "simulate",
                "--fault-profile", "moisture",
                "--fault-seed", "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["links_degraded"] > 0
        assert payload["links_cut"] == 0

    def test_wear_weight_changes_a_faulty_run(self, capsys):
        payloads = []
        for extra in ([], ["--wear-weight"]):
            assert main(
                [
                    "simulate",
                    "--fault-profile", "link-attrition",
                    "--fault-seed", "7",
                    "--json",
                ]
                + extra
            ) == 0
            payloads.append(json.loads(capsys.readouterr().out))
        assert payloads[0] != payloads[1]

    def test_bench_smoke_runs_a_fault_scenario(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("ETSIM_CACHE_DIR", str(tmp_path))
        code = main(
            [
                "bench",
                "--smoke",
                "--scenario", "fig7-faulty",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        records = payload["fig7-faulty"]
        assert {r["routing"] for r in records} == {"ear", "sdr"}
        assert all(r["fault_profile"] == "link-attrition" for r in records)
        assert any(r["links_cut"] > 0 for r in records)


class TestTraceCli:
    def test_logging_flags_parse_on_all_commands(self):
        parser = build_parser()
        for command in (
            ["simulate"],
            ["sweep"],
            ["bench", "--smoke"],
            ["fleet", "--smoke"],
        ):
            args = parser.parse_args(command + ["--verbose"])
            assert args.verbose is True
            args = parser.parse_args(command + ["--quiet"])
            assert args.quiet is True

    def test_trace_flag_parses_on_all_run_commands(self):
        parser = build_parser()
        for command in (
            ["simulate"],
            ["sweep"],
            ["bench", "--smoke"],
            ["fleet", "--smoke"],
        ):
            args = parser.parse_args(command + ["--trace", "out.jsonl"])
            assert args.trace == "out.jsonl"

    def test_simulate_trace_writes_a_structured_jsonl(
        self, capsys, tmp_path
    ):
        from repro.telemetry import load_trace

        path = tmp_path / "run.jsonl"
        assert main(
            ["simulate", "--mesh", "4", "--trace", str(path), "--json"]
        ) == 0
        lines = load_trace(path)
        assert lines[0]["kind"] == "meta"
        assert lines[0]["command"] == "simulate"
        kinds = {line["kind"] for line in lines}
        assert {"frame", "event"} <= kinds
        replans = [li for li in lines if li.get("event") == "replan"]
        assert replans and all("causes" in li for li in replans)

    def test_simulate_trace_is_deterministic(self, capsys, tmp_path):
        from repro.telemetry import load_trace, strip_timings

        captures = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            assert main(
                ["simulate", "--mesh", "4", "--trace", str(path), "--json"]
            ) == 0
            captures.append(strip_timings(load_trace(path)))
        assert captures[0] == captures[1]

    def test_sweep_trace_tags_lines_per_point(self, capsys, tmp_path):
        from repro.telemetry import load_trace

        path = tmp_path / "sweep.jsonl"
        assert main(
            [
                "sweep", "--min-mesh", "4", "--max-mesh", "4",
                "--trace", str(path),
            ]
        ) == 0
        lines = load_trace(path)
        points = {line.get("point") for line in lines}
        # One EAR and one SDR run per mesh size, each tagged.
        assert {"4x4/ear", "4x4/sdr"} <= points

    def test_trace_subcommand_renders_a_report(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(
            ["simulate", "--mesh", "4", "--trace", str(path), "--json"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "re-plan(s)" in out
        assert "term attribution" in out
        assert "legend:" in out

    def test_trace_subcommand_events_flag(self, capsys, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(
            ["simulate", "--mesh", "4", "--trace", str(path), "--json"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(path), "--events", "--width", "40"]) == 0

    def test_quiet_suppresses_the_trace_status_line(
        self, capsys, tmp_path
    ):
        import io
        import logging as logging_module

        from repro.telemetry.console import LOGGER_NAME

        path = tmp_path / "run.jsonl"
        assert main(
            ["simulate", "--mesh", "4", "--trace", str(path), "--quiet",
             "--json"]
        ) == 0
        logger = logging_module.getLogger(LOGGER_NAME)
        assert logger.level == logging_module.WARNING
        # And the stream handler drops INFO records outright.
        stream = io.StringIO()
        logger.handlers[0].setStream(stream)
        logger.info("suppressed")
        assert stream.getvalue() == ""


class TestHarvestCli:
    def test_harvest_flags_parse_on_all_run_commands(self):
        parser = build_parser()
        for command in (["simulate"], ["sweep"], ["bench", "--smoke"]):
            args = parser.parse_args(
                command
                + [
                    "--harvest-profile", "motion",
                    "--harvest-seed", "7",
                    "--harvest-amplitude", "80.0",
                    "--harvest-weight",
                ]
            )
            assert args.harvest_profile == "motion"
            assert args.harvest_seed == 7
            assert args.harvest_amplitude == 80.0
            assert args.harvest_weight is True

    def test_harvest_profile_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--harvest-profile", "nuclear"]
            )

    def test_crew_and_corrosion_flags_parse(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "--fault-profile", "moisture",
                "--fault-corrode-frames", "48",
                "--repair-crew", "2",
                "--repair-latency", "12",
            ]
        )
        assert args.fault_corrode_frames == 48
        assert args.repair_crew == 2
        assert args.repair_latency == 12

    def test_simulate_with_harvest_reports_income(self, capsys):
        assert main(
            [
                "simulate",
                "--harvest-profile", "motion",
                "--harvest-seed", "7",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["harvested_pj"] > 0
        assert payload["harvest_events"] > 0

    def test_inert_harvest_flags_do_not_change_the_config(self):
        # Seed/amplitude without a profile must hash like a flag-free
        # run, or the sweep cache would fork on inert flags.
        from repro.cli import _harvest_config
        from repro.harvest import HarvestConfig

        parser = build_parser()
        flagged = parser.parse_args(
            ["simulate", "--harvest-seed", "7", "--harvest-amplitude", "9.0"]
        )
        assert _harvest_config(flagged) == HarvestConfig()

    def test_default_is_harvest_free(self, capsys):
        assert main(["simulate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["harvested_pj"] == 0.0
        assert payload["harvest_events"] == 0

    def test_hardware_and_bus_flags_parse_on_all_run_commands(self):
        parser = build_parser()
        for command in (["simulate"], ["sweep"], ["bench", "--smoke"]):
            args = parser.parse_args(
                command
                + [
                    "--harvest-profile", "motion",
                    "--harvest-hardware", "0.25",
                    "--harvest-placement", "random",
                    "--share-max-hops", "3",
                    "--mapping", "harvest-proportional",
                ]
            )
            assert args.harvest_hardware == 0.25
            assert args.harvest_placement == "random"
            assert args.share_max_hops == 3
            assert args.mapping == "harvest-proportional"

    def test_all_equipped_hardware_normalises_to_the_default(self):
        # Placement/seed are inert at fraction 1: the config (and its
        # cache hash) must match a hardware-free invocation.
        from repro.cli import _harvest_config
        from repro.harvest import HarvestHardware

        parser = build_parser()
        flagged = parser.parse_args(
            [
                "simulate",
                "--harvest-profile", "motion",
                "--harvest-hardware", "1.0",
                "--harvest-placement", "spread",
                "--harvest-seed", "9",
            ]
        )
        assert _harvest_config(flagged).hardware == HarvestHardware()

    def test_bad_hardware_fraction_is_rejected(self):
        from repro.cli import _harvest_config
        from repro.errors import ConfigurationError

        args = build_parser().parse_args(
            [
                "simulate",
                "--harvest-profile", "motion",
                "--harvest-hardware", "1.5",
            ]
        )
        with pytest.raises(ConfigurationError):
            _harvest_config(args)

    def test_bad_share_max_hops_is_rejected(self):
        from repro.cli import _harvest_config
        from repro.errors import ConfigurationError

        args = build_parser().parse_args(
            [
                "simulate",
                "--harvest-profile", "bus",
                "--share-max-hops", "0",
            ]
        )
        with pytest.raises(ConfigurationError):
            _harvest_config(args)

    def test_simulate_with_heterogeneous_hardware(self, capsys):
        assert main(
            [
                "simulate",
                "--harvest-profile", "motion",
                "--harvest-seed", "7",
                "--harvest-hardware", "0.25",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["harvested_pj"] > 0

    def test_simulate_with_income_aware_mapping(self, capsys):
        assert main(
            [
                "simulate",
                "--mapping", "harvest-proportional",
                "--harvest-profile", "motion",
                "--harvest-hardware", "0.5",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs_completed"] >= 1
        assert payload["verification_failures"] == 0

    def test_multi_hop_bus_counts_hops(self, capsys):
        assert main(
            [
                "simulate",
                "--harvest-profile", "bus",
                "--harvest-amplitude", "80",
                "--share-max-hops", "3",
                "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["share_hops"] >= 0

    def test_bench_smoke_runs_the_harvest_scenarios(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("ETSIM_CACHE_DIR", str(tmp_path))
        code = main(
            [
                "bench",
                "--smoke",
                "--scenario", "harvest-motion",
                "--scenario", "harvest-aware",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        motion = payload["harvest-motion"]
        assert {r["workload"] for r in motion} == {
            "sequential", "concurrent"
        }
        assert all(r["harvested_pj"] > 0 for r in motion)
        aware = payload["harvest-aware"]
        assert {r["strategy"] for r in aware} == {"reactive", "aware"}
