"""Unit tests for units and the exception hierarchy."""

import pytest

from repro.errors import (
    BatteryError,
    ConfigurationError,
    DeadNodeError,
    MappingError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
    UnreachableModuleError,
    VerificationError,
)
from repro.units import (
    DEFAULT_CLOCK_HZ,
    average_current_ma,
    cycles_to_seconds,
    mw_to_pj_per_cycle,
    pj_per_cycle_to_mw,
    require_fraction,
    require_non_negative,
    require_positive,
    seconds_to_cycles,
)


class TestUnits:
    def test_paper_controller_power_conversion(self):
        # 6.94 mW at 100 MHz = 69.4 pJ per cycle (paper Sec 7.3).
        assert mw_to_pj_per_cycle(6.94) == pytest.approx(69.4)

    def test_power_conversion_round_trip(self):
        for mw in (0.57, 6.94, 100.0):
            assert pj_per_cycle_to_mw(
                mw_to_pj_per_cycle(mw)
            ) == pytest.approx(mw)

    def test_cycle_time_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(1234.0)) == pytest.approx(
            1234.0
        )

    def test_default_clock(self):
        assert DEFAULT_CLOCK_HZ == 100e6
        assert cycles_to_seconds(1) == pytest.approx(10e-9)

    def test_average_current(self):
        # 120 pJ over 10 cycles (100 ns) at 3.6 V:
        # P = 1.2 mW, I = 0.333 mA.
        current = average_current_ma(120.0, 10, 3.6)
        assert current == pytest.approx(1.2 / 3.6, rel=1e-6)

    def test_average_current_validation(self):
        with pytest.raises(ConfigurationError):
            average_current_ma(1.0, 0, 3.6)
        with pytest.raises(ConfigurationError):
            average_current_ma(1.0, 1, 0.0)

    def test_validators(self):
        assert require_positive("x", 1.0) == 1.0
        assert require_non_negative("x", 0.0) == 0.0
        assert require_fraction("x", 0.5) == 0.5
        with pytest.raises(ConfigurationError):
            require_positive("x", 0.0)
        with pytest.raises(ConfigurationError):
            require_non_negative("x", -1.0)
        with pytest.raises(ConfigurationError):
            require_fraction("x", 1.5)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (
            ConfigurationError,
            TopologyError,
            MappingError,
            RoutingError,
            BatteryError,
            SimulationError,
            VerificationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_unreachable_module_carries_context(self):
        error = UnreachableModuleError(2, origin=7)
        assert error.module == 2
        assert error.origin == 7
        assert "module 2" in str(error)
        assert isinstance(error, RoutingError)

    def test_dead_node_error_message(self):
        error = DeadNodeError(3, "transmit")
        assert "node 3" in str(error)
        assert "transmit" in str(error)
