"""Unit tests: harvest configuration, income schedules, the runtime
estimator, the harvest-bonus weight, and cache invalidation."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from helpers import make_config, make_view
from repro.config import SimulationConfig
from repro.core.weights import (
    HARVEST_RICH_BAND,
    HarvestWeightFunction,
    apply_harvest_bonus,
    ear_weight_matrix,
)
from repro.errors import ConfigurationError
from repro.harvest import (
    HARVEST_PROFILES,
    HarvestConfig,
    HarvestHardware,
    HarvestRuntime,
    build_harvest_schedule,
    flex_weights,
    hardware_scale,
)
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import Topology, mesh2d
from repro.orchestration import config_hash


class TestHarvestConfig:
    def test_defaults_are_inactive(self):
        config = HarvestConfig()
        assert config.profile == "none"
        assert not config.is_active
        assert not config.shares_power

    @pytest.mark.parametrize("profile", HARVEST_PROFILES[1:])
    def test_active_profiles(self, profile):
        assert HarvestConfig(profile=profile).is_active

    def test_only_bus_shares_power(self):
        assert HarvestConfig(profile="bus").shares_power
        assert not HarvestConfig(profile="motion").shares_power
        assert not HarvestConfig(profile="solar").shares_power

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            HarvestConfig(profile="nuclear")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"amplitude_pj": -1.0},
            {"period_frames": 0},
            {"duty": 1.5},
            {"duty": -0.1},
            {"day_frames": 1},
            {"start_frame": -1},
            {"share_threshold": 0.0},
            {"share_threshold": 1.5},
            {"share_efficiency": 0.0},
            {"share_efficiency": 1.2},
            {"share_rate_pj": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            HarvestConfig(profile="bus", **kwargs)

    def test_round_trips_through_simulation_config(self):
        config = make_config(
            harvest=HarvestConfig(profile="bus", seed=42, amplitude_pj=80.0)
        )
        rebuilt = type(config).from_dict(config.to_dict())
        assert rebuilt.harvest == config.harvest

    def test_old_documents_without_harvest_section_still_load(self):
        config = make_config()
        raw = config.to_dict()
        del raw["harvest"]
        assert type(config).from_dict(raw).harvest == HarvestConfig()

    def test_simulation_config_validates_harvest_knobs(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(harvest_q=0.9)
        with pytest.raises(ConfigurationError):
            SimulationConfig(harvest_quantum=0.0)

    def test_harvest_function_gated_by_flag(self):
        assert SimulationConfig().harvest_function() is None
        function = SimulationConfig(harvest_aware=True).harvest_function()
        assert function is not None
        assert function.q >= 1.0


class TestHarvestHardware:
    def test_default_is_uniform(self):
        hardware = HarvestHardware()
        assert hardware.is_uniform
        assert hardware.equipped_fraction == 1.0

    def test_fraction_or_spread_break_uniformity(self):
        assert not HarvestHardware(equipped_fraction=0.5).is_uniform
        assert not HarvestHardware(gain_spread=0.2).is_uniform

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"equipped_fraction": 0.0},
            {"equipped_fraction": 1.5},
            {"placement": "orbital"},
            {"gain_spread": -0.1},
            {"gain_spread": 1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            HarvestHardware(**kwargs)

    def test_share_max_hops_validated(self):
        with pytest.raises(ConfigurationError):
            HarvestConfig(profile="bus", share_max_hops=0)

    def test_round_trips_through_simulation_config(self):
        config = make_config(
            harvest=HarvestConfig(
                profile="motion",
                share_max_hops=3,
                hardware=HarvestHardware(
                    equipped_fraction=0.4,
                    placement="random",
                    seed=9,
                    gain_spread=0.25,
                ),
            )
        )
        rebuilt = type(config).from_dict(config.to_dict())
        assert rebuilt.harvest == config.harvest
        assert rebuilt.harvest.hardware == config.harvest.hardware


class TestHardwareScale:
    def scale(self, **kwargs):
        return hardware_scale(HarvestHardware(**kwargs), mesh2d(4), 16)

    def test_uniform_hardware_is_all_ones(self):
        assert self.scale() == [1.0] * 16

    @pytest.mark.parametrize("placement", ["flex", "random", "spread"])
    @pytest.mark.parametrize("fraction", [0.1, 0.25, 0.5, 0.75])
    def test_equipped_count_follows_the_fraction(self, placement, fraction):
        scale = self.scale(
            equipped_fraction=fraction, placement=placement, seed=5
        )
        equipped = sum(1 for gain in scale if gain > 0)
        assert equipped == max(1, round(fraction * 16))

    def test_flex_placement_prefers_corners(self):
        scale = self.scale(equipped_fraction=0.25, placement="flex")
        corners = [0, 3, 12, 15]
        assert all(scale[node] > 0 for node in corners)
        assert scale[5] == 0.0  # inner node flexes least

    def test_random_placement_is_seed_deterministic(self):
        one = self.scale(equipped_fraction=0.5, placement="random", seed=3)
        two = self.scale(equipped_fraction=0.5, placement="random", seed=3)
        other = self.scale(equipped_fraction=0.5, placement="random", seed=4)
        assert one == two
        assert one != other

    def test_gain_spread_stays_in_band(self):
        scale = self.scale(
            equipped_fraction=1.0, gain_spread=0.3, seed=2
        )
        assert all(0.7 <= gain <= 1.3 for gain in scale)
        assert len(set(scale)) > 1  # manufacturing variation is real

    def test_non_equipped_nodes_get_zero_schedule_income(self):
        config = HarvestConfig(
            profile="motion",
            seed=1,
            hardware=HarvestHardware(
                equipped_fraction=0.25, placement="spread", seed=1
            ),
        )
        schedule = build_harvest_schedule(config, mesh2d(4), 16)
        vector = next(
            v for f in range(600) if (v := schedule.income(f)) is not None
        )
        for node in range(16):
            if schedule.hardware[node] == 0.0:
                assert vector[node] == 0.0

    def test_expected_income_weights_follow_the_hardware(self):
        config = HarvestConfig(
            profile="solar",
            hardware=HarvestHardware(
                equipped_fraction=0.5, placement="spread"
            ),
        )
        schedule = build_harvest_schedule(config, mesh2d(4), 16)
        weights = schedule.expected_income_weights()
        for node in range(16):
            assert (weights[node] > 0) == (schedule.hardware[node] > 0)

    def test_inactive_schedule_expects_zero_income(self):
        schedule = build_harvest_schedule(HarvestConfig(), mesh2d(4), 16)
        assert schedule.expected_income_weights() == [0.0] * 16


class TestFlexWeights:
    def test_centre_flexes_least(self):
        topology = mesh2d(4)
        weights = flex_weights(topology, 16)
        assert len(weights) == 16
        # Corners are the furthest from the centroid, inner nodes the
        # closest; every weight stays within the documented band.
        assert all(0.25 <= w <= 1.0 for w in weights)
        corner = weights[0]
        inner = weights[5]  # (2, 2) on the 4x4 mesh
        assert corner > inner
        assert corner == pytest.approx(1.0)

    def test_geometry_free_fabric_degrades_to_uniform(self):
        topology = Topology(4)
        for u, v in ((0, 1), (1, 2), (2, 3)):
            topology.add_edge(u, v, 2.0)
        assert flex_weights(topology, 4) == [1.0, 1.0, 1.0, 1.0]


class TestHarvestSchedule:
    def schedule(self, **kwargs):
        config = HarvestConfig(profile="motion", seed=7, **kwargs)
        return build_harvest_schedule(config, mesh2d(4), 16)

    def test_none_profile_never_yields_income(self):
        schedule = build_harvest_schedule(HarvestConfig(), mesh2d(4), 16)
        assert not schedule.is_active
        assert all(schedule.income(frame) is None for frame in range(200))

    def test_zero_amplitude_is_inactive(self):
        schedule = build_harvest_schedule(
            HarvestConfig(profile="motion", amplitude_pj=0.0), mesh2d(4), 16
        )
        assert not schedule.is_active

    def test_motion_is_deterministic(self):
        one = [self.schedule().income(frame) for frame in range(300)]
        two = [self.schedule().income(frame) for frame in range(300)]
        assert one == two

    def test_motion_mixes_active_and_idle_windows(self):
        incomes = [self.schedule().income(frame) for frame in range(600)]
        assert any(v is None for v in incomes)
        assert any(v is not None for v in incomes)

    def test_motion_income_is_constant_within_a_window(self):
        schedule = self.schedule(period_frames=16)
        by_window: dict[int, set] = {}
        for frame in range(320):
            vector = schedule.income(frame)
            by_window.setdefault(frame // 16, set()).add(
                tuple(vector) if vector is not None else None
            )
        assert all(len(values) == 1 for values in by_window.values())

    def test_motion_concentrates_on_high_flex_nodes(self):
        schedule = self.schedule()
        vector = next(
            v for f in range(600) if (v := schedule.income(f)) is not None
        )
        assert vector[0] > vector[5]  # corner beats inner node

    def test_start_frame_delays_income(self):
        schedule = self.schedule(start_frame=100)
        assert all(schedule.income(f) is None for f in range(100))

    def test_solar_ramp_cycles_day_and_night(self):
        config = HarvestConfig(profile="solar", day_frames=100,
                               amplitude_pj=50.0)
        schedule = build_harvest_schedule(config, mesh2d(4), 16)
        day = schedule.income(25)   # mid-day: peak of the sine
        night = schedule.income(75)  # mid-night
        assert night is None
        assert day is not None
        assert all(v == pytest.approx(50.0) for v in day)
        # Uniform across the fabric: no flex weighting for light.
        assert len(set(day)) == 1


class TestHarvestRuntime:
    def runtime(self, quantum=5.0):
        schedule = build_harvest_schedule(
            HarvestConfig(profile="motion", seed=1), mesh2d(4), 16
        )
        return HarvestRuntime(schedule, income_quantum=quantum, levels=8)

    def test_tracking_disabled_without_quantum(self):
        runtime = self.runtime(quantum=0.0)
        assert not runtime.tracks_income
        runtime.observe_frame([100.0] * 16)
        assert not runtime.income_dirty

    def test_levels_rise_with_sustained_income(self):
        runtime = self.runtime()
        for _ in range(400):
            runtime.observe_frame([20.0] * 16)
        assert runtime.income_dirty
        vector = runtime.income_level_vector(17)
        assert vector.shape == (17,)
        assert vector[16] == 0  # the external source never harvests
        # The moving average converges on 20 pJ/frame from below, so
        # the quantised level settles one below the exact quotient.
        assert all(vector[:16] == 3)

    def test_levels_saturate_at_cap(self):
        runtime = self.runtime()
        for _ in range(1000):
            runtime.observe_frame([10_000.0] * 16)
        assert all(runtime.income_level_vector(16) == 7)

    def test_dirty_only_on_level_crossings(self):
        runtime = self.runtime()
        runtime.observe_frame([0.0] * 16)
        assert not runtime.income_dirty


class TestHarvestWeightFunction:
    def test_level_zero_is_unweighted(self):
        assert HarvestWeightFunction()(0) == 1.0

    def test_richer_is_cheaper(self):
        function = HarvestWeightFunction(q=1.3)
        values = [function(level) for level in range(8)]
        assert values == sorted(values, reverse=True)
        assert all(v <= 1.0 for v in values)

    def test_saturates_at_level_cap(self):
        function = HarvestWeightFunction(q=1.3, levels=4)
        assert function(3) == function(99)

    def test_q_one_degenerates_to_reactive(self):
        function = HarvestWeightFunction(q=1.0)
        assert all(function(level) == 1.0 for level in range(8))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            HarvestWeightFunction(q=0.5)
        with pytest.raises(ConfigurationError):
            HarvestWeightFunction(quantum=0.0)
        with pytest.raises(ConfigurationError):
            HarvestWeightFunction(levels=0)
        with pytest.raises(ConfigurationError):
            HarvestWeightFunction()(-1)


class TestApplyHarvestBonus:
    def test_bonus_applies_only_to_nearly_full_receivers(self):
        topology = mesh2d(3)
        mapping = checkerboard_mapping(topology, range(9))
        function = HarvestWeightFunction(q=1.5)
        # Node 0 reports full and harvesting, node 1 depleted and
        # harvesting: only the full one gets cheaper.
        levels_vector = np.full(9, 7, dtype=int)
        levels_vector[1] = 2
        income = np.zeros(9, dtype=int)
        income[0] = 3
        income[1] = 3
        view = make_view(topology, mapping, levels_vector=levels_vector)
        base = ear_weight_matrix(view, view_function())
        view_income = replace_income(view, income)
        boosted = apply_harvest_bonus(base.copy(), view_income, function)
        assert boosted[3, 0] == pytest.approx(
            base[3, 0] * function(3)
        )
        # Node 1 is below the rich band: untouched.
        assert boosted[0, 1] == pytest.approx(base[0, 1])
        # Rich band boundary honoured exactly.
        assert (view.levels - HARVEST_RICH_BAND) <= 7

    def test_bonus_preserves_floyd_warshall_conventions(self):
        topology = mesh2d(3)
        mapping = checkerboard_mapping(topology, range(9))
        function = HarvestWeightFunction(q=1.5)
        income = np.full(9, 5, dtype=int)
        view = make_view(topology, mapping)
        view_income = replace_income(view, income)
        base = ear_weight_matrix(view, view_function())
        boosted = apply_harvest_bonus(base.copy(), view_income, function)
        assert np.all(np.isinf(boosted) == np.isinf(base))
        assert np.all(np.diag(boosted) == 0.0)


def view_function():
    from repro.core.weights import BatteryWeightFunction

    return BatteryWeightFunction()


def replace_income(view, income):
    return type(view)(
        lengths=view.lengths,
        alive=view.alive,
        battery_levels=view.battery_levels,
        levels=view.levels,
        mapping=view.mapping,
        blocked_ports=view.blocked_ports,
        income=income,
    )


class TestCacheInvalidation:
    def test_harvest_profile_changes_the_hash(self):
        plain = make_config()
        harvesting = replace(
            plain, harvest=HarvestConfig(profile="motion")
        )
        assert config_hash(plain) != config_hash(harvesting)

    def test_harvest_seed_changes_the_hash(self):
        one = make_config(harvest=HarvestConfig(profile="motion", seed=1))
        two = make_config(harvest=HarvestConfig(profile="motion", seed=2))
        assert config_hash(one) != config_hash(two)

    def test_harvest_aware_flag_changes_the_hash(self):
        plain = make_config(harvest=HarvestConfig(profile="motion"))
        aware = replace(plain, harvest_aware=True)
        assert config_hash(plain) != config_hash(aware)

    def test_hardware_spec_changes_the_hash(self):
        base = make_config(harvest=HarvestConfig(profile="motion"))
        hetero = replace(
            base,
            harvest=replace(
                base.harvest,
                hardware=HarvestHardware(equipped_fraction=0.5),
            ),
        )
        assert config_hash(base) != config_hash(hetero)

    def test_share_max_hops_changes_the_hash(self):
        base = make_config(harvest=HarvestConfig(profile="bus"))
        multi = replace(
            base, harvest=replace(base.harvest, share_max_hops=3)
        )
        assert config_hash(base) != config_hash(multi)

    def test_mapping_strategy_changes_the_hash(self):
        base = make_config(harvest=HarvestConfig(profile="motion"))
        aware = replace(
            base,
            platform=replace(
                base.platform, mapping_strategy="harvest-proportional"
            ),
        )
        assert config_hash(base) != config_hash(aware)

    def test_crew_and_corrosion_knobs_change_the_hash(self):
        base = make_config(fault_profile="moisture")
        corroding = replace(
            base, faults=replace(base.faults, corrode_after_frames=64)
        )
        crewed = replace(
            base, faults=replace(base.faults, repair_crew_size=2)
        )
        assert len({
            config_hash(base), config_hash(corroding), config_hash(crewed)
        }) == 3
