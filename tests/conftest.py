"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_config
from repro.core.view import NetworkView
from repro.mesh.mapping import checkerboard_mapping
from repro.mesh.topology import mesh2d


@pytest.fixture
def mesh4() :
    """A paper-default 4x4 mesh topology."""
    return mesh2d(4)


@pytest.fixture
def mapping4(mesh4):
    """The paper's checkerboard mapping on the 4x4 mesh."""
    return checkerboard_mapping(mesh4)


@pytest.fixture
def full_view(mesh4, mapping4):
    """A network view with every node alive at full battery."""
    return NetworkView(
        lengths=mesh4.length_matrix(),
        alive=np.ones(16, dtype=bool),
        battery_levels=np.full(16, 7, dtype=int),
        levels=8,
        mapping=mapping4,
    )


@pytest.fixture
def small_sim_config():
    """A fast-to-run 4x4 simulation configuration."""
    return make_config(max_frames=50_000)


@pytest.fixture
def budget_sim_config():
    """A configuration capped at a handful of jobs (sub-second runs)."""
    return make_config(max_jobs=3, max_frames=50_000)
