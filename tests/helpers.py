"""Plain-function helpers shared across the test suite.

Kept out of ``conftest.py`` so test modules can import them normally
(``from helpers import make_view``) instead of reaching into pytest's
conftest machinery with relative imports, which breaks collection when
the test tree is not a package.  The ``tests`` directory is on
``pythonpath`` via ``pyproject.toml``.
"""

from __future__ import annotations

import numpy as np

from repro.core.view import NetworkView


def make_view(
    topology,
    mapping,
    alive=None,
    levels_vector=None,
    levels: int = 8,
    blocked=frozenset(),
):
    """Helper for tests that need custom views."""
    size = topology.num_nodes
    alive_vec = (
        np.ones(size, dtype=bool) if alive is None else np.asarray(alive)
    )
    level_vec = (
        np.full(size, levels - 1, dtype=int)
        if levels_vector is None
        else np.asarray(levels_vector)
    )
    return NetworkView(
        lengths=topology.length_matrix(),
        alive=alive_vec,
        battery_levels=level_vec,
        levels=levels,
        mapping=mapping,
        blocked_ports=blocked,
    )
