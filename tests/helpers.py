"""Plain-function helpers shared across the test suite.

Kept out of ``conftest.py`` so test modules can import them normally
(``from helpers import make_view``) instead of reaching into pytest's
conftest machinery with relative imports, which breaks collection when
the test tree is not a package.  The ``tests`` directory is on
``pythonpath`` via ``pyproject.toml``.
"""

from __future__ import annotations

import numpy as np

from repro.config import (
    ControlConfig,
    PlatformConfig,
    RoutingOptions,
    SimulationConfig,
    WorkloadConfig,
)
from repro.core.view import NetworkView
from repro.faults import FaultConfig
from repro.harvest import HarvestConfig


def make_view(
    topology,
    mapping,
    alive=None,
    levels_vector=None,
    levels: int = 8,
    blocked=frozenset(),
):
    """Helper for tests that need custom views."""
    size = topology.num_nodes
    alive_vec = (
        np.ones(size, dtype=bool) if alive is None else np.asarray(alive)
    )
    level_vec = (
        np.full(size, levels - 1, dtype=int)
        if levels_vector is None
        else np.asarray(levels_vector)
    )
    return NetworkView(
        lengths=topology.length_matrix(),
        alive=alive_vec,
        battery_levels=level_vec,
        levels=levels,
        mapping=mapping,
        blocked_ports=blocked,
    )


def make_config(
    mesh_width: int = 4,
    routing: str = "ear",
    battery: str = "thin-film",
    kind: str = "sequential",
    concurrency: int = 1,
    buffers: int | None = None,
    recovery: bool = True,
    fault_profile: str | None = None,
    fault_seed: int = 0,
    fault_intensity: float = 1.0,
    control: ControlConfig | None = None,
    faults: FaultConfig | None = None,
    wear_aware: bool = False,
    harvest: HarvestConfig | None = None,
    harvest_aware: bool = False,
    routing_opts: RoutingOptions | None = None,
    engine: str = "auto",
    **workload_kwargs,
) -> SimulationConfig:
    """One configuration builder for every engine-driving test.

    Sequential, concurrent and fault-bearing setups all route through
    here so integration, property and fault tests exercise identically
    constructed platforms.  ``workload_kwargs`` pass straight to
    :class:`~repro.config.WorkloadConfig` (``max_jobs``, ``seed``, ...).
    """
    platform_kwargs: dict = {
        "mesh_width": mesh_width,
        "battery_model": battery,
    }
    if buffers is not None:
        platform_kwargs["node_buffer_packets"] = buffers
    if faults is None:
        faults = (
            FaultConfig()
            if fault_profile is None
            else FaultConfig(
                profile=fault_profile,
                seed=fault_seed,
                intensity=fault_intensity,
            )
        )
    return SimulationConfig(
        platform=PlatformConfig(**platform_kwargs),
        control=control if control is not None else ControlConfig(),
        workload=WorkloadConfig(
            kind=kind,
            concurrency=concurrency,
            deadlock_recovery=recovery,
            **workload_kwargs,
        ),
        faults=faults,
        harvest=harvest if harvest is not None else HarvestConfig(),
        routing=routing,
        wear_aware=wear_aware,
        harvest_aware=harvest_aware,
        routing_opts=(
            routing_opts if routing_opts is not None else RoutingOptions()
        ),
        engine=engine,
    )


def build_engine(config: SimulationConfig):
    """The engine ``config`` selects (via the registry), built but not
    run — for tests that poke at engine internals."""
    from repro.sim.et_sim import EtSim

    return EtSim(config).build_engine()
