#!/usr/bin/env python
"""Exploring heterogeneous harvest hardware and income-aware mapping.

Three short experiments on the paper's 4x4 platform:

1. hardware heterogeneity — where the generators sit under each
   placement policy, and how the income picture changes when only a
   quarter of the nodes carry one;
2. income-aware mapping — the `harvest-proportional` strategy next to
   the plain Theorem-1 rule on the same heterogeneous income (and its
   exact degeneration when the income is uniform);
3. the multi-hop power bus — how far surplus travels as
   `share_max_hops` grows, and what the per-hop conversion loss costs.

Run:  python examples/mapping_playground.py
"""

from dataclasses import replace

from repro.analysis import mapping_comparison_for
from repro.analysis.tables import format_table
from repro.config import PlatformConfig, SimulationConfig
from repro.harvest import (
    HarvestConfig,
    HarvestHardware,
    build_harvest_schedule,
)
from repro.mesh.mapping import (
    harvest_proportional_mapping,
    proportional_mapping,
)
from repro.mesh.topology import mesh2d
from repro.sim.et_sim import run_simulation

ENERGIES = {1: 2367.9, 2: 1710.3, 3: 3225.7}  # AES H_i (paper Table 1)


def hardware_placements() -> None:
    print("1. generator placement policies (4 of 16 nodes equipped)\n")
    topology = mesh2d(4)
    rows = []
    for placement in ("flex", "random", "spread"):
        config = HarvestConfig(
            profile="motion",
            seed=7,
            hardware=HarvestHardware(
                equipped_fraction=0.25, placement=placement, seed=7
            ),
        )
        schedule = build_harvest_schedule(config, topology, 16)
        equipped = [n for n in range(16) if schedule.hardware[n] > 0]
        expected = schedule.expected_income_weights()
        rows.append(
            (
                placement,
                ", ".join(str(n) for n in equipped),
                round(sum(expected), 1),
            )
        )
    print(
        format_table(
            ["placement", "equipped nodes", "E[income] pJ/frame"], rows
        )
    )


def income_aware_mapping() -> None:
    print("\n2. income-aware vs Theorem-1 placement\n")
    topology = mesh2d(4)
    config = HarvestConfig(
        profile="motion",
        seed=7,
        amplitude_pj=300.0,
        hardware=HarvestHardware(equipped_fraction=0.25, placement="flex"),
    )
    income = build_harvest_schedule(
        config, topology, 16
    ).expected_income_weights()
    plain = proportional_mapping(topology, ENERGIES, range(16))
    aware = harvest_proportional_mapping(
        topology, ENERGIES, income, range(16)
    )
    print("proportional grid / harvest-proportional grid:")
    for y in range(4, 0, -1):
        left = "  ".join(
            str(plain.module_of((y - 1) * 4 + x)) for x in range(4)
        )
        right = "  ".join(
            str(aware.module_of((y - 1) * 4 + x)) for x in range(4)
        )
        print(f"   {left}     {right}")
    uniform = harvest_proportional_mapping(
        topology, ENERGIES, [1.0] * 16, range(16)
    )
    print(f"\nuniform income degenerates exactly: {uniform == plain}")

    simulation = SimulationConfig(
        platform=PlatformConfig(mapping_strategy="harvest-proportional"),
        harvest=config,
    )
    record = mapping_comparison_for(simulation)
    print(format_table(["metric", "value"], list(record.items())))


def multi_hop_bus() -> None:
    print("\n3. the multi-hop power bus\n")
    rows = []
    for hops in (1, 2, 3):
        config = SimulationConfig(
            harvest=HarvestConfig(
                profile="bus",
                seed=7,
                amplitude_pj=80.0,
                share_threshold=0.05,
                share_max_hops=hops,
            ),
            workload=replace(SimulationConfig().workload, max_jobs=40),
        )
        summary = run_simulation(config).summary()
        rows.append(
            (
                hops,
                summary["share_hops"],
                summary["shared_pj"],
                summary["harvested_pj"],
                summary["jobs_fractional"],
            )
        )
    print(
        format_table(
            ["max hops", "bus hops", "shared pJ", "harvested pJ", "jobs"],
            rows,
        )
    )


def main() -> None:
    hardware_placements()
    income_aware_mapping()
    multi_hop_bus()


if __name__ == "__main__":
    main()
