#!/usr/bin/env python
"""Spreading hot links on a body-scale fabric with congestion-aware ECMP.

Energy-aware routing picks one minimal-cost path per (source,
destination) pair, so on a regular mesh every job funnels through the
same few lines next to the source corner — those lines carry an order
of magnitude more packets than the median line, wear out first under
the traversal-wear model, and pull their relay nodes' batteries down
fastest.

This example runs one frame-dominated 16x16 configuration (the
``engine-speed`` bench point's regime: module latencies stretched to a
whole TDMA frame, capacity scaled so the run ends on the job budget)
three ways on the vector engine:

1. **measure-only** — congestion tracking on with a *neutral* penalty
   (q = 1.0): the summary gains the hot-link metrics while every
   routing decision stays bit-identical to plain EAR;
2. **ECMP only** — deterministic round-robin over the equal-cost
   successor groups Floyd-Warshall's canonical tree hides;
3. **full relief** — ECMP plus the congestion cost term, which reads
   the controller's quantised per-link load levels and multiplies hot
   lines' weights by ``q ^ level``, steering even unequal-cost traffic
   off saturated corridors.

Run:  python examples/congestion_playground.py
"""

from repro import (
    ControlConfig,
    PlatformConfig,
    SimulationConfig,
    WorkloadConfig,
    run_simulation,
)
from repro.analysis import congestion_comparison
from repro.analysis.tables import format_table
from repro.config import RoutingOptions

WIDTH = 16


def frame_cycles_for(width: int) -> int:
    """Grow the TDMA frame until its control section fits the mesh."""
    cycles = 1024
    while cycles < 8 * width * width * 2:
        cycles *= 2
    return cycles


def fabric(routing_opts: RoutingOptions) -> SimulationConfig:
    """The frame-dominated 16x16 point with the given routing options."""
    platform = PlatformConfig(
        mesh_width=WIDTH, battery_capacity_pj=32_000_000.0
    )
    platform = PlatformConfig(
        mesh_width=WIDTH,
        battery_capacity_pj=32_000_000.0,
        compute_cycles={
            module: frame_cycles_for(WIDTH)
            for module in platform.compute_cycles
        },
    )
    return SimulationConfig(
        platform=platform,
        control=ControlConfig(frame_cycles=frame_cycles_for(WIDTH)),
        workload=WorkloadConfig(max_jobs=80),
        routing="ear",
        routing_opts=routing_opts,
        engine="vector",
    )


def main() -> None:
    arms = {
        "measure-only": RoutingOptions(
            congestion_aware=True, congestion_q=1.0
        ),
        "ecmp-only": RoutingOptions(
            congestion_aware=True, congestion_q=1.0, ecmp=True, ecmp_seed=7
        ),
        "full relief": RoutingOptions(
            congestion_aware=True, ecmp=True, ecmp_seed=7
        ),
    }
    summaries = {
        name: run_simulation(fabric(opts)).summary()
        for name, opts in arms.items()
    }

    print(f"=== {WIDTH}x{WIDTH} frame-dominated fabric, 80 jobs ===\n")
    rows = [
        [
            name,
            summary["max_link_traversals"],
            f"{100 * summary['hot_link_share']:.2f}%",
            summary["jobs_completed"],
            summary["lifetime_frames"],
        ]
        for name, summary in summaries.items()
    ]
    print(
        format_table(
            ["arm", "peak link traversals", "hot-link share",
             "jobs", "lifetime"],
            rows,
        )
    )

    report = congestion_comparison(
        summaries["measure-only"], summaries["full relief"]
    )
    print(
        f"\nfull relief cut the peak line's traffic by "
        f"{report['peak_reduction']} traversals "
        f"({100 * report['peak_reduction_fraction']:.1f}%)"
    )
    print(
        "lifetime never paid for the spread: "
        f"{report['lifetime_baseline_frames']} -> "
        f"{report['lifetime_relieved_frames']} frames "
        f"(gain {report['lifetime_gain_frames']})"
    )
    spread_works = (
        report["peak_reduction"] > 0
        and report["lifetime_gain_frames"] >= 0
    )
    print(f"hot-link spread without lifetime cost: {spread_works}")


if __name__ == "__main__":
    main()
