#!/usr/bin/env python
"""Population-scale fleets: from one garment to a product line.

Every result in the paper is one garment on the bench.  A shipped
product is a *population*: wearers differ in fabric size and how much
they move, garments go through the wash, and the harvest patches and
batteries come off manufacturing lots with real spread.  The
``repro.fleet`` package samples that population deterministically and
aggregates it in O(1) memory, so "how long does the p5 garment live?"
is one streaming pass, at any fleet size.

Three experiments:

1. a small fleet of the ``smoke`` preset, streamed through the runner
   with the live P² percentiles printed as they converge;
2. the same fleet split into two shards, aggregated independently and
   merged — bit-identical to the single stream, which is what lets
   fleets scale across processes or hosts;
3. one interesting garment pulled back out of the population: every
   sample is a pure function of ``(fleet_seed, index)``, so the
   shortest-lived wearer can be re-run alone and inspected.

Run:  python examples/fleet_playground.py
"""

import json

from repro.analysis import fleet_summary
from repro.fleet import (
    FLEET_PRESETS,
    FleetAggregator,
    aggregator_for,
    fleet_bundle,
    run_fleet,
)
from repro.sim.et_sim import run_simulation

FLEET_SEED = 42
FLEET_SIZE = 24
DIST = FLEET_PRESETS["smoke"]


def main() -> None:
    print("=== 1. Streaming a 24-garment fleet ===")
    aggregator = aggregator_for(DIST)
    checkpoints = {6, 12, 24}

    def live(record, done, size):
        if done in checkpoints:
            p50 = aggregator.stream_view()["lifetime_frames"]["p50"]
            print(
                f"  after {done:2d}/{size} garments: "
                f"live p50 lifetime ~ {p50:.0f} frames"
            )

    result = run_fleet(
        DIST, FLEET_SIZE, FLEET_SEED,
        aggregator=aggregator, progress=live,
    )
    bundle = fleet_bundle(DIST, FLEET_SIZE, FLEET_SEED, result)
    print()
    print(fleet_summary(bundle))

    print("\n=== 2. Two shards merge bit-identically ===")
    first = run_fleet(DIST, FLEET_SIZE // 2, FLEET_SEED, start=0)
    second = run_fleet(
        DIST, FLEET_SIZE - FLEET_SIZE // 2, FLEET_SEED,
        start=FLEET_SIZE // 2,
    )
    # Ship one shard's state as JSON (as a remote host would) and merge.
    merged = FleetAggregator.from_state(
        json.loads(json.dumps(first.aggregator.state_dict()))
    )
    merged.merge(second.aggregator)
    identical = json.dumps(
        merged.aggregate(), sort_keys=True
    ) == json.dumps(result.aggregator.aggregate(), sort_keys=True)
    print(f"  shard-merge == single stream, bit for bit: {identical}")

    print("\n=== 3. Re-running the unluckiest wearer alone ===")
    lifetimes = {
        index: run_simulation(
            DIST.garment_config(FLEET_SEED, index)
        ).summary()
        for index in range(FLEET_SIZE)
    }
    worst = min(lifetimes, key=lambda i: lifetimes[i]["lifetime_frames"])
    summary = lifetimes[worst]
    config = DIST.garment_config(FLEET_SEED, worst)
    print(
        f"  garment {worst}: died of {summary['death_cause']} at frame "
        f"{summary['lifetime_frames']} "
        f"({summary['jobs_fractional']:.1f} jobs)"
    )
    print(
        f"  its lot draw: battery {config.platform.battery_capacity_pj:.0f} "
        f"pJ, harvest "
        f"{'on' if config.harvest.is_active else 'off'}, "
        f"faults {config.faults.profile}"
    )
    print(
        "  reproducible from (fleet_seed, index) = "
        f"({FLEET_SEED}, {worst}) alone: "
        f"{config == DIST.garment_config(FLEET_SEED, worst)}"
    )


if __name__ == "__main__":
    main()
