#!/usr/bin/env python
"""Exploring the energy-harvesting subsystem.

Three short experiments on the paper's 4x4 platform:

1. recharge mechanics — a thin-film cell is drained, refilled, and
   climbs back up the discharge curve (DoD rollback), while a dead
   cell rejects income;
2. income profiles — how much energy `motion`, `solar` and `bus`
   schedules put back into the fabric, and what that buys in jobs
   against the harvest-free twin;
3. harvest-aware routing — reactive EAR vs `--harvest-weight` on the
   same income schedule (the controller learns per-node income rates
   and drains fat harvesting cells so their income is not rejected).

Run:  python examples/harvest_playground.py
"""

from dataclasses import replace

from repro.analysis import harvest_comparison_for, harvest_impact_for
from repro.analysis.tables import format_table
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters
from repro.config import SimulationConfig
from repro.harvest import HarvestConfig
from repro.sim.et_sim import run_simulation


def recharge_mechanics() -> None:
    print("1. recharge mechanics (thin-film DoD rollback)\n")
    battery = ThinFilmBattery(ThinFilmParameters())
    rows = []

    def snapshot(stage):
        rows.append(
            (
                stage,
                round(battery.depth_of_discharge, 3),
                round(battery.open_circuit_voltage, 3),
                round(battery.recharged_pj, 1),
                battery.alive,
            )
        )

    snapshot("fresh")
    battery.draw(30_000.0, 300_000)
    snapshot("half drained")
    battery.recharge(12_000.0)
    snapshot("refilled 12 nJ")
    battery.recharge(10**9)
    snapshot("over-refilled (capped)")
    while battery.alive:
        battery.draw(5_000.0, 5_000)
    snapshot("driven to death")
    rejected = battery.recharge(10_000.0)
    snapshot(f"post-death refill (accepted {rejected:g})")
    print(
        format_table(
            ["stage", "DoD", "OCV (V)", "recharged (pJ)", "alive"], rows
        )
    )


def income_profiles() -> None:
    print("\n2. what each income profile buys (vs harvest-free twin)\n")
    rows = []
    for profile in ("motion", "solar", "bus"):
        config = SimulationConfig(
            harvest=HarvestConfig(
                profile=profile, seed=7, amplitude_pj=60.0
            )
        )
        impact = harvest_impact_for(config)
        rows.append(
            (
                profile,
                impact["jobs_baseline"],
                impact["jobs_harvesting"],
                impact["delivery_gain"],
                impact["harvested_pj"],
                impact["shared_pj"],
            )
        )
    print(
        format_table(
            [
                "profile",
                "jobs (none)",
                "jobs (harvest)",
                "gain",
                "harvested pJ",
                "shared pJ",
            ],
            rows,
        )
    )


def harvest_aware_routing() -> None:
    print("\n3. reactive EAR vs the harvest-aware weight\n")
    config = SimulationConfig(
        harvest=HarvestConfig(profile="motion", seed=7, amplitude_pj=60.0)
    )
    record = harvest_comparison_for(config)
    rows = [(key, value) for key, value in record.items()]
    print(format_table(["metric", "value"], rows))
    aware = run_simulation(replace(config, harvest_aware=True)).summary()
    print(
        f"\nharvest-aware run: {aware['jobs_fractional']} jobs over "
        f"{aware['lifetime_frames']} frames, "
        f"{aware['harvested_pj']} pJ harvested in "
        f"{aware['harvest_events']} pulses"
    )


def main() -> None:
    recharge_mechanics()
    income_profiles()
    harvest_aware_routing()


if __name__ == "__main__":
    main()
