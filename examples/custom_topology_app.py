#!/usr/bin/env python
"""Using the routing core on a custom fabric and a custom application.

The paper stresses that "the methodology and theoretical results
presented here apply to any e-textile distributed system".  This example
exercises exactly that generality **without the mesh defaults**:

* a hand-woven, irregular fabric (a sleeve strip with a branch),
* a custom 2-module application profile (a sense->compress pipeline
  instead of AES),
* Theorem 1 evaluated for that application,
* the EAR engine driven directly through its three phases, showing how
  routing decisions change as batteries are reported lower.

Run:  python examples/custom_topology_app.py
"""

import numpy as np

from repro import ApplicationProfile, EnergyAwareRouting, theorem1
from repro.core.view import NetworkView
from repro.core.weights import BatteryWeightFunction
from repro.mesh.mapping import ModuleMapping
from repro.mesh.topology import Topology


def build_sleeve() -> Topology:
    """A sleeve strip 0-1-2-3-4-5 with a branch 2-6-7 (8 nodes).

    Long lines along the sleeve (4 cm), short lines on the branch (1 cm).
    """
    sleeve = Topology(8, name="sleeve-with-branch")
    for u, v in ((0, 1), (1, 2), (2, 3), (3, 4), (4, 5)):
        sleeve.add_edge(u, v, 4.0)
    sleeve.add_edge(2, 6, 1.0)
    sleeve.add_edge(6, 7, 1.0)
    return sleeve


def main() -> None:
    sleeve = build_sleeve()
    # Module 1 = sensing front-ends, module 2 = compressors.
    mapping = ModuleMapping(
        {0: 1, 1: 2, 2: 1, 3: 2, 4: 1, 5: 2, 6: 1, 7: 2},
        num_modules=2,
    )
    profile = ApplicationProfile(
        name="sense-compress",
        operations={1: 4, 2: 2},                  # f_i per job
        computation_energy_pj={1: 90.0, 2: 210.0},
        communication_energy_pj={1: 150.0, 2: 150.0},
    )

    bound = theorem1(profile, battery_budget_pj=60_000.0, node_budget=8)
    print("=== Custom fabric: sleeve strip with a branch ===\n")
    print(f"application: {profile.name}, H_i = "
          + ", ".join(
              f"H{m}={profile.normalized_energy(m):.0f} pJ"
              for m in profile.modules
          ))
    print(
        f"Theorem 1: J* = {bound.jobs:.1f} jobs; optimal duplicates "
        + ", ".join(
            f"n{m}*={n:.2f}" for m, n in bound.optimal_duplicates.items()
        )
    )

    engine = EnergyAwareRouting(BatteryWeightFunction(q=1.8, levels=8))

    def plan_for(levels: list[int]):
        view = NetworkView(
            lengths=sleeve.length_matrix(),
            alive=np.ones(8, dtype=bool),
            battery_levels=np.array(levels),
            levels=8,
            mapping=mapping,
        )
        return engine.compute_plan(view)

    fresh = plan_for([7] * 8)
    print("\nAll batteries full:")
    print(f"  node 4 sends compression jobs to node "
          f"{fresh.destination(4, 2)} "
          f"(path {fresh.path_to_module(4, 2)})")

    # Node 3's battery runs low: node 4 has a genuine alternative (the
    # equally-distant compressor at node 5), and EAR must take it.
    drained = plan_for([7, 7, 7, 0, 7, 7, 7, 7])
    dest = drained.destination(4, 2)
    path = drained.path_to_module(4, 2)
    print("\nNode 3 reports an empty battery:")
    print(f"  node 4 now sends compression jobs to node {dest} "
          f"(path {path})")
    assert dest != 3, "EAR should have avoided the depleted compressor"
    print("  -> EAR shifted the load to the charged duplicate.")

    # At a fabric end-point there may be no alternative at all: node 0's
    # only neighbour is node 1, so if node 1 drains, EAR can only keep
    # the single feasible path (and the controller's view shows why).
    endpoint = plan_for([7, 0, 7, 7, 7, 7, 7, 7])
    path = endpoint.path_to_module(0, 2)
    print("\nNode 1 (node 0's only neighbour) reports empty:")
    print(f"  node 0 still routes via {path} — a physical bottleneck no "
          "routing policy can avoid.")


if __name__ == "__main__":
    main()
