#!/usr/bin/env python
"""Body-scale fabrics on the vectorised engine.

The paper's et_sim walks one packet at a time, which is exactly right
for a 4x4 sleeve but painful for a whole garment: a 32x32 fabric has
1024 cells and its TDMA control section alone spans thousands of
cycles per frame. The ``vector`` engine keeps the same workload
semantics but stores every cell's battery in a struct-of-arrays bank
and applies each frame's accumulated load as one NumPy draw, which is
what makes the fabrics below finish in seconds.

Three experiments:

1. an engine race — one frame-dominated 16x16 configuration (module
   latencies stretched to a whole TDMA frame, the `engine-speed`
   bench scenario's point) on the sequential and vector engines,
   agreeing on jobs completed while the vector engine finishes an
   order of magnitude sooner;
2. a 32x32 "smart jacket" run, impractical on the scalar engines,
   job-capped so the example stays quick;
3. a 24x24 fabric run all the way to system death on a small battery.

Run:  python examples/vector_playground.py
"""

import time

from repro import (
    ControlConfig,
    PlatformConfig,
    SimulationConfig,
    WorkloadConfig,
    run_simulation,
)


def frame_cycles_for(width: int) -> int:
    """Grow the TDMA frame until its control section fits the mesh.

    The control section needs ~8 cycles per node; doubling keeps the
    frame a power of two like the paper's 1024-cycle default.
    """
    cycles = 1024
    while cycles < 8 * width * width * 2:
        cycles *= 2
    return cycles


def fabric(
    width: int,
    engine: str,
    max_jobs: int | None,
    capacity_pj: float = 500_000.0,
    slow_modules: bool = False,
) -> SimulationConfig:
    platform = PlatformConfig(
        mesh_width=width, battery_capacity_pj=capacity_pj
    )
    if slow_modules:
        # One whole frame per operation: the run becomes frame-count
        # dominated, which is the regime the vector engine exists for.
        platform = PlatformConfig(
            mesh_width=width,
            battery_capacity_pj=capacity_pj,
            compute_cycles={
                module: frame_cycles_for(width)
                for module in platform.compute_cycles
            },
        )
    return SimulationConfig(
        platform=platform,
        control=ControlConfig(frame_cycles=frame_cycles_for(width)),
        workload=WorkloadConfig(max_jobs=max_jobs),
        routing="ear",
        engine=engine,
    )


def timed(config: SimulationConfig):
    start = time.perf_counter()
    stats = run_simulation(config)
    return stats, time.perf_counter() - start


def main() -> None:
    print("=== 1. Engine race: one frame-dominated 16x16 fabric ===")
    elapsed = {}
    for engine in ("sequential", "vector"):
        config = fabric(
            16, engine, max_jobs=40,
            capacity_pj=32_000_000.0, slow_modules=True,
        )
        stats, seconds = timed(config)
        elapsed[engine] = seconds
        summary = stats.summary()
        print(
            f"  {engine:10s}  {summary['jobs_completed']:3d} jobs, "
            f"{summary['lifetime_frames']:5d} frames, {seconds:6.2f}s"
        )
    speedup = elapsed["sequential"] / elapsed["vector"]
    print(f"  vector engine speedup: x{speedup:.1f}")

    print("\n=== 2. A 32x32 smart jacket (1024 cells), job-capped ===")
    config = fabric(32, "vector", max_jobs=120)
    stats, seconds = timed(config)
    summary = stats.summary()
    print(f"  frame length: {config.control.frame_cycles} cycles")
    print(
        f"  {summary['jobs_completed']} jobs in "
        f"{summary['lifetime_frames']} frames "
        f"({summary['death_cause']}), {seconds:.2f}s wall clock"
    )
    print(f"  total hops: {summary['total_hops']}")

    print("\n=== 3. A 24x24 fabric run to system death ===")
    config = fabric(24, "vector", max_jobs=None, capacity_pj=100_000.0)
    stats, seconds = timed(config)
    summary = stats.summary()
    print(
        f"  {summary['jobs_completed']} jobs before {summary['death_cause']} "
        f"at frame {summary['lifetime_frames']}, {seconds:.2f}s wall clock"
    )


if __name__ == "__main__":
    main()
