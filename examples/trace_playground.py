#!/usr/bin/env python
"""Watching a congestion-relief run re-plan, through the telemetry layer.

Every engine, the control plane and the sweep runners emit telemetry
through one tiny ``Recorder`` interface.  The default ``NullRecorder``
is gated out of the hot paths entirely — a recorder-free run executes
the exact pre-telemetry instruction stream — while a ``TraceRecorder``
captures a structured trace: per-frame probes (alive count,
state-of-charge quantiles, in-flight jobs), quantised link load/wear
level crossings, and discrete events (re-plans with per-cost-term
attribution, faults, deadlock reports, node deaths).

This example runs the congestion-relief smoke point (4x4 mesh, ECMP +
congestion cost term) three ways and shows:

1. **bit-identity** — the summaries with no recorder, the null
   recorder and a full trace recorder are exactly equal;
2. **the re-plan story** — which frames recomputed the routing plan,
   why (battery level crossings vs load level crossings), and how hard
   each cost-pipeline term scaled the links it touched;
3. **the two channels** — ``deterministic_lines()`` repeats exactly
   across runs, while the wall-clock timers live in one trailing
   ``timers`` line that strips away.

Run:  python examples/trace_playground.py
"""

from repro.analysis.trace_summary import trace_summary
from repro.orchestration import build_scenario
from repro.sim.et_sim import run_simulation
from repro.telemetry import NULL_RECORDER, TraceRecorder


def relief_point():
    """The congestion-relief smoke point the CI acceptance trace uses."""
    return next(
        point
        for point in build_scenario("congestion-relief", scale="smoke")
        if point.label == "4x4/relief"
    )


def main() -> None:
    point = relief_point()
    print(f"=== tracing {point.label} (congestion-relief smoke) ===\n")

    # 1. Telemetry never changes what the simulation computes.
    bare = run_simulation(point.config).summary()
    null = run_simulation(point.config, NULL_RECORDER).summary()
    recorder = TraceRecorder()
    traced = run_simulation(point.config, recorder).summary()
    print(f"bare == null-recorder == traced: {bare == null == traced}")
    print(
        f"jobs {traced['jobs_completed']}, "
        f"lifetime {traced['lifetime_frames']} frames, "
        f"{len(recorder.events)} trace line(s) captured\n"
    )

    # 2. The re-plan story: causes and per-term attribution.
    print(trace_summary(recorder.lines(meta={"label": point.label})))

    # 3. Deterministic channel vs wall-clock channel.
    repeat = TraceRecorder()
    run_simulation(point.config, repeat)
    deterministic = (
        recorder.deterministic_lines() == repeat.deterministic_lines()
    )
    print(f"\ndeterministic channel repeats exactly: {deterministic}")
    timers = recorder.timer_stats()
    print(
        f"wall-clock channel: {len(timers)} timer(s) "
        f"({', '.join(sorted(timers))}) — stripped by "
        "deterministic_lines()"
    )

    replans = [
        line for line in recorder.events if line.get("event") == "replan"
    ]
    congested = sum(
        1
        for line in replans
        if any(
            row["term"] == "congestion" and row["links_scaled"]
            for row in line.get("terms", [])
        )
    )
    print(
        f"{len(replans)} re-plan(s); {congested} steered by the "
        "congestion term"
    )


if __name__ == "__main__":
    main()
