#!/usr/bin/env python
"""Exploring the thin-film battery model (paper Fig 2 and Sec 5.1.3).

Discharges identical cells under three load patterns and prints their
voltage trajectories side by side, showing the three effects the
simulator's lifetime results rest on:

1. the discharge-profile plateau and knee (Fig 2's shape),
2. IR sag under sustained load -> early 3.0 V death with stranded
   energy,
3. the rate-capacity penalty -> less total energy delivered at high
   duty cycles.

Run:  python examples/battery_playground.py
"""

from repro.analysis.tables import format_table
from repro.battery.thin_film import ThinFilmBattery, ThinFilmParameters


def discharge(name, step_pj, rest_cycles):
    """Discharge a fresh default cell; return (name, trace, battery)."""
    battery = ThinFilmBattery(ThinFilmParameters())
    trace = []
    while battery.alive:
        trace.append(
            (
                battery.delivered_pj,
                battery.open_circuit_voltage,
                battery.voltage,
                battery.smoothed_current_ma,
            )
        )
        battery.draw(step_pj, 25)
        battery.rest(rest_cycles)
    return name, trace, battery


def main() -> None:
    runs = [
        discharge("duty ~0.1% (idle node)", step_pj=60.0, rest_cycles=40_000),
        discharge("duty ~2% (shared load)", step_pj=120.0, rest_cycles=4_000),
        discharge("duty ~20% (hammered)", step_pj=300.0, rest_cycles=400),
    ]

    print("=== Li-free thin-film cell, 60 000 pJ nominal, 3.0 V cut-off ===")
    for name, trace, battery in runs:
        print(f"\n--- {name} ---")
        samples = trace[:: max(1, len(trace) // 8)]
        rows = [
            (
                f"{delivered:8.0f}",
                f"{ocv:5.2f}",
                f"{loaded:5.2f}",
                f"{current * 1e3:6.1f}",
            )
            for delivered, ocv, loaded, current in samples
        ]
        print(
            format_table(
                ["delivered pJ", "OCV (V)", "loaded (V)", "I (uA)"],
                rows,
            )
        )
        usable = battery.delivered_pj / battery.nominal_capacity_pj
        print(
            f"delivered {battery.delivered_pj:.0f} pJ "
            f"({usable:.0%} of nominal), "
            f"rate-capacity loss {battery.loss_pj:.0f} pJ, "
            f"stranded {battery.wasted_pj:.0f} pJ"
        )

    print(
        "\nThis asymmetry is why EAR wins: SDR drives a few nodes at the "
        "hammered duty cycle\n(dying at shallow depth of discharge), while "
        "EAR keeps every cell in the gentle regime."
    )


if __name__ == "__main__":
    main()
