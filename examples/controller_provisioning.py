#!/usr/bin/env python
"""Provisioning central controllers for an e-textile (paper Sec 7.3).

Answers the deployment question behind Fig 8: *how many battery-powered
central controllers should a fabric of a given size carry?*  For each
mesh size the script sweeps the controller count, finds the knee of the
lifetime curve (the smallest count within 5 % of the node-limited
plateau), and prints a provisioning recommendation.

Run:  python examples/controller_provisioning.py
"""

from repro import ControlConfig, PlatformConfig, SimulationConfig
from repro.analysis.tables import format_table
from repro.sim.et_sim import run_simulation


def jobs_with_controllers(width: int, count: int | None) -> float:
    control = (
        ControlConfig()
        if count is None
        else ControlConfig(
            num_controllers=count, controller_battery="thin-film"
        )
    )
    config = SimulationConfig(
        platform=PlatformConfig(mesh_width=width),
        control=control,
        routing="ear",
    )
    return run_simulation(config).jobs_fractional


def main() -> None:
    counts = (1, 2, 4, 7, 10)
    print("=== Controller provisioning (EAR, thin-film batteries) ===\n")
    rows = []
    recommendations = {}
    for width in (4, 5, 6):
        plateau = jobs_with_controllers(width, None)  # infinite controller
        sweep = {c: jobs_with_controllers(width, c) for c in counts}
        knee = next(
            (c for c in counts if sweep[c] >= 0.95 * plateau),
            counts[-1],
        )
        recommendations[width] = knee
        rows.append(
            (
                f"{width}x{width}",
                round(plateau, 1),
                *(round(sweep[c], 1) for c in counts),
                knee,
            )
        )
    print(
        format_table(
            [
                "mesh",
                "plateau",
                *(f"{c} ctrl" for c in counts),
                "recommended",
            ],
            rows,
        )
    )
    print(
        "\nReading: the recommendation is the smallest fail-over chain "
        "within 5% of the\nnode-limited plateau.  Bigger fabrics need "
        "more controllers because each\ncontroller burns more per frame "
        "(larger Floyd-Warshall, more status uploads) —\nthe effect "
        "behind the decreasing tails of the paper's Fig 8."
    )


if __name__ == "__main__":
    main()
