#!/usr/bin/env python
"""The paper's motivating scenario: a smart shirt encrypting sensor data.

Fig 3(a) of the paper sketches a shirt with a sensor/actuator block wired
to a region of computational modules and batteries that performs
distributed AES encryption.  This example models that shirt end to end:

* a 6x6 encryption region woven from ~2 cm textile links,
* the sensor block attached by a 10 cm line to a corner of the region,
* ciphertexts delivered back to the sensor block (return_to_sink), as a
  WLAN radio in the block would transmit them (802.11i motivates AES in
  the paper's introduction),
* concurrent sensor readings (4 jobs in flight) through the buffered
  network with deadlock recovery enabled.

The run prints per-module load, where energy went, and the lifetime of
the shirt under EAR vs SDR.

Run:  python examples/smart_shirt_aes.py
"""

from repro import (
    PlatformConfig,
    SimulationConfig,
    WorkloadConfig,
    run_simulation,
)
from repro.aes.dataflow import MODULE_NAMES
from repro.sim.et_sim import EtSim


def shirt_config(routing: str) -> SimulationConfig:
    return SimulationConfig(
        platform=PlatformConfig(
            mesh_width=6,
            source_attach_xy=(1, 1),     # sensor wired to the corner
            source_link_cm=10.0,         # across the shoulder seam
            return_to_sink=True,         # ciphertext back to the radio
            node_buffer_packets=2,
        ),
        workload=WorkloadConfig(
            kind="concurrent",
            concurrency=4,               # sensor batches 4 readings
            seed=1,
        ),
        routing=routing,
    )


def main() -> None:
    print("=== Smart shirt: distributed AES over a 6x6 woven region ===\n")

    lifetimes = {}
    for routing in ("ear", "sdr"):
        engine = EtSim(shirt_config(routing)).build_engine()
        stats = engine.run()
        lifetimes[routing] = stats

        print(f"--- {routing.upper()} ---")
        print(
            f"encrypted readings delivered: {stats.jobs_completed} "
            f"(+{stats.partial_progress:.1f} in flight at death)"
        )
        print(
            f"system died of {stats.death_cause} after "
            f"{stats.lifetime_frames} TDMA frames"
        )
        print(
            f"deadlocks: {stats.deadlocks_reported} reported, "
            f"{stats.deadlocks_recovered} recovered"
        )

        # Per-module load distribution.
        by_module: dict[int, list[float]] = {1: [], 2: [], 3: []}
        for node in range(engine.num_mesh_nodes):
            module = engine.mapping.module_of(node)
            by_module[module].append(
                engine.ledger.nodes[node].operations
            )
        for module, ops in by_module.items():
            total = sum(ops)
            spread = max(ops) - min(ops)
            print(
                f"  {MODULE_NAMES[module]:28s}: {total:5.0f} ops over "
                f"{len(ops)} duplicates (max-min spread {spread:.0f})"
            )
        ledger = stats.energy
        print(
            f"  energy: compute {ledger.compute_pj / 1e3:.0f} nJ, "
            f"data {ledger.data_tx_pj / 1e3:.0f} nJ, "
            f"control medium {ledger.control_medium_pj / 1e3:.1f} nJ\n"
        )

    gain = (
        lifetimes["ear"].jobs_fractional
        / lifetimes["sdr"].jobs_fractional
    )
    print(
        f"EAR kept the shirt encrypting {gain:.1f}x longer than "
        "shortest-distance routing."
    )


if __name__ == "__main__":
    main()
