#!/usr/bin/env python
"""Quickstart: run one e-textile platform to system death.

Builds the paper's default platform — a 4x4 mesh of AES nodes with
thin-film batteries, a TDMA control plane and the EAR routing
algorithm — runs it until the critical nodes die, and prints what
happened, including the comparison against the SDR baseline and against
Theorem 1's analytical bound.

Run:  python examples/quickstart.py

For whole sweep grids (the paper's Fig 7/8 and Table 2 plus larger
extension scenarios), use the orchestration CLI instead — it fans
points over worker processes and caches finished results:

    PYTHONPATH=src python -m repro bench --smoke          # tiny CI grid
    PYTHONPATH=src python -m repro bench --scenario fig7 --workers 0 --cache
"""

from repro import (
    PlatformConfig,
    SimulationConfig,
    run_simulation,
    theorem1,
)
from repro.analysis.theory import profile_for


def main() -> None:
    results = {}
    for routing in ("ear", "sdr"):
        config = SimulationConfig(
            platform=PlatformConfig(mesh_width=4),
            routing=routing,
        )
        results[routing] = run_simulation(config)

    ear, sdr = results["ear"], results["sdr"]
    print("=== 4x4 e-textile mesh, AES-128, thin-film batteries ===\n")
    for name, stats in results.items():
        print(
            f"{name.upper():4s}: {stats.jobs_fractional:6.1f} jobs, "
            f"lifetime {stats.lifetime_frames} frames, "
            f"died of {stats.death_cause}, "
            f"control overhead {stats.control_overhead_fraction:.1%}"
        )
    print(
        f"\nEAR completed {ear.jobs_fractional / sdr.jobs_fractional:.1f}x "
        "more encryption jobs than shortest-distance routing\n"
        "(paper Fig 7 reports gains of 5-15x)."
    )

    # How close is EAR to the analytical optimum (paper Theorem 1)?
    config = SimulationConfig(platform=PlatformConfig(mesh_width=4))
    bound = theorem1(
        profile_for(config),
        battery_budget_pj=config.platform.battery_capacity_pj,
        node_budget=config.platform.num_mesh_nodes,
    )
    print(
        f"Theorem 1 upper bound: {bound.jobs:.1f} jobs -> EAR achieved "
        f"{ear.jobs_fractional / bound.jobs:.0%} of the theoretical "
        "optimum (paper Table 2: 44.5-48.2%)."
    )

    # Every completed job carried a real AES state through the fabric and
    # was verified against the reference cipher:
    assert ear.verification_failures == 0
    print(
        f"\nAll {ear.jobs_completed} completed jobs were bit-exact "
        "AES-128 encryptions (verified against FIPS-197)."
    )


if __name__ == "__main__":
    main()
