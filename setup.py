"""Legacy setup shim.

All project metadata lives in pyproject.toml; this file only exists so
``pip install -e .`` works in offline environments whose setuptools
cannot build wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
