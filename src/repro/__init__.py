"""repro — reproduction of "Energy-Aware Routing for E-Textile
Applications" (Kao & Marculescu, DATE 2005).

The package provides:

* the **EAR** energy-aware routing algorithm and its **SDR** baseline
  (:mod:`repro.core`),
* **Theorem 1**'s analytical upper bound on completed jobs
  (:func:`repro.core.theorem1`),
* the **et_sim** e-textile platform simulator — thin-film batteries,
  textile transmission lines, TDMA control, central controllers,
  deadlock recovery (:mod:`repro.sim`),
* a complete **AES-128/192/256** implementation partitioned into the
  paper's three hardware modules (:mod:`repro.aes`),
* sweep/tabulation/calibration tooling (:mod:`repro.analysis`).

Quickstart::

    from repro import SimulationConfig, PlatformConfig, run_simulation

    config = SimulationConfig(
        platform=PlatformConfig(mesh_width=4), routing="ear"
    )
    stats = run_simulation(config)
    print(stats.jobs_fractional, "jobs before system death")
"""

from .config import (
    ControlConfig,
    PlatformConfig,
    SimulationConfig,
    WorkloadConfig,
)
from .core.engines import (
    EnergyAwareRouting,
    RoutingEngine,
    ShortestDistanceRouting,
    routing_engine,
)
from .core.parameters import ApplicationProfile
from .core.upper_bound import UpperBoundResult, optimize_duplicates, theorem1
from .core.weights import BatteryWeightFunction
from .errors import ReproError
from .sim.et_sim import EtSim, run_simulation
from .sim.stats import SimulationStats
from .version import PAPER_CITATION, __version__

__all__ = [
    "ApplicationProfile",
    "BatteryWeightFunction",
    "ControlConfig",
    "EnergyAwareRouting",
    "EtSim",
    "PAPER_CITATION",
    "PlatformConfig",
    "ReproError",
    "RoutingEngine",
    "ShortestDistanceRouting",
    "SimulationConfig",
    "SimulationStats",
    "UpperBoundResult",
    "WorkloadConfig",
    "__version__",
    "optimize_duplicates",
    "routing_engine",
    "run_simulation",
    "theorem1",
]
