"""Energy-versus-length model of a textile transmission line."""

from __future__ import annotations

import bisect

from ..errors import ConfigurationError
from ..units import require_positive
from .spice_data import MEASURED_POINTS


class TransmissionLineModel:
    """Per-bit-switch transmission energy as a function of line length.

    The model is a monotone piecewise-linear interpolation through the
    paper's published SPICE values.  For lengths below the shortest
    measured line (1 cm) the energy is interpolated toward the origin —
    a zero-length line dissipates nothing.  For lengths beyond the
    longest measured line the final segment's slope is extrapolated.

    Custom measurement points can be supplied to model other fabrics.

    Example:
        >>> line = TransmissionLineModel()
        >>> line.energy_per_bit_switch_pj(10.0)
        4.4472
    """

    def __init__(
        self, points: tuple[tuple[float, float], ...] = MEASURED_POINTS
    ):
        if len(points) < 2:
            raise ConfigurationError(
                "a transmission-line model needs >= 2 measured points"
            )
        pts = tuple(sorted((float(l), float(e)) for l, e in points))
        lengths = [p[0] for p in pts]
        energies = [p[1] for p in pts]
        if lengths[0] <= 0:
            raise ConfigurationError("measured line lengths must be positive")
        if any(b <= a for a, b in zip(lengths, lengths[1:])):
            raise ConfigurationError("measured line lengths must be distinct")
        if any(e <= 0 for e in energies):
            raise ConfigurationError("measured line energies must be positive")
        if any(b <= a for a, b in zip(energies, energies[1:])):
            raise ConfigurationError(
                "line energy must increase with length "
                "(longer lines dissipate more)"
            )
        self._points = pts
        self._lengths = lengths
        self._energies = energies

    @property
    def points(self) -> tuple[tuple[float, float], ...]:
        """The (length_cm, pJ/bit-switch) anchor points."""
        return self._points

    def energy_per_bit_switch_pj(self, length_cm: float) -> float:
        """Energy in pJ dissipated by one bit-switch on a line of
        ``length_cm`` centimetres."""
        require_positive("length_cm", length_cm)
        lengths, energies = self._lengths, self._energies
        if length_cm <= lengths[0]:
            # Interpolate toward the origin: E(0) = 0.
            return energies[0] * (length_cm / lengths[0])
        if length_cm >= lengths[-1]:
            slope = (energies[-1] - energies[-2]) / (lengths[-1] - lengths[-2])
            return energies[-1] + slope * (length_cm - lengths[-1])
        idx = bisect.bisect_right(lengths, length_cm)
        l0, l1 = lengths[idx - 1], lengths[idx]
        e0, e1 = energies[idx - 1], energies[idx]
        frac = (length_cm - l0) / (l1 - l0)
        return e0 + frac * (e1 - e0)

    def length_for_energy(self, energy_pj_per_bit: float) -> float:
        """Inverse lookup: line length whose per-bit-switch energy equals
        ``energy_pj_per_bit``.  Used by the Table 2 calibration helper.
        """
        require_positive("energy_pj_per_bit", energy_pj_per_bit)
        lengths, energies = self._lengths, self._energies
        if energy_pj_per_bit <= energies[0]:
            return lengths[0] * (energy_pj_per_bit / energies[0])
        if energy_pj_per_bit >= energies[-1]:
            slope = (energies[-1] - energies[-2]) / (lengths[-1] - lengths[-2])
            return lengths[-1] + (energy_pj_per_bit - energies[-1]) / slope
        idx = bisect.bisect_right(energies, energy_pj_per_bit)
        l0, l1 = lengths[idx - 1], lengths[idx]
        e0, e1 = energies[idx - 1], energies[idx]
        frac = (energy_pj_per_bit - e0) / (e1 - e0)
        return l0 + frac * (l1 - l0)
