"""Per-hop link energy and timing calculator."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import require_positive
from .packet import PacketFormat
from .transmission_line import TransmissionLineModel


@dataclass(frozen=True)
class LinkEnergyModel:
    """Combines a line model with a packet format.

    This is the single place where "energy consumed on transmitting a
    packet over these transmission lines" (paper Sec 5.1.2) is computed:
    per-bit-switch energy at the line's length, times the packet's
    switched bits.  The transmit cost is charged to the *sending* node,
    matching the paper's definition of ``C_j`` (energy spent transmitting
    own packets or relaying others').

    Attributes:
        line: The textile line energy/length model.
        packet: The fixed packet format of the data network.
        link_width_bits: Parallel width of a data link (textile lines are
            single threads, so serial width 1 by default).
    """

    line: TransmissionLineModel = field(default_factory=TransmissionLineModel)
    packet: PacketFormat = field(default_factory=PacketFormat)
    link_width_bits: int = 1

    def hop_energy_pj(self, length_cm: float) -> float:
        """Energy charged to the sender for one packet over one hop."""
        require_positive("length_cm", length_cm)
        per_bit = self.line.energy_per_bit_switch_pj(length_cm)
        return per_bit * self.packet.switched_bits

    def hop_cycles(self) -> int:
        """Serialisation delay of one packet over one hop."""
        return self.packet.serialization_cycles(self.link_width_bits)

    def path_energy_pj(self, hop_lengths_cm: list[float]) -> float:
        """Total transmit energy along a multi-hop path."""
        return sum(self.hop_energy_pj(length) for length in hop_lengths_cm)

    def bits_energy_pj(self, bits: float, length_cm: float) -> float:
        """Energy for an arbitrary number of switched bits on a line.

        Used for the narrow shared control medium, whose transfers are
        not full data packets.
        """
        require_positive("length_cm", length_cm)
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return self.line.energy_per_bit_switch_pj(length_cm) * bits
