"""Textile transmission-line substrate.

Models the dedicated point-to-point data links of the e-textile platform:
polyester yarns twisted with a 40 um copper thread, characterised
electrically in Cottet et al. [6].  The paper runs SPICE on those
characteristics and reports energy per bit-switch for four line lengths
(Sec 5.1.2); this package reproduces those values exactly and
interpolates between them, then converts packet descriptions into per-hop
transmission energies and serialisation delays.
"""

from .energy import LinkEnergyModel
from .packet import PacketFormat
from .spice_data import MEASURED_LINE_ENERGIES_PJ_PER_BIT
from .transmission_line import TransmissionLineModel

__all__ = [
    "LinkEnergyModel",
    "MEASURED_LINE_ENERGIES_PJ_PER_BIT",
    "PacketFormat",
    "TransmissionLineModel",
]
