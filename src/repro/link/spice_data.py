"""Published SPICE-derived textile line energies.

The paper extracts the electrical characteristics of textile transmission
lines from Cottet et al. [6] ("fabrics containing polyester yarns twisted
with one copper thread of 40 um diameter, insulated with a polyesterimide
coating"), runs SPICE, and reports the energy per bit-switching activity
for four line lengths (Sec 5.1.2).  These constants are reproduced
verbatim; everything else in :mod:`repro.link` derives from them.
"""

from __future__ import annotations

#: Energy per bit-switch in pJ, keyed by line length in cm (Sec 5.1.2).
MEASURED_LINE_ENERGIES_PJ_PER_BIT: dict[float, float] = {
    1.0: 0.4472,
    10.0: 4.4472,
    20.0: 11.867,
    100.0: 53.082,
}

#: The measured points as a sorted tuple of (length_cm, pJ/bit-switch).
MEASURED_POINTS: tuple[tuple[float, float], ...] = tuple(
    sorted(MEASURED_LINE_ENERGIES_PJ_PER_BIT.items())
)
