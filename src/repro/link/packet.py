"""Fixed-length packet format of the e-textile network.

The paper's modules "cooperate ... by exchanging packets of fixed length"
(Sec 3) and the per-line SPICE energies are "multiplied by the packet
size" to obtain per-hop transmission energies (Sec 5.1.2).  The packet
format captures size and switching statistics; the sim-level packet
objects (carrying actual AES state) reference a format instance for all
energy and timing computations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class PacketFormat:
    """Size and switching statistics of one network packet.

    Attributes:
        payload_bits: Application payload (128 for one AES state).
        header_bits: Routing/framing overhead bits carried per hop.
        switching_activity: Fraction of bits that toggle per transfer.
            The paper multiplies per-bit-switch energy by the packet size
            directly, i.e. activity 1.0; lower values model correlated
            data.
    """

    payload_bits: int = 128
    header_bits: int = 0
    switching_activity: float = 1.0

    def __post_init__(self) -> None:
        if self.payload_bits <= 0:
            raise ConfigurationError(
                f"payload_bits must be positive, got {self.payload_bits}"
            )
        if self.header_bits < 0:
            raise ConfigurationError(
                f"header_bits must be non-negative, got {self.header_bits}"
            )
        if not 0.0 < self.switching_activity <= 1.0:
            raise ConfigurationError(
                "switching_activity must lie in (0, 1], got "
                f"{self.switching_activity}"
            )

    @property
    def total_bits(self) -> int:
        """Wire bits per packet (payload plus header)."""
        return self.payload_bits + self.header_bits

    @property
    def switched_bits(self) -> float:
        """Expected number of bit-switches per transfer."""
        return self.total_bits * self.switching_activity

    def serialization_cycles(self, link_width_bits: int = 1) -> int:
        """Cycles to clock the packet over a ``link_width_bits``-wide line.

        Textile data lines are single twisted copper threads, i.e. serial
        (width 1) by default.
        """
        if link_width_bits <= 0:
            raise ConfigurationError(
                f"link width must be positive, got {link_width_bits}"
            )
        return -(-self.total_bits // link_width_bits)  # ceil division
