"""Single source of truth for the package version."""

__version__ = "1.0.0"

#: Reference to the reproduced paper, used in CLI banners and reports.
PAPER_CITATION = (
    "Jung-Chun Kao and Radu Marculescu, "
    '"Energy-Aware Routing for E-Textile Applications", '
    "Proc. Design, Automation and Test in Europe (DATE), 2005."
)
