"""Physical units and conversion helpers.

The library keeps all quantities in a fixed set of base units so that
numeric values can be combined without conversion mistakes:

========================  =======================================
Quantity                  Base unit
========================  =======================================
Energy                    picojoule (pJ)
Power                     milliwatt (mW) at model boundaries,
                          converted to pJ/cycle internally
Time                      clock cycle of the platform clock
Voltage                   volt (V)
Current                   milliampere (mA)
Length                    centimetre (cm)
========================  =======================================

The paper reports module energies in pJ, line energies in pJ per
bit-switch, controller power in mW at a 100 MHz clock, and battery
capacity in pJ, which makes this choice of base units the one with the
fewest conversions.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Default platform clock frequency used throughout the paper (Sec 5.1.1).
DEFAULT_CLOCK_HZ = 100_000_000.0

#: Seconds per clock cycle at the default 100 MHz clock.
DEFAULT_CYCLE_SECONDS = 1.0 / DEFAULT_CLOCK_HZ

PJ_PER_J = 1e12
MW_PER_W = 1e3


def mw_to_pj_per_cycle(power_mw: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert a power in milliwatts to energy per clock cycle in pJ.

    Example: the paper's 4x4 mesh controller consumes a dynamic power of
    6.94 mW at 100 MHz, i.e. ``mw_to_pj_per_cycle(6.94) == 69.4`` pJ per
    cycle.
    """
    if clock_hz <= 0:
        raise ConfigurationError(f"clock frequency must be positive, got {clock_hz}")
    watts = power_mw / MW_PER_W
    joules_per_cycle = watts / clock_hz
    return joules_per_cycle * PJ_PER_J


def pj_per_cycle_to_mw(energy_pj: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert an energy per clock cycle in pJ back to milliwatts."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock frequency must be positive, got {clock_hz}")
    joules_per_cycle = energy_pj / PJ_PER_J
    return joules_per_cycle * clock_hz * MW_PER_W


def cycles_to_seconds(cycles: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock frequency must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert seconds to (possibly fractional) clock cycles."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock frequency must be positive, got {clock_hz}")
    return seconds * clock_hz


def average_current_ma(
    energy_pj: float, cycles: float, voltage: float,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> float:
    """Average current in mA of a draw of ``energy_pj`` over ``cycles``.

    ``I = P / V`` with ``P = E / t``.  Used by the discrete-time battery
    model to turn per-event energy draws into load currents.
    """
    if cycles <= 0:
        raise ConfigurationError(f"duration must be positive, got {cycles} cycles")
    if voltage <= 0:
        raise ConfigurationError(f"voltage must be positive, got {voltage}")
    watts = (energy_pj / PJ_PER_J) / cycles_to_seconds(cycles, clock_hz)
    amps = watts / voltage
    return amps * 1e3


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive; return it unchanged."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0; return it unchanged."""
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value
