"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime
simulation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is missing, inconsistent, or out of range."""


class TopologyError(ReproError):
    """The network topology is malformed (unknown node, bad edge, ...)."""


class MappingError(ReproError):
    """A module-to-node mapping is invalid for the given topology."""


class RoutingError(ReproError):
    """A routing engine could not produce a usable routing plan."""


class UnreachableModuleError(RoutingError):
    """No live duplicate of a required module type is reachable.

    In the paper's terminology the *critical nodes* are dead: raising this
    error is how the routing layer signals system death to the simulator.
    """

    def __init__(self, module: int, origin: int | None = None):
        self.module = module
        self.origin = origin
        where = f" from node {origin}" if origin is not None else ""
        super().__init__(
            f"no live, reachable duplicate of module {module}{where}"
        )


class BatteryError(ReproError):
    """A battery model was used inconsistently (e.g. drawing from a dead cell)."""


class DeadNodeError(ReproError):
    """An operation was attempted on a node whose battery is depleted."""

    def __init__(self, node: int, action: str = "operate"):
        self.node = node
        self.action = action
        super().__init__(f"node {node} is dead and cannot {action}")


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ShardError(ReproError):
    """A sharded fleet run could not complete.

    Raised by the shard driver when a shard keeps failing after its
    retry budget is exhausted, or when a worker times out / crashes in
    a way that cannot be recovered by re-running the shard.
    """


class VerificationError(SimulationError):
    """A completed job's payload failed functional verification.

    The et_sim reproduction carries real AES state through the network and
    checks the ciphertext of every completed job against the FIPS-197
    reference cipher; a mismatch means the simulator corrupted data.
    """


class CalibrationError(ReproError):
    """A calibration routine could not match its target values."""
