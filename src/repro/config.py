"""Configuration objects for the et_sim platform.

All experiment knobs live here as frozen dataclasses with validation and
dict round-tripping, so that every run is fully described by a plain
(JSON-serialisable) document.  The defaults reproduce the paper's
platform: 2-D mesh with ~2 cm textile links, 128-bit packets, 60 000 pJ
thin-film batteries, 8-level battery reporting, a 2-bit TDMA control
medium, one infinite-energy controller, checkerboard AES mapping and the
EAR routing algorithm.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass, field, replace

from .battery.ideal import IdealBattery
from .battery.thin_film import ThinFilmBattery, ThinFilmParameters
from .control.controller_power import ControllerEnergyModel
from .control.deadlock import DeadlockPolicy
from .control.tdma import (
    DEFAULT_FRAME_CYCLES,
    DEFAULT_MEDIUM_SEGMENT_CM,
    DEFAULT_MEDIUM_WIDTH_BITS,
    DEFAULT_STATUS_BITS,
    DEFAULT_TABLE_ENTRY_BITS,
    TdmaSchedule,
)
from .core.weights import (
    DEFAULT_CONGESTION_Q,
    DEFAULT_CONGESTION_QUANTUM,
    DEFAULT_HARVEST_Q,
    DEFAULT_HARVEST_QUANTUM,
    DEFAULT_Q,
    DEFAULT_WEAR_Q,
    DEFAULT_WEAR_QUANTUM,
    BatteryWeightFunction,
    CongestionWeightFunction,
    HarvestWeightFunction,
    WearWeightFunction,
)
from .errors import ConfigurationError
from .faults.config import FaultConfig
from .harvest.config import HarvestConfig, HarvestHardware
from .link.energy import LinkEnergyModel
from .link.packet import PacketFormat
from .mesh.mapping import (
    ModuleMapping,
    checkerboard_mapping,
    harvest_proportional_mapping,
    proportional_mapping,
    uniform_mapping,
)
from .mesh.topology import DEFAULT_LINK_PITCH_CM, Topology, mesh2d

#: Battery model identifiers.
BATTERY_MODELS = ("thin-film", "ideal")

#: Mapping strategy identifiers.
MAPPING_STRATEGIES = (
    "checkerboard",
    "proportional",
    "uniform",
    "harvest-proportional",
)

#: Routing algorithm identifiers.
ROUTING_ALGORITHMS = ("ear", "sdr")

#: Engine identifiers accepted by :attr:`SimulationConfig.engine`.
#: ``"auto"`` resolves from the workload kind (the pre-registry
#: behaviour); the concrete names index ``repro.sim.ENGINE_REGISTRY``.
ENGINE_NAMES = ("auto", "sequential", "concurrent", "vector")

#: Default per-operation computation latencies in cycles, per module.
#: Scaled against the measured module energies at a ~10 mW class power
#: envelope; absolute values only affect time interleaving, not energy.
DEFAULT_COMPUTE_CYCLES: dict[int, int] = {1: 12, 2: 8, 3: 18}

#: Default AES key (the FIPS-197 Appendix B key) used by workloads.
DEFAULT_AES_KEY_HEX = "2b7e151628aed2a6abf7158809cf4f3c"


@dataclass(frozen=True)
class PlatformConfig:
    """Physical platform: mesh, links, packets, batteries, application.

    Attributes:
        mesh_width / mesh_height: Mesh dimensions (height defaults to
            width).
        link_pitch_cm: Textile line length between adjacent nodes.
        packet_payload_bits / packet_header_bits / switching_activity:
            Packet format of the data network.
        link_width_bits: Serial width of a data line.
        battery_model: ``"thin-film"`` (Fig 7/8) or ``"ideal"``
            (Table 2).
        battery_capacity_pj: Per-node budget ``B``.
        thin_film: Electrical parameters of the thin-film model.
        battery_levels: Quantisation levels ``N_B`` for status reports.
        compute_cycles: Per-module computation latency.
        mapping_strategy: checkerboard / proportional / uniform.
        source_attach_xy: Mesh coordinates (1-based) the external
            source/sink block connects to.
        source_link_cm: Length of the source's textile line.
        return_to_sink: Whether the ciphertext must be delivered back to
            the source block after the final operation.
    """

    mesh_width: int = 4
    mesh_height: int | None = None
    link_pitch_cm: float = DEFAULT_LINK_PITCH_CM
    packet_payload_bits: int = 128
    packet_header_bits: int = 0
    switching_activity: float = 1.0
    link_width_bits: int = 1
    battery_model: str = "thin-film"
    battery_capacity_pj: float = 60_000.0
    thin_film: ThinFilmParameters = field(default_factory=ThinFilmParameters)
    battery_levels: int = 8
    compute_cycles: dict[int, int] = field(
        default_factory=lambda: dict(DEFAULT_COMPUTE_CYCLES)
    )
    mapping_strategy: str = "checkerboard"
    source_attach_xy: tuple[int, int] = (1, 1)
    source_link_cm: float = 10.0
    return_to_sink: bool = False
    #: Input-buffer depth (packets) per node, used by the concurrent
    #: engine; the sequential workload needs no buffering (Sec 7.1).
    node_buffer_packets: int = 2

    def __post_init__(self) -> None:
        if self.mesh_width < 2:
            raise ConfigurationError(
                f"mesh width must be >= 2, got {self.mesh_width}"
            )
        height = self.mesh_height if self.mesh_height else self.mesh_width
        if height < 2:
            raise ConfigurationError(f"mesh height must be >= 2, got {height}")
        if self.battery_model not in BATTERY_MODELS:
            raise ConfigurationError(
                f"unknown battery model {self.battery_model!r}; "
                f"expected one of {BATTERY_MODELS}"
            )
        if self.mapping_strategy not in MAPPING_STRATEGIES:
            raise ConfigurationError(
                f"unknown mapping strategy {self.mapping_strategy!r}; "
                f"expected one of {MAPPING_STRATEGIES}"
            )
        if self.battery_capacity_pj <= 0:
            raise ConfigurationError("battery capacity must be positive")
        if self.battery_levels < 2:
            raise ConfigurationError("need >= 2 battery levels")
        if self.source_link_cm <= 0:
            raise ConfigurationError("source link length must be positive")
        x, y = self.source_attach_xy
        if not (1 <= x <= self.mesh_width and 1 <= y <= height):
            raise ConfigurationError(
                f"source attach point {self.source_attach_xy} outside the "
                f"{self.mesh_width}x{height} mesh"
            )
        for module, cycles in self.compute_cycles.items():
            if cycles < 1:
                raise ConfigurationError(
                    f"compute cycles for module {module} must be >= 1"
                )
        if self.node_buffer_packets < 1:
            raise ConfigurationError(
                "node buffers must hold at least one packet, got "
                f"{self.node_buffer_packets}"
            )

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.mesh_height if self.mesh_height else self.mesh_width

    @property
    def num_mesh_nodes(self) -> int:
        """The node budget ``K`` (mesh nodes only; the external source
        and the controllers are outside the budget)."""
        return self.mesh_width * self.height

    def packet_format(self) -> PacketFormat:
        return PacketFormat(
            payload_bits=self.packet_payload_bits,
            header_bits=self.packet_header_bits,
            switching_activity=self.switching_activity,
        )

    def link_energy_model(self) -> LinkEnergyModel:
        return LinkEnergyModel(
            packet=self.packet_format(),
            link_width_bits=self.link_width_bits,
        )

    def hop_energy_pj(self) -> float:
        """Per-hop packet energy at the mesh link pitch."""
        return self.link_energy_model().hop_energy_pj(self.link_pitch_cm)

    def make_topology(self) -> Topology:
        return mesh2d(self.mesh_width, self.height, self.link_pitch_cm)

    def make_mapping(
        self,
        topology: Topology,
        normalized_energies: dict[int, float] | None = None,
        income_weights: Sequence[float] | Mapping[int, float] | None = None,
    ) -> ModuleMapping:
        mesh_nodes = range(self.num_mesh_nodes)
        if self.mapping_strategy == "checkerboard":
            return checkerboard_mapping(topology, mesh_nodes)
        if self.mapping_strategy in ("proportional", "harvest-proportional"):
            if normalized_energies is None:
                raise ConfigurationError(
                    f"{self.mapping_strategy} mapping needs the "
                    "normalised energies"
                )
            if self.mapping_strategy == "harvest-proportional":
                # No income picture (harvest-free run) degenerates to
                # the plain Theorem-1 rule inside the mapper.
                weights = (
                    income_weights
                    if income_weights is not None
                    else [0.0] * self.num_mesh_nodes
                )
                return harvest_proportional_mapping(
                    topology, normalized_energies, weights, mesh_nodes
                )
            return proportional_mapping(
                topology, normalized_energies, mesh_nodes
            )
        return uniform_mapping(topology, num_modules=3, nodes=mesh_nodes)

    def make_battery(self):
        """Fresh battery instance for one mesh node."""
        if self.battery_model == "ideal":
            return IdealBattery(capacity_pj=self.battery_capacity_pj)
        params = replace(self.thin_film, capacity_pj=self.battery_capacity_pj)
        return ThinFilmBattery(params)


@dataclass(frozen=True)
class ControlConfig:
    """TDMA control mechanism and controller provisioning.

    Attributes:
        frame_cycles: TDMA frame length.
        medium_width_bits: Shared-medium width (paper: 2).
        status_bits / table_entry_bits: Control payload sizes.
        medium_segment_cm: Electrical length for medium transfers.
        num_controllers: Size of the fail-over chain.
        controller_battery: ``"infinite"`` (Sec 7.1-7.2) or
            ``"thin-film"`` / ``"ideal"`` (Sec 7.3, Fig 8).
        controller_capacity_pj: Battery budget per controller unit.
        energy: Per-action controller energy quanta.
        deadlock: Deadlock-recovery thresholds.
    """

    frame_cycles: int = DEFAULT_FRAME_CYCLES
    medium_width_bits: int = DEFAULT_MEDIUM_WIDTH_BITS
    status_bits: int = DEFAULT_STATUS_BITS
    table_entry_bits: int = DEFAULT_TABLE_ENTRY_BITS
    medium_segment_cm: float = DEFAULT_MEDIUM_SEGMENT_CM
    num_controllers: int = 1
    controller_battery: str = "infinite"
    controller_capacity_pj: float = 60_000.0
    #: Thin-film cell parameters used when ``controller_battery`` is
    #: "thin-film".  The controller is a physically larger block than a
    #: mesh node (Fig 3a), so its cell stack has a much lower effective
    #: internal resistance and tolerates sustained load.
    controller_thin_film: ThinFilmParameters = field(
        default_factory=lambda: ThinFilmParameters(
            internal_resistance_ohm=12_000.0,
            rate_penalty_coeff=0.5,
            reference_current_ma=0.04,
        )
    )
    energy: ControllerEnergyModel = field(
        default_factory=ControllerEnergyModel
    )
    deadlock: DeadlockPolicy = field(default_factory=DeadlockPolicy)

    def __post_init__(self) -> None:
        if self.num_controllers < 1:
            raise ConfigurationError("need at least one controller")
        if self.controller_battery not in ("infinite", "thin-film", "ideal"):
            raise ConfigurationError(
                f"unknown controller battery {self.controller_battery!r}"
            )
        if self.controller_capacity_pj <= 0:
            raise ConfigurationError("controller capacity must be positive")

    def make_schedule(self, num_nodes: int) -> TdmaSchedule:
        return TdmaSchedule(
            num_nodes=num_nodes,
            frame_cycles=self.frame_cycles,
            medium_width_bits=self.medium_width_bits,
            status_bits=self.status_bits,
            table_entry_bits=self.table_entry_bits,
            medium_segment_cm=self.medium_segment_cm,
        )

    def make_controller_batteries(self) -> list:
        """Battery list for the fail-over chain (None = infinite)."""
        batteries: list = []
        for _ in range(self.num_controllers):
            if self.controller_battery == "infinite":
                batteries.append(None)
            elif self.controller_battery == "ideal":
                batteries.append(
                    IdealBattery(capacity_pj=self.controller_capacity_pj)
                )
            else:
                params = replace(
                    self.controller_thin_film,
                    capacity_pj=self.controller_capacity_pj,
                )
                batteries.append(ThinFilmBattery(params))
        return batteries


@dataclass(frozen=True)
class WorkloadConfig:
    """Job generation.

    Attributes:
        kind: ``"sequential"`` — one job at a time, a new job launched
            when the previous completes (paper Sec 7.1); or
            ``"concurrent"`` — ``concurrency`` jobs kept in flight
            through the buffered network (paper's deadlock experiments).
        concurrency: In-flight job target for the concurrent engine.
        aes_key_hex: Cipher key of the encryption jobs.
        seed: Seed of the plaintext generator.
        max_jobs: Stop after this many completed jobs (None = run to
            system death, the paper's setting).
        max_frames: Safety limit on simulated frames.
    """

    kind: str = "sequential"
    concurrency: int = 1
    aes_key_hex: str = DEFAULT_AES_KEY_HEX
    seed: int = 2005
    max_jobs: int | None = None
    max_frames: int = 200_000
    #: Enable the TDMA deadlock-recovery protocol (paper Sec 5.3); the
    #: deadlock bench disables it to demonstrate its effectiveness.
    deadlock_recovery: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("sequential", "concurrent"):
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}"
            )
        if self.concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ConfigurationError("max_jobs must be >= 1 or None")
        if self.max_frames < 1:
            raise ConfigurationError("max_frames must be >= 1")
        key = bytes.fromhex(self.aes_key_hex)
        if len(key) not in (16, 24, 32):
            raise ConfigurationError(
                "AES key must be 16/24/32 bytes, got "
                f"{len(key)} from {self.aes_key_hex!r}"
            )

    @property
    def aes_key(self) -> bytes:
        return bytes.fromhex(self.aes_key_hex)


@dataclass(frozen=True)
class RoutingOptions:
    """Congestion-aware spreading options of the routing stack.

    Groups the knobs added on top of the historical flat ``wear_*`` /
    ``harvest_*`` fields into one section (the shape future cost terms
    should follow).  The default instance is behaviour-identical to the
    pre-congestion simulator, and :meth:`SimulationConfig.to_dict`
    omits the section entirely when it is default so existing cached
    results and golden fixtures keep their hashes.

    Attributes:
        congestion_aware: Track per-link EMA utilisation and penalise
            hot links in the EAR weight.  Only meaningful with
            ``routing == "ear"``.
        congestion_q: Penalty base of the congestion weight (>= 1; 1 is
            measure-only — utilisation metrics are reported but the
            weight matrix is untouched).
        congestion_quantum: Smoothed traversals per frame per quantised
            load level.
        ecmp: Round-robin over equal-cost successor groups instead of
            always forwarding on the canonical Floyd–Warshall
            successor.
        ecmp_seed: Seed of the deterministic rotation offsets.
    """

    congestion_aware: bool = False
    congestion_q: float = DEFAULT_CONGESTION_Q
    congestion_quantum: float = DEFAULT_CONGESTION_QUANTUM
    ecmp: bool = False
    ecmp_seed: int = 0

    def __post_init__(self) -> None:
        if self.congestion_q < 1.0:
            raise ConfigurationError("congestion Q must be >= 1")
        if self.congestion_quantum <= 0:
            raise ConfigurationError("congestion quantum must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one et_sim run needs.

    Attributes:
        platform: Physical platform description.
        control: Control mechanism description.
        workload: Job generation description.
        faults: Fault-injection schedule description (default: none).
        harvest: Energy-harvesting income description (default: none).
        routing: ``"ear"`` or ``"sdr"``.
        weight_q: EAR's strengthening constant ``Q``.
        wear_aware: Enable the wear-prediction weight: EAR additionally
            penalises links with high traversal counts or degradation
            history, routing around failing lines *before* they sever.
            Only meaningful with ``routing == "ear"``.
        wear_q: Penalty base of the wear weight (>= 1; 1 degenerates to
            reactive EAR).
        wear_quantum: Traversals per quantised wear level.
        harvest_aware: Enable the harvest-bonus weight: the controller
            learns per-node income rates from status uploads and EAR
            steers traffic toward energy-rich regions.  Only meaningful
            with ``routing == "ear"`` and an active harvest profile.
        harvest_q: Bonus base of the harvest weight (>= 1; 1
            degenerates to reactive EAR).
        harvest_quantum: Smoothed income (pJ/frame) per quantised
            income level.
        routing_opts: Congestion/ECMP options (see
            :class:`RoutingOptions`; default = both off).
        engine: Simulation engine to run this configuration on — one of
            :data:`ENGINE_NAMES`.  ``"auto"`` (the default) picks the
            engine matching the workload kind, which is exactly what
            every pre-registry configuration got; name an engine
            explicitly to override (e.g. ``"vector"`` for the
            NumPy frame-batch engine on large fabrics).
    """

    platform: PlatformConfig = field(default_factory=PlatformConfig)
    control: ControlConfig = field(default_factory=ControlConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    harvest: HarvestConfig = field(default_factory=HarvestConfig)
    routing: str = "ear"
    weight_q: float = DEFAULT_Q
    wear_aware: bool = False
    wear_q: float = DEFAULT_WEAR_Q
    wear_quantum: int = DEFAULT_WEAR_QUANTUM
    harvest_aware: bool = False
    harvest_q: float = DEFAULT_HARVEST_Q
    harvest_quantum: float = DEFAULT_HARVEST_QUANTUM
    routing_opts: RoutingOptions = field(default_factory=RoutingOptions)
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.routing not in ROUTING_ALGORITHMS:
            raise ConfigurationError(
                f"unknown routing algorithm {self.routing!r}; expected "
                f"one of {ROUTING_ALGORITHMS}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{ENGINE_NAMES}"
            )
        if self.weight_q <= 0:
            raise ConfigurationError("weight Q must be positive")
        if self.wear_q < 1.0:
            raise ConfigurationError("wear Q must be >= 1")
        if self.wear_quantum < 1:
            raise ConfigurationError("wear quantum must be >= 1")
        if self.harvest_q < 1.0:
            raise ConfigurationError("harvest Q must be >= 1")
        if self.harvest_quantum <= 0:
            raise ConfigurationError("harvest quantum must be positive")

    def resolved_engine(self) -> str:
        """The concrete engine name this configuration runs on.

        ``"auto"`` resolves from the workload kind — sequential
        workloads ran on the sequential engine and concurrent workloads
        on the concurrent engine long before engines were selectable,
        and ``"auto"`` preserves exactly that behaviour.
        """
        if self.engine != "auto":
            return self.engine
        return (
            "concurrent"
            if self.workload.kind == "concurrent"
            else "sequential"
        )

    def weight_function(self) -> BatteryWeightFunction:
        return BatteryWeightFunction(
            q=self.weight_q, levels=self.platform.battery_levels
        )

    def wear_function(self) -> WearWeightFunction | None:
        """The wear-prediction penalty, or None when disabled."""
        if not self.wear_aware:
            return None
        return WearWeightFunction(q=self.wear_q, quantum=self.wear_quantum)

    def harvest_function(self) -> HarvestWeightFunction | None:
        """The harvest-bonus weight, or None when disabled."""
        if not self.harvest_aware:
            return None
        return HarvestWeightFunction(
            q=self.harvest_q, quantum=self.harvest_quantum
        )

    def congestion_function(self) -> CongestionWeightFunction | None:
        """The congestion penalty, or None when disabled."""
        if not self.routing_opts.congestion_aware:
            return None
        return CongestionWeightFunction(
            q=self.routing_opts.congestion_q,
            quantum=self.routing_opts.congestion_quantum,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe) of the full configuration."""
        raw = asdict(self)
        # asdict turns the nested profile dataclasses into dicts already;
        # only tuples need normalising for strict JSON round-trips.
        raw["platform"]["source_attach_xy"] = list(
            raw["platform"]["source_attach_xy"]
        )
        for section, attr in (
            ("platform", "thin_film"),
            ("control", "controller_thin_film"),
        ):
            params = getattr(getattr(self, section), attr)
            raw[section][attr]["profile"] = {
                "name": params.profile.name,
                "points": [list(p) for p in params.profile.points],
            }
        # The routing_opts section postdates most cached results and
        # golden fixtures; the default instance is behaviour-identical
        # to the pre-congestion simulator, so it is normalised out of
        # the serialised form — default-pipeline configs keep their
        # config hashes and old cache entries keep hitting.
        if self.routing_opts == RoutingOptions():
            raw.pop("routing_opts", None)
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "SimulationConfig":
        """Inverse of :meth:`to_dict`."""
        from .battery.profile import DischargeProfile

        data = dict(raw)
        platform_raw = dict(data.get("platform", {}))
        control_raw = dict(data.get("control", {}))
        workload_raw = dict(data.get("workload", {}))
        faults_raw = data.get("faults", {})
        harvest_raw = data.get("harvest", {})

        def thin_film_params(tf_raw: dict) -> ThinFilmParameters:
            tf_raw = dict(tf_raw)
            if "profile" in tf_raw and isinstance(tf_raw["profile"], dict):
                tf_raw["profile"] = DischargeProfile(
                    points=tuple(
                        (float(d), float(v))
                        for d, v in tf_raw["profile"]["points"]
                    ),
                    name=tf_raw["profile"].get("name", "custom"),
                )
            return ThinFilmParameters(**tf_raw)

        if "thin_film" in platform_raw:
            platform_raw["thin_film"] = thin_film_params(
                platform_raw["thin_film"]
            )
        if "controller_thin_film" in control_raw and isinstance(
            control_raw["controller_thin_film"], dict
        ):
            control_raw["controller_thin_film"] = thin_film_params(
                control_raw["controller_thin_film"]
            )
        if "source_attach_xy" in platform_raw:
            platform_raw["source_attach_xy"] = tuple(
                platform_raw["source_attach_xy"]
            )
        if "compute_cycles" in platform_raw:
            platform_raw["compute_cycles"] = {
                int(k): int(v)
                for k, v in platform_raw["compute_cycles"].items()
            }
        if isinstance(harvest_raw, dict) and isinstance(
            harvest_raw.get("hardware"), dict
        ):
            harvest_raw = dict(harvest_raw)
            harvest_raw["hardware"] = HarvestHardware(
                **harvest_raw["hardware"]
            )
        if "energy" in control_raw and isinstance(control_raw["energy"], dict):
            control_raw["energy"] = ControllerEnergyModel(
                **control_raw["energy"]
            )
        if "deadlock" in control_raw and isinstance(
            control_raw["deadlock"], dict
        ):
            control_raw["deadlock"] = DeadlockPolicy(**control_raw["deadlock"])

        return cls(
            platform=PlatformConfig(**platform_raw),
            control=ControlConfig(**control_raw),
            workload=WorkloadConfig(**workload_raw),
            faults=FaultConfig(**faults_raw)
            if isinstance(faults_raw, dict)
            else FaultConfig(),
            harvest=HarvestConfig(**harvest_raw)
            if isinstance(harvest_raw, dict)
            else HarvestConfig(),
            routing=data.get("routing", "ear"),
            weight_q=data.get("weight_q", DEFAULT_Q),
            wear_aware=data.get("wear_aware", False),
            wear_q=data.get("wear_q", DEFAULT_WEAR_Q),
            wear_quantum=data.get("wear_quantum", DEFAULT_WEAR_QUANTUM),
            harvest_aware=data.get("harvest_aware", False),
            harvest_q=data.get("harvest_q", DEFAULT_HARVEST_Q),
            harvest_quantum=data.get(
                "harvest_quantum", DEFAULT_HARVEST_QUANTUM
            ),
            routing_opts=RoutingOptions(**data["routing_opts"])
            if isinstance(data.get("routing_opts"), dict)
            else RoutingOptions(),
            engine=data.get("engine", "auto"),
        )
