"""Deterministic harvest income schedules and their runtime state.

A *harvest schedule* maps a frame index to the per-node energy income
the fabric scavenges during that frame.  It is a pure function of the
:class:`~repro.harvest.config.HarvestConfig` and the fabric topology —
the same inputs always produce the same income, which keeps
harvest-bearing runs replayable, cacheable and bit-identical across the
sequential and concurrent engines (both recharge batteries through
``EngineBase._apply_harvest`` at frame boundaries).

The engines own a :class:`HarvestRuntime` that wraps the schedule and,
when harvest-aware routing is enabled, maintains the per-node income
estimate the controller learns: an exponential moving average of the
energy each node actually *accepted*, quantised into income levels with
the same trigger discipline as battery-level and wear reports — a fresh
picture is pushed only when some node crosses a level boundary.
"""

from __future__ import annotations

import math
import random

import numpy as np

from ..mesh.topology import Topology
from .config import MOTION_PROFILES, HarvestConfig, HarvestHardware

#: Income levels the quantiser (and the routing bonus table) saturate
#: at — one source of truth, mirroring the wear-level cap.
DEFAULT_INCOME_LEVELS = 8

#: Per-frame smoothing factor of the income-rate moving average.  One
#: time constant spans ~50 frames — several motion windows — so the
#: estimate converges on each node's steady income *rate* instead of
#: chasing individual activity bursts (burst-chasing flips levels every
#: window and churns the controller with recomputations).
INCOME_EMA_ALPHA = 0.02

#: Baseline share of the flex weight every node keeps: even low-flex
#: (central) fabric regions crinkle a little with each movement.
_FLEX_FLOOR = 0.25


def flex_weights(topology: Topology, num_mesh_nodes: int) -> list[float]:
    """Per-node triboelectric flex weight in ``[_FLEX_FLOOR, 1]``.

    Motion harvest concentrates on high-flex regions — the fabric far
    from the torso centroid (elbows, shoulders, hem).  With node
    positions available the weight grows linearly with the distance
    from the fabric centroid; fabrics without geometry degrade to a
    uniform weight of 1.
    """
    positions = [topology.node_position(node) for node in range(num_mesh_nodes)]
    if any(p is None for p in positions) or not positions:
        return [1.0] * num_mesh_nodes
    cx = sum(p[0] for p in positions) / len(positions)
    cy = sum(p[1] for p in positions) / len(positions)
    distances = [math.hypot(p[0] - cx, p[1] - cy) for p in positions]
    furthest = max(distances)
    if furthest <= 0:
        return [1.0] * num_mesh_nodes
    return [
        _FLEX_FLOOR + (1.0 - _FLEX_FLOOR) * (d / furthest) for d in distances
    ]


def hardware_scale(
    hardware: HarvestHardware,
    topology: Topology,
    num_mesh_nodes: int,
) -> list[float]:
    """Per-node generator gain: 0 for non-equipped nodes.

    Which nodes are equipped follows the placement policy
    (high-flex-first, seeded random, or evenly spread over the node-id
    order); each equipped node's gain is its seeded manufacturing draw
    from ``[1 - gain_spread, 1 + gain_spread]``.  The default hardware
    returns all-ones, keeping homogeneous runs bit-identical to the
    hardware-free schedule.
    """
    nodes = int(num_mesh_nodes)
    if hardware.is_uniform:
        return [1.0] * nodes
    equipped_count = max(1, round(hardware.equipped_fraction * nodes))
    if hardware.placement == "flex":
        flex = flex_weights(topology, nodes)
        ranked = sorted(range(nodes), key=lambda n: (-flex[n], n))
        equipped = set(ranked[:equipped_count])
    elif hardware.placement == "random":
        rng = random.Random(f"{hardware.seed}:hardware")
        equipped = set(rng.sample(range(nodes), equipped_count))
    else:  # spread
        equipped = {i * nodes // equipped_count for i in range(equipped_count)}
    scale = [0.0] * nodes
    for node in equipped:
        gain = random.Random(f"{hardware.seed}:gain:{node}").uniform(
            1.0 - hardware.gain_spread, 1.0 + hardware.gain_spread
        )
        scale[node] = gain
    return scale


class HarvestSchedule:
    """Per-node income as a pure function of the frame index.

    :meth:`income` returns the list of per-mesh-node energies (pJ) the
    fabric harvests during one frame, or ``None`` for frames with no
    income at all (idle activity windows, solar night) so the engines'
    fast path skips the recharge loop entirely.
    """

    def __init__(
        self,
        config: HarvestConfig,
        topology: Topology,
        num_mesh_nodes: int,
    ):
        self.config = config
        self._nodes = int(num_mesh_nodes)
        self._flex = flex_weights(topology, num_mesh_nodes)
        #: Per-node generator gain (0 for nodes without a harvester).
        self.hardware = hardware_scale(
            config.hardware, topology, num_mesh_nodes
        )
        #: Motion-profile node scale: flex weight times generator gain.
        #: Multiplying by the all-ones default hardware is bit-exact,
        #: so homogeneous runs reproduce the PR 4 income vectors.
        self._node_scale = [
            flex * gain for flex, gain in zip(self._flex, self.hardware)
        ]
        #: Memo of the current activity window: (window index, vector).
        #: Frames are visited in order, so one slot is enough.
        self._window: tuple[int, list[float] | None] | None = None

    @property
    def is_active(self) -> bool:
        return self.config.is_active

    def expected_income_weights(self) -> list[float]:
        """Expected per-node income (pJ/frame), queried before the run.

        A pure function of the configuration — the mean of the income
        process, not a sample of it — so build-time consumers (the
        income-aware mapping) see the same per-node expectations on
        every engine and every run.  Inactive schedules yield zeros.
        """
        config = self.config
        if not self.is_active:
            return [0.0] * self._nodes
        if config.profile in MOTION_PROFILES:
            # Mean window pulse: duty * amplitude * E[U(0.5, 1)].
            mean_pulse = config.amplitude_pj * config.duty * 0.75
            return [mean_pulse * scale for scale in self._node_scale]
        # Solar: the positive half of a sine averages A / pi over a day.
        mean_level = config.amplitude_pj / math.pi
        return [mean_level * gain for gain in self.hardware]

    # ------------------------------------------------------------------
    def _window_pulse(self, window: int) -> float:
        """Peak income of one motion activity window (0 when idle).

        Seeded per window from the configured seed, so the activity
        trace is deterministic and independent of query order.
        """
        config = self.config
        rng = random.Random(f"{config.seed}:{window}")
        if rng.random() >= config.duty:
            return 0.0
        return config.amplitude_pj * rng.uniform(0.5, 1.0)

    def _motion_income(self, frame: int) -> list[float] | None:
        window = (frame - self.config.start_frame) // self.config.period_frames
        if self._window is None or self._window[0] != window:
            pulse = self._window_pulse(window)
            vector = (
                [pulse * weight for weight in self._node_scale]
                if pulse
                else None
            )
            self._window = (window, vector)
        return self._window[1]

    def _solar_income(self, frame: int) -> list[float] | None:
        config = self.config
        phase = ((frame - config.start_frame) % config.day_frames) / (
            config.day_frames
        )
        scale = config.amplitude_pj * math.sin(2.0 * math.pi * phase)
        if scale <= 0.0:
            return None  # night
        return [scale * gain for gain in self.hardware]

    def income(self, frame: int) -> list[float] | None:
        """Per-mesh-node income (pJ) of ``frame``; None when all zero."""
        config = self.config
        if not self.is_active or frame < config.start_frame:
            return None
        if config.profile in MOTION_PROFILES:
            return self._motion_income(frame)
        return self._solar_income(frame)  # solar


def build_harvest_schedule(
    config: HarvestConfig,
    topology: Topology,
    num_mesh_nodes: int,
) -> HarvestSchedule:
    """Construct the income schedule of one run (deterministic)."""
    return HarvestSchedule(config, topology, num_mesh_nodes)


class HarvestRuntime:
    """Per-run harvest state: the schedule plus the income estimator.

    Income tracking (:meth:`observe_frame`) is opt-in via
    ``income_quantum``: each node's income level is its smoothed
    per-frame accepted income in units of ``income_quantum``, capped at
    ``levels - 1``.  :attr:`income_dirty` flips whenever some node
    crosses a level boundary, so the engine pushes a fresh income
    picture to the controller only when the quantised state actually
    changed — the same trigger discipline as battery-level and wear
    reports.
    """

    def __init__(
        self,
        schedule: HarvestSchedule,
        income_quantum: float = 0.0,
        levels: int = DEFAULT_INCOME_LEVELS,
    ):
        self.schedule = schedule
        self.income_quantum = float(income_quantum)
        self.levels = int(levels)
        nodes = schedule._nodes
        #: Smoothed per-frame accepted income, pJ/frame, per mesh node.
        self.income_ema: list[float] = [0.0] * nodes
        self._levels_vec: list[int] = [0] * nodes
        self.income_dirty = False

    @property
    def is_active(self) -> bool:
        return self.schedule.is_active

    @property
    def shares_power(self) -> bool:
        return self.schedule.config.shares_power

    @property
    def tracks_income(self) -> bool:
        """True when the income estimator feeds the routing weight."""
        return self.income_quantum > 0

    def observe_frame(self, accepted: list[float]) -> None:
        """Fold one frame's accepted income into the moving average."""
        if not self.tracks_income:
            return
        alpha = INCOME_EMA_ALPHA
        quantum = self.income_quantum
        cap = self.levels - 1
        ema = self.income_ema
        levels = self._levels_vec
        for node, value in enumerate(accepted):
            rate = ema[node] + alpha * (value - ema[node])
            ema[node] = rate
            level = min(cap, int(rate / quantum))
            if level != levels[node]:
                levels[node] = level
                self.income_dirty = True

    def income_level_vector(self, num_nodes: int) -> np.ndarray:
        """Dense per-node income-level vector (0 beyond the mesh)."""
        vector = np.zeros(num_nodes, dtype=np.int64)
        vector[: len(self._levels_vec)] = self._levels_vec
        return vector
