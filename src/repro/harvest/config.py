"""Energy-harvesting configuration.

Modern e-textiles do not only *spend* energy: textile triboelectric
nanogenerators (texTENG) scavenge power from the wearer's motion,
photovoltaic yarns collect ambient light, and conductive-textile power
buses (I²We) can move charge between garment regions.  A
:class:`HarvestConfig` selects a named *harvest profile* — a
deterministic, seedable generator of per-node energy income over the
fabric — and its parameters.  Like every other knob in
:mod:`repro.config` it is a frozen dataclass, so a harvest-bearing run
is fully described (and content-hashed for the sweep cache) by its
plain-dict form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Recognised harvest profiles.
#:
#: * ``none``   — no income (bit-identical to a harvest-free run);
#: * ``motion`` — activity-trace-driven triboelectric pulses: a
#:   deterministic activity trace gates bursts of income, concentrated
#:   on high-flex nodes (far from the fabric centroid — elbows,
#:   shoulders) via ``Topology.node_position``;
#: * ``solar``  — a slow diurnal ramp, uniform across the fabric;
#: * ``bus``    — motion income plus I²We-style power sharing: each
#:   frame a node whose state of charge exceeds a geometric neighbour's
#:   by ``share_threshold`` trickles up to ``share_rate_pj`` over the
#:   conductive textile, arriving scaled by ``share_efficiency``.
HARVEST_PROFILES = ("none", "motion", "solar", "bus")

#: Profiles whose income is gated by the motion activity trace.
MOTION_PROFILES = ("motion", "bus")

#: Recognised generator-placement policies for heterogeneous hardware.
#:
#: * ``flex``   — generators mounted at the highest-flex sites first
#:   (texTENG patches are fabricated where the fabric moves most:
#:   elbows, shoulders, hem);
#: * ``random`` — a seeded uniform draw over the mesh nodes;
#: * ``spread`` — evenly spaced across the node-id order (a regular
#:   manufacturing grid).
HARDWARE_PLACEMENTS = ("flex", "random", "spread")


@dataclass(frozen=True)
class HarvestHardware:
    """Which nodes physically carry a generator, and how strong it is.

    PR 4 gave every node an identical harvester; real garments mount
    them selectively (triboelectric patches are fabricated at specific
    high-flex sites, not woven uniformly) and no two patches are cut
    exactly alike.  The defaults — every node equipped, no gain spread
    — are inert: a run with default hardware is bit-identical to the
    homogeneous PR 4 behaviour.

    Attributes:
        equipped_fraction: Fraction of mesh nodes that carry a
            generator (in ``(0, 1]``; at least one node is always
            equipped).  Non-equipped nodes earn zero income under every
            profile.
        placement: One of :data:`HARDWARE_PLACEMENTS` — where the
            equipped nodes sit.
        seed: Seed of the random placement and of the per-node gain
            draw (same seed, same fraction => identical hardware).
        gain_spread: Half-width of the per-node amplitude scaling band:
            each equipped generator's gain is drawn uniformly from
            ``[1 - spread, 1 + spread]`` (manufacturing variation of
            the patch).  0 means every generator is nominal.
    """

    equipped_fraction: float = 1.0
    placement: str = "flex"
    seed: int = 0
    gain_spread: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.equipped_fraction <= 1.0:
            raise ConfigurationError(
                "equipped fraction must lie in (0, 1], got "
                f"{self.equipped_fraction}"
            )
        if self.placement not in HARDWARE_PLACEMENTS:
            raise ConfigurationError(
                f"unknown hardware placement {self.placement!r}; "
                f"expected one of {HARDWARE_PLACEMENTS}"
            )
        if not 0.0 <= self.gain_spread < 1.0:
            raise ConfigurationError(
                "gain spread must lie in [0, 1) so every mounted "
                f"generator keeps a positive gain, got {self.gain_spread}"
            )

    @property
    def is_uniform(self) -> bool:
        """True when the hardware spec is inert (every node carries a
        nominal generator — the homogeneous PR 4 platform)."""
        return self.equipped_fraction == 1.0 and self.gain_spread == 0.0


@dataclass(frozen=True)
class HarvestConfig:
    """Parameters of the harvest income generator.

    Attributes:
        profile: One of :data:`HARVEST_PROFILES`.
        seed: Seed of the activity-trace generator (same seed, same
            topology and same parameters => identical income schedule).
        amplitude_pj: Peak per-node income per frame.  For calibration:
            a default 4x4 run drains ~100 pJ per node per frame, so the
            default amplitude extends lifetime noticeably without making
            the fabric self-sufficient.
        period_frames: Length of one activity window of the motion
            trace; each window is independently active or idle.
        duty: Fraction of motion windows that are active.
        day_frames: Period of the solar diurnal cycle (income follows
            the positive half of a sine over this many frames).
        start_frame: First frame at which income may arrive.
        share_threshold: State-of-charge gap (fraction of nominal) that
            triggers a bus transfer toward a poorer receiver.
        share_efficiency: Fraction of a shared quantum that survives
            *each line segment* of the textile bus (the rest is per-hop
            conversion loss; a transfer over ``k`` hops arrives scaled
            by ``share_efficiency ** k``).
        share_rate_pj: Maximum energy one donor moves per frame.
        share_max_hops: How many line segments a bus transfer may
            traverse.  1 reproduces the PR 4 single-hop bus exactly;
            larger values let surplus reach poor cells beyond the
            donor's geometric neighbourhood, at compounding conversion
            loss.
        hardware: Which nodes carry a generator
            (:class:`HarvestHardware`; the default equips every node
            at nominal gain).
    """

    profile: str = "none"
    seed: int = 0
    amplitude_pj: float = 40.0
    period_frames: int = 16
    duty: float = 0.5
    day_frames: int = 256
    start_frame: int = 0
    share_threshold: float = 0.2
    share_efficiency: float = 0.7
    share_rate_pj: float = 30.0
    share_max_hops: int = 1
    hardware: HarvestHardware = field(default_factory=HarvestHardware)

    def __post_init__(self) -> None:
        if self.profile not in HARVEST_PROFILES:
            raise ConfigurationError(
                f"unknown harvest profile {self.profile!r}; "
                f"expected one of {HARVEST_PROFILES}"
            )
        if self.amplitude_pj < 0:
            raise ConfigurationError(
                f"harvest amplitude must be >= 0, got {self.amplitude_pj}"
            )
        if self.period_frames < 1:
            raise ConfigurationError(
                "harvest activity window must be >= 1 frame"
            )
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError(
                f"harvest duty must lie in [0, 1], got {self.duty}"
            )
        if self.day_frames < 2:
            raise ConfigurationError(
                f"solar day must span >= 2 frames, got {self.day_frames}"
            )
        if self.start_frame < 0:
            raise ConfigurationError("harvest start frame must be >= 0")
        if not 0.0 < self.share_threshold <= 1.0:
            raise ConfigurationError(
                "share threshold must lie in (0, 1], got "
                f"{self.share_threshold}"
            )
        if not 0.0 < self.share_efficiency <= 1.0:
            raise ConfigurationError(
                "share efficiency must lie in (0, 1], got "
                f"{self.share_efficiency}"
            )
        if self.share_rate_pj < 0:
            raise ConfigurationError(
                f"share rate must be >= 0, got {self.share_rate_pj}"
            )
        if self.share_max_hops < 1:
            raise ConfigurationError(
                f"bus transfers need >= 1 hop, got {self.share_max_hops}"
            )

    @property
    def is_active(self) -> bool:
        """True when this configuration can produce harvest income.

        A zero-amplitude schedule is inert regardless of profile — the
        generators are absent, so nothing is harvested *and* the bus
        has nothing to redistribute; such a run must be bit-identical
        to a harvest-free one.
        """
        return self.profile != "none" and self.amplitude_pj > 0

    @property
    def shares_power(self) -> bool:
        """True when the profile redistributes charge over the bus."""
        return self.profile == "bus" and self.amplitude_pj > 0
