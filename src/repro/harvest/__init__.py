"""Energy harvesting for the e-textile platform.

The paper's batteries only drain; this package adds the income side a
modern e-textile actually has — triboelectric motion harvesting
(texTENG), photovoltaic yarn, and I²We-style power sharing over the
conductive fabric.  Income schedules are deterministic functions of a
:class:`HarvestConfig` plus the topology, so harvest-bearing runs stay
replayable, cacheable and bit-identical across the sequential and
concurrent engines.
"""

from .config import (
    HARDWARE_PLACEMENTS,
    HARVEST_PROFILES,
    MOTION_PROFILES,
    HarvestConfig,
    HarvestHardware,
)
from .schedule import (
    DEFAULT_INCOME_LEVELS,
    HarvestRuntime,
    HarvestSchedule,
    build_harvest_schedule,
    flex_weights,
    hardware_scale,
)

__all__ = [
    "DEFAULT_INCOME_LEVELS",
    "HARDWARE_PLACEMENTS",
    "HARVEST_PROFILES",
    "MOTION_PROFILES",
    "HarvestConfig",
    "HarvestHardware",
    "HarvestRuntime",
    "HarvestSchedule",
    "build_harvest_schedule",
    "flex_weights",
    "hardware_scale",
]
