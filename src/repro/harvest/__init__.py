"""Energy harvesting for the e-textile platform.

The paper's batteries only drain; this package adds the income side a
modern e-textile actually has — triboelectric motion harvesting
(texTENG), photovoltaic yarn, and I²We-style power sharing over the
conductive fabric.  Income schedules are deterministic functions of a
:class:`HarvestConfig` plus the topology, so harvest-bearing runs stay
replayable, cacheable and bit-identical across the sequential and
concurrent engines.
"""

from .config import HARVEST_PROFILES, MOTION_PROFILES, HarvestConfig
from .schedule import (
    DEFAULT_INCOME_LEVELS,
    HarvestRuntime,
    HarvestSchedule,
    build_harvest_schedule,
    flex_weights,
)

__all__ = [
    "DEFAULT_INCOME_LEVELS",
    "HARVEST_PROFILES",
    "MOTION_PROFILES",
    "HarvestConfig",
    "HarvestRuntime",
    "HarvestSchedule",
    "build_harvest_schedule",
    "flex_weights",
]
