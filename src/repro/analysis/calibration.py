"""Calibration helpers derived from the paper's published numbers.

Table 2 of the paper lists the Theorem-1 upper bounds for five mesh
sizes.  Because ``J* = B*K / sum(H_i)`` is linear in K, those five values
over-determine the per-job energy ``sum(H_i)`` — and since the module
computation energies are published, the *communication* energy per act
falls out.  These helpers perform that inversion and map the result back
to a physical link length through the published SPICE line energies,
which is how the repository's default link pitch (~2.045 cm) was chosen.
See DESIGN.md for the full derivation.
"""

from __future__ import annotations

from ..aes.dataflow import operations_per_module
from ..aes.energy import AES_MODULE_ENERGIES_PJ
from ..errors import CalibrationError
from ..link.packet import PacketFormat
from ..link.transmission_line import TransmissionLineModel

#: The paper's Table 2 upper bounds, keyed by mesh width (square meshes).
PAPER_TABLE2_UPPER_BOUNDS: dict[int, float] = {
    4: 131.42,
    5: 205.25,
    6: 295.70,
    7: 402.48,
    8: 525.69,
}

#: The paper's Table 2 simulated EAR results (ideal battery).
PAPER_TABLE2_EAR_JOBS: dict[int, float] = {
    4: 62.8,
    5: 92.0,
    6: 132.7,
    7: 194.0,
    8: 234.0,
}

#: The paper's Sec 7.1 control-overhead percentages, keyed by mesh width.
PAPER_CONTROL_OVERHEAD_PERCENT: dict[int, float] = {
    4: 2.8,
    5: 3.1,
    6: 4.1,
    7: 9.3,
    8: 11.6,
}


def implied_energy_per_job_pj(
    battery_budget_pj: float = 60_000.0,
    bounds: dict[int, float] | None = None,
) -> float:
    """``sum(H_i)`` implied by the paper's Table 2 bounds.

    Each row gives ``sum(H) = B*K / J*``; the rows agree to within a
    fraction of a percent, and the mean is returned.  A spread above
    1 % raises :class:`CalibrationError` because it would mean the
    bounds are not consistent with Theorem 1's closed form.
    """
    bounds = PAPER_TABLE2_UPPER_BOUNDS if bounds is None else bounds
    if not bounds:
        raise CalibrationError("no upper bounds supplied")
    estimates = [
        battery_budget_pj * width * width / jobs
        for width, jobs in bounds.items()
    ]
    mean = sum(estimates) / len(estimates)
    spread = (max(estimates) - min(estimates)) / mean
    if spread > 0.01:
        raise CalibrationError(
            f"Table 2 rows disagree on sum(H) by {spread:.2%}; "
            "check the bounds"
        )
    return mean


def implied_communication_energy_pj(
    battery_budget_pj: float = 60_000.0,
) -> float:
    """Per-hop communication energy ``c`` implied by Table 2.

    ``sum(H) = sum f_i E_i + c * sum f_i`` with uniform ``c``; solving
    with the published ``f_i`` and ``E_i`` gives ~116.7 pJ.
    """
    total = implied_energy_per_job_pj(battery_budget_pj)
    f = operations_per_module()
    compute = sum(f[m] * AES_MODULE_ENERGIES_PJ[m] for m in f)
    ops = sum(f.values())
    c = (total - compute) / ops
    if c <= 0:
        raise CalibrationError(
            "implied communication energy is non-positive; the module "
            "energies already exceed the implied per-job energy"
        )
    return c


def calibrated_link_pitch_cm(
    battery_budget_pj: float = 60_000.0,
    packet: PacketFormat | None = None,
    line: TransmissionLineModel | None = None,
) -> float:
    """Physical link pitch reproducing the paper's Table 2 bounds.

    Inverts the per-hop energy through the packet format and the
    published line energies; the repository default (2.045 cm) is this
    value for a 128-bit packet at unit switching activity.
    """
    packet = packet if packet is not None else PacketFormat()
    line = line if line is not None else TransmissionLineModel()
    c = implied_communication_energy_pj(battery_budget_pj)
    per_bit = c / packet.switched_bits
    return line.length_for_energy(per_bit)
