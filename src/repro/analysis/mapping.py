"""Mapping-strategy analysis: income-aware placement against its twin.

The ``harvest-proportional`` strategy moves a run's module duplicates
onto the nodes the fabric actually recharges; whether that placement
*bought* anything is a paired question.  The same configuration with
the plain Theorem-1 proportional mapping is the reactive twin — income
still arrives, but placement ignores it — and the delta between the two
runs is attributable to the build-time decision alone (workload, seeds,
income schedule and routing are bit-identical by construction).
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimulationConfig


def income_mapping_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the income-aware mapping strategy."""
    return replace(
        config,
        platform=replace(
            config.platform, mapping_strategy="harvest-proportional"
        ),
    )


def reactive_mapping_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the plain Theorem-1 proportional mapping."""
    return replace(
        config,
        platform=replace(config.platform, mapping_strategy="proportional"),
    )


def mapping_comparison(reactive: dict, income_aware: dict) -> dict:
    """Income-aware placement against reactive proportional mapping.

    Args:
        reactive: ``SimulationStats.summary()`` of the
            proportional-mapping run.
        income_aware: Summary of the harvest-proportional run of the
            same configuration.

    Returns:
        JSON-safe dict with the delivery and lifetime deltas the
        placement bought (positive = income-aware is ahead), plus both
        runs' harvest accounting.
    """
    reactive_jobs = float(reactive["jobs_fractional"])
    aware_jobs = float(income_aware["jobs_fractional"])
    return {
        "jobs_reactive": reactive_jobs,
        "jobs_income_aware": aware_jobs,
        "jobs_gain": round(aware_jobs - reactive_jobs, 3),
        "lifetime_reactive_frames": reactive["lifetime_frames"],
        "lifetime_income_aware_frames": income_aware["lifetime_frames"],
        "lifetime_gain_frames": (
            income_aware["lifetime_frames"] - reactive["lifetime_frames"]
        ),
        "harvested_reactive_pj": reactive.get("harvested_pj", 0.0),
        "harvested_income_aware_pj": income_aware.get("harvested_pj", 0.0),
        "share_hops_reactive": reactive.get("share_hops", 0),
        "share_hops_income_aware": income_aware.get("share_hops", 0),
    }


def mapping_comparison_for(config: SimulationConfig) -> dict:
    """Run ``config`` with both mapping strategies; return the comparison."""
    from ..sim.et_sim import run_simulation

    reactive = run_simulation(reactive_mapping_twin(config)).summary()
    aware = run_simulation(income_mapping_twin(config)).summary()
    return mapping_comparison(reactive, aware)
