"""Theory-versus-simulation comparison (the paper's Table 2 analysis).

Relates a simulated run to Theorem 1's bound and decomposes the gap the
way the paper's Sec 7.2 discussion does: the bound assumes the ideal
topology, free operation hand-over and zero control overhead, so the
measured shortfall splits into communication detours, control-exchange
energy, and energy stranded in batteries at death.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationConfig
from ..core.parameters import ApplicationProfile
from ..core.upper_bound import UpperBoundResult, theorem1
from ..sim.stats import SimulationStats


@dataclass(frozen=True)
class BoundComparison:
    """One row of the Table 2 reproduction.

    Attributes:
        mesh: Mesh label (e.g. ``"4x4"``).
        simulated_jobs: ``J(EAR)`` measured by et_sim.
        bound_jobs: ``J*`` from Theorem 1.
        ratio: ``J(EAR) / J*``.
    """

    mesh: str
    simulated_jobs: float
    bound_jobs: float
    ratio: float


def profile_for(config: SimulationConfig) -> ApplicationProfile:
    """AES profile with the configuration's per-hop energy."""
    return ApplicationProfile.aes128(config.platform.hop_energy_pj())


def bound_for(config: SimulationConfig) -> UpperBoundResult:
    """Theorem 1 evaluated at the configuration's budgets."""
    return theorem1(
        profile_for(config),
        battery_budget_pj=config.platform.battery_capacity_pj,
        node_budget=config.platform.num_mesh_nodes,
    )


def bound_comparison(
    config: SimulationConfig, stats: SimulationStats
) -> BoundComparison:
    """Compare a finished run against Theorem 1."""
    bound = bound_for(config)
    mesh = f"{config.platform.mesh_width}x{config.platform.height}"
    jobs = stats.jobs_fractional
    return BoundComparison(
        mesh=mesh,
        simulated_jobs=jobs,
        bound_jobs=bound.jobs,
        ratio=jobs / bound.jobs if bound.jobs > 0 else 0.0,
    )


def gap_report(
    config: SimulationConfig, stats: SimulationStats
) -> dict[str, float]:
    """Energy decomposition of the gap to the bound.

    Returns fractions of the total node energy budget ``B*K``:

    * ``spent_compute`` / ``spent_data`` / ``spent_upload`` — productive
      and overhead spending,
    * ``conversion_loss`` — rate-capacity losses inside cells,
    * ``wasted_dead`` — residual energy in dead cells,
    * ``stranded_alive`` — residual energy in cells alive at system
      death (the dominant term when routing kills the critical nodes
      early).
    """
    platform = config.platform
    budget = platform.battery_capacity_pj * platform.num_mesh_nodes
    energy = stats.energy
    if energy is None or budget <= 0:
        return {}
    return {
        "spent_compute": energy.compute_pj / budget,
        "spent_data": energy.data_tx_pj / budget,
        "spent_upload": energy.upload_pj / budget,
        "conversion_loss": stats.conversion_loss_pj / budget,
        "wasted_dead": stats.wasted_at_death_pj / budget,
        "stranded_alive": stats.stranded_alive_pj / budget,
    }
