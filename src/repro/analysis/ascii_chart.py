"""ASCII charts: the offline stand-in for the paper's figures.

The evaluation figures (Fig 7, Fig 8) are bar/line charts; in a
network-less environment the benches render them as fixed-width ASCII so
the *shape* — who wins, how the gap scales — is visible directly in the
pytest output and the archived bench logs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        return title or ""
    peak = max(values.values())
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * (
            0 if peak <= 0 else max(0, round(width * value / peak))
        )
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {value:.1f}{unit}"
        )
    return "\n".join(lines)


def series_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Scatter/line chart of multiple ``(x, y)`` series on one canvas.

    Each series is drawn with its own glyph; the legend maps glyphs to
    series names.  Suited to the Fig 8 controller-count families.
    """
    glyphs = "ox*+#@%&"
    points = [
        (x, y) for pts in series.values() for (x, y) in pts
    ]
    if not points:
        return title or ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = glyph

    lines = [title] if title else []
    for row_index, row in enumerate(canvas):
        y_value = y_hi - row_index * y_span / (height - 1)
        lines.append(f"{y_value:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{x_lo:<10.1f}" + " " * (width - 20) + f"{x_hi:>10.1f}"
    )
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
