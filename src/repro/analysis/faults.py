"""Fault-impact analysis: a faulty run against its fault-free twin.

Per-run fault counters (links cut, packets rerouted, ...) live in
:meth:`repro.sim.stats.SimulationStats.summary`; what they cannot say
alone is *how much delivery was lost to the faults*.  That is a paired
quantity: the same configuration with the fault schedule stripped is the
baseline, and the delta between the two runs is attributable to the
physical degradation alone (everything else — workload, seeds, platform
— is bit-identical by construction).
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimulationConfig
from ..faults import FaultConfig


def fault_free_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the fault schedule stripped."""
    return replace(config, faults=FaultConfig())


def fault_impact(baseline: dict, faulty: dict) -> dict:
    """Delivery-loss comparison of two summary dicts.

    Args:
        baseline: ``SimulationStats.summary()`` of the fault-free twin.
        faulty: Summary of the fault-bearing run.

    Returns:
        JSON-safe dict with absolute and fractional delivery loss, the
        lifetime delta and the fault counters of the faulty run.
    """
    base_jobs = float(baseline["jobs_fractional"])
    faulty_jobs = float(faulty["jobs_fractional"])
    loss = base_jobs - faulty_jobs
    return {
        "jobs_baseline": base_jobs,
        "jobs_faulty": faulty_jobs,
        "delivery_loss": round(loss, 3),
        "delivery_loss_fraction": (
            round(loss / base_jobs, 5) if base_jobs > 0 else 0.0
        ),
        "jobs_lost_delta": faulty["jobs_lost"] - baseline["jobs_lost"],
        "lifetime_delta_frames": (
            faulty["lifetime_frames"] - baseline["lifetime_frames"]
        ),
        "faults_injected": faulty.get("faults_injected", 0),
        "links_cut": faulty.get("links_cut", 0),
        "links_degraded": faulty.get("links_degraded", 0),
        "nodes_fault_killed": faulty.get("nodes_fault_killed", 0),
        "packets_rerouted": faulty.get("packets_rerouted", 0),
    }


def fault_impact_for(config: SimulationConfig) -> dict:
    """Run ``config`` and its fault-free twin; return the impact record."""
    from ..sim.et_sim import run_simulation

    faulty = run_simulation(config).summary()
    baseline = run_simulation(fault_free_twin(config)).summary()
    return fault_impact(baseline, faulty)
