"""Fault-impact analysis: a faulty run against its fault-free twin.

Per-run fault counters (links cut, packets rerouted, ...) live in
:meth:`repro.sim.stats.SimulationStats.summary`; what they cannot say
alone is *how much delivery was lost to the faults*.  That is a paired
quantity: the same configuration with the fault schedule stripped is the
baseline, and the delta between the two runs is attributable to the
physical degradation alone (everything else — workload, seeds, platform
— is bit-identical by construction).
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimulationConfig
from ..faults import FaultConfig


def fault_free_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the fault schedule stripped."""
    return replace(config, faults=FaultConfig())


def fault_impact(baseline: dict, faulty: dict) -> dict:
    """Delivery-loss comparison of two summary dicts.

    Args:
        baseline: ``SimulationStats.summary()`` of the fault-free twin.
        faulty: Summary of the fault-bearing run.

    Returns:
        JSON-safe dict with absolute and fractional delivery loss, the
        lifetime delta and the fault counters of the faulty run.
    """
    base_jobs = float(baseline["jobs_fractional"])
    faulty_jobs = float(faulty["jobs_fractional"])
    loss = base_jobs - faulty_jobs
    return {
        "jobs_baseline": base_jobs,
        "jobs_faulty": faulty_jobs,
        "delivery_loss": round(loss, 3),
        "delivery_loss_fraction": (
            round(loss / base_jobs, 5) if base_jobs > 0 else 0.0
        ),
        "jobs_lost_delta": faulty["jobs_lost"] - baseline["jobs_lost"],
        "lifetime_delta_frames": (
            faulty["lifetime_frames"] - baseline["lifetime_frames"]
        ),
        "faults_injected": faulty.get("faults_injected", 0),
        "links_cut": faulty.get("links_cut", 0),
        "links_degraded": faulty.get("links_degraded", 0),
        "links_repaired": faulty.get("links_repaired", 0),
        "nodes_fault_killed": faulty.get("nodes_fault_killed", 0),
        "packets_rerouted": faulty.get("packets_rerouted", 0),
    }


def fault_impact_for(config: SimulationConfig) -> dict:
    """Run ``config`` and its fault-free twin; return the impact record."""
    from ..sim.et_sim import run_simulation

    faulty = run_simulation(config).summary()
    baseline = run_simulation(fault_free_twin(config)).summary()
    return fault_impact(baseline, faulty)


def wear_aware_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the wear-prediction weight switched on."""
    return replace(config, wear_aware=True)


def wear_comparison(reactive: dict, wear_aware: dict) -> dict:
    """Wear-aware EAR against reactive EAR on the same fault schedule.

    Args:
        reactive: ``SimulationStats.summary()`` of the plain-EAR run.
        wear_aware: Summary of the wear-aware run of the same config.

    Returns:
        JSON-safe dict with the lifetime and delivery deltas the
        wear-prediction weight bought (positive = wear-aware is ahead).
    """
    reactive_jobs = float(reactive["jobs_fractional"])
    wear_jobs = float(wear_aware["jobs_fractional"])
    return {
        "jobs_reactive": reactive_jobs,
        "jobs_wear_aware": wear_jobs,
        "jobs_gain": round(wear_jobs - reactive_jobs, 3),
        "lifetime_reactive_frames": reactive["lifetime_frames"],
        "lifetime_wear_aware_frames": wear_aware["lifetime_frames"],
        "lifetime_gain_frames": (
            wear_aware["lifetime_frames"] - reactive["lifetime_frames"]
        ),
        "recomputes_reactive": reactive.get("recomputes", 0),
        "recomputes_wear_aware": wear_aware.get("recomputes", 0),
        "packets_rerouted_reactive": reactive.get("packets_rerouted", 0),
        "packets_rerouted_wear_aware": wear_aware.get(
            "packets_rerouted", 0
        ),
    }


def wear_comparison_for(config: SimulationConfig) -> dict:
    """Run ``config`` reactively and wear-aware; return the comparison."""
    from ..sim.et_sim import run_simulation

    reactive = run_simulation(
        replace(config, wear_aware=False)
    ).summary()
    wear_aware = run_simulation(wear_aware_twin(config)).summary()
    return wear_comparison(reactive, wear_aware)
