"""Congestion-relief analysis: spreading runs against measure-only twins.

Per-run congestion counters (peak link traversals, hot-link share) live
in :meth:`repro.sim.stats.SimulationStats.summary`; what they cannot say
alone is *what the spreading bought*.  Those are paired quantities: the
same configuration with the congestion penalty neutralised and ECMP off
— but load tracking still on, so the metrics stay comparable — is the
twin, and the delta between the two runs is attributable to the
spreading alone.  Everything else (workload, seeds, platform) is
bit-identical by construction, and the measure-only twin routes exactly
like plain EAR.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import RoutingOptions, SimulationConfig


def measure_only_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with spreading disabled but load tracking kept.

    The twin keeps ``congestion_aware`` on with a neutral penalty
    (q = 1.0) so its summary still carries ``max_link_traversals`` /
    ``hot_link_share``, while the weights — and therefore every routing
    decision — match plain EAR bit for bit.
    """
    return replace(
        config,
        routing_opts=replace(
            config.routing_opts,
            congestion_aware=True,
            congestion_q=1.0,
            ecmp=False,
            ecmp_seed=0,
        ),
    )


def congestion_relief_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the congestion penalty and ECMP switched on."""
    opts = config.routing_opts
    return replace(
        config,
        routing_opts=replace(
            opts,
            congestion_aware=True,
            congestion_q=(
                RoutingOptions().congestion_q
                if opts.congestion_q <= 1.0
                else opts.congestion_q
            ),
            ecmp=True,
        ),
    )


def congestion_comparison(baseline: dict, relieved: dict) -> dict:
    """Congestion-aware ECMP against the measure-only baseline.

    Args:
        baseline: ``SimulationStats.summary()`` of the measure-only run
            (neutral penalty, no ECMP — plain-EAR routing).
        relieved: Summary of the spreading run of the same
            configuration.

    Returns:
        JSON-safe dict with the hot-link and lifetime deltas the
        spreading bought (positive reduction = relief is ahead), plus
        both runs' delivery accounting.
    """
    base_peak = int(baseline.get("max_link_traversals", 0))
    relief_peak = int(relieved.get("max_link_traversals", 0))
    base_share = float(baseline.get("hot_link_share", 0.0))
    relief_share = float(relieved.get("hot_link_share", 0.0))
    return {
        "peak_traversals_baseline": base_peak,
        "peak_traversals_relieved": relief_peak,
        "peak_reduction": base_peak - relief_peak,
        "peak_reduction_fraction": (
            round((base_peak - relief_peak) / base_peak, 5)
            if base_peak > 0
            else 0.0
        ),
        "hot_share_baseline": base_share,
        "hot_share_relieved": relief_share,
        "hot_share_reduction": round(base_share - relief_share, 9),
        "jobs_baseline": float(baseline["jobs_fractional"]),
        "jobs_relieved": float(relieved["jobs_fractional"]),
        "lifetime_baseline_frames": baseline["lifetime_frames"],
        "lifetime_relieved_frames": relieved["lifetime_frames"],
        "lifetime_gain_frames": (
            relieved["lifetime_frames"] - baseline["lifetime_frames"]
        ),
        "recomputes_baseline": baseline.get("recomputes", 0),
        "recomputes_relieved": relieved.get("recomputes", 0),
    }


def congestion_comparison_for(config: SimulationConfig) -> dict:
    """Run ``config`` measure-only and relieved; return the comparison."""
    from ..sim.et_sim import run_simulation

    baseline = run_simulation(measure_only_twin(config)).summary()
    relieved = run_simulation(congestion_relief_twin(config)).summary()
    return congestion_comparison(baseline, relieved)
