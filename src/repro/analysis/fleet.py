"""Human-readable reporting for fleet aggregate bundles.

The ``fleet`` subcommand's JSON bundle is the machine artifact; this
module renders the same document the way the per-fabric analyses render
their tables — metric quantiles, death-cause tallies and an ASCII
survival curve — so a terminal run of ``python -m repro fleet`` reads
like the rest of the bench output.  :func:`fleet_comparison` lines two
bundles over the *same* population (one fleet seed/size/distribution,
different base routing) up side by side — the population-scale version
of the paper's EAR-vs-SDR lifetime comparison.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .tables import format_table


def _survival_rows(survival: dict, columns: int = 16) -> dict[str, float]:
    """Down-sample the survival curve to a bar-chart-sized dict.

    Buckets beyond the last death are all zero; the chart stops one
    column past the last non-zero entry so tiny fleets do not render
    a hundred empty rows.
    """
    survivors = survival["survivors"]
    edges = survival["edges"]
    last = 0
    for index, count in enumerate(survivors):
        if count > 0:
            last = index
    span = last + 1
    step = max(1, -(-span // columns))
    rows: dict[str, float] = {}
    for index in range(0, span, step):
        rows[f">={edges[index]:g}f"] = float(survivors[index])
    return rows


def fleet_summary(bundle: dict) -> str:
    """Render one fleet bundle as paper-style tables and charts."""
    from .ascii_chart import bar_chart

    fleet = bundle["fleet"]
    aggregate = bundle["aggregate"]
    run = bundle.get("run", {})
    stream = bundle.get("stream", {})

    lines = []
    title = (
        f"fleet '{fleet['preset']}': {aggregate['count']} garments, "
        f"seed {fleet['seed']}"
    )
    metric_rows = []
    for name, stat in aggregate["metrics"].items():
        metric_rows.append(
            (
                name,
                round(stat["mean"], 2),
                round(stat["min"], 2),
                round(stat["p5"], 2),
                round(stat["p50"], 2),
                round(stat["p95"], 2),
                round(stat["max"], 2),
            )
        )
    lines.append(
        format_table(
            ["metric", "mean", "min", "p5", "p50", "p95", "max"],
            metric_rows,
            title=title,
        )
    )

    death_rows = sorted(
        aggregate["death_causes"].items(), key=lambda kv: (-kv[1], kv[0])
    )
    if death_rows:
        lines.append("")
        lines.append(
            format_table(["death cause", "garments"], death_rows)
        )

    survival = aggregate.get("survival")
    if survival and aggregate["count"]:
        lines.append("")
        lines.append(
            bar_chart(
                _survival_rows(survival),
                title="survivors by lifetime (frames)",
            )
        )

    stream_stats = dict(stream.get("lifetime_frames") or {})
    # Provenance rides along with the estimates; pull it out before the
    # numeric formatting below.
    source = stream_stats.pop("source", "p2")
    if any(v is not None for v in stream_stats.values()):
        live = ", ".join(
            f"{key}={value:.1f}"
            for key, value in sorted(stream_stats.items())
            if value is not None
        )
        lines.append("")
        if source == "histogram":
            lines.append(
                "stream (histogram-derived — merged shards have no "
                f"single arrival order): {live}"
            )
        else:
            lines.append(f"stream (P2, this run's arrival order): {live}")

    shards = run.get("shards")
    if shards:
        lines.append("")
        shard_rows = [
            (
                shard["index"],
                f"[{shard['start']}, {shard['start'] + shard['size']})",
                shard.get("executed", 0),
                shard.get("cached", 0),
                round(float(shard.get("elapsed_s") or 0.0), 1),
                shard.get("attempts", 1),
            )
            for shard in shards
        ]
        lines.append(
            format_table(
                ["shard", "garments", "simulated", "cached", "s",
                 "attempts"],
                shard_rows,
                title=f"{len(shards)}-way sharded run",
            )
        )

    if run:
        lines.append("")
        lines.append(
            f"{run.get('executed', 0)} simulated, {run.get('cached', 0)} "
            f"cached in {run.get('elapsed_s', 0.0):.1f}s "
            f"({run.get('workers') or 1} worker(s))"
        )
    return "\n".join(lines)


def _same_population(bundles: dict[str, dict]) -> None:
    """Refuse to compare bundles drawn from different populations.

    A routing comparison is only meaningful garment-for-garment: same
    distribution, same fleet seed, same size.  (The base configuration
    the variants differ in — routing — is not part of the fleet
    section, so it is exactly the free axis.)
    """
    reference_label, *rest = bundles
    reference = bundles[reference_label]["fleet"]
    for label in rest:
        fleet = bundles[label]["fleet"]
        for field in ("seed", "size", "distribution"):
            if fleet.get(field) != reference.get(field):
                raise ConfigurationError(
                    f"cannot compare fleets: {label!r} disagrees with "
                    f"{reference_label!r} on {field} — a routing "
                    "comparison needs one population (same "
                    "distribution, fleet seed and size)"
                )


def fleet_comparison(bundles: dict[str, dict]) -> str:
    """Compare fleet bundles over one population, side by side.

    ``bundles`` maps a variant label (typically the routing algorithm:
    ``ear``, ``sdr``) to its fleet bundle.  All bundles must cover the
    same ``(distribution, fleet_seed, size)`` population; the output is
    a lifetime/jobs quantile table, per-variant survival curves over
    shared lifetime edges, and — with exactly two variants — the
    headline mean-lifetime ratio, the fleet-scale analogue of the
    paper's EAR-vs-SDR improvement factor.
    """
    from .ascii_chart import bar_chart

    if len(bundles) < 2:
        raise ConfigurationError(
            f"fleet comparison needs >= 2 bundles, got {len(bundles)}"
        )
    _same_population(bundles)

    first = next(iter(bundles.values()))["fleet"]
    lines = []
    rows = []
    for label, bundle in bundles.items():
        lifetime = bundle["aggregate"]["metrics"]["lifetime_frames"]
        jobs = bundle["aggregate"]["metrics"]["jobs_fractional"]
        rows.append(
            (
                label,
                round(lifetime["mean"], 2),
                round(lifetime["p5"], 2),
                round(lifetime["p50"], 2),
                round(lifetime["p95"], 2),
                round(jobs["mean"], 2),
            )
        )
    lines.append(
        format_table(
            ["variant", "life mean", "p5", "p50", "p95", "jobs mean"],
            rows,
            title=(
                f"fleet '{first['preset']}' × {len(bundles)} variants: "
                f"{first['size']} garments, seed {first['seed']}"
            ),
        )
    )

    for label, bundle in bundles.items():
        survival = bundle["aggregate"].get("survival")
        if survival and bundle["aggregate"]["count"]:
            lines.append("")
            lines.append(
                bar_chart(
                    _survival_rows(survival),
                    title=f"survivors by lifetime — {label}",
                )
            )

    if len(bundles) == 2:
        (label_a, bundle_a), (label_b, bundle_b) = bundles.items()
        mean_a = bundle_a["aggregate"]["metrics"]["lifetime_frames"]["mean"]
        mean_b = bundle_b["aggregate"]["metrics"]["lifetime_frames"]["mean"]
        if mean_a is not None and mean_b:
            lines.append("")
            lines.append(
                f"mean lifetime {label_a}/{label_b}: "
                f"{mean_a / mean_b:.2f}x"
            )
    return "\n".join(lines)
