"""Human-readable reporting for fleet aggregate bundles.

The ``fleet`` subcommand's JSON bundle is the machine artifact; this
module renders the same document the way the per-fabric analyses render
their tables — metric quantiles, death-cause tallies and an ASCII
survival curve — so a terminal run of ``python -m repro fleet`` reads
like the rest of the bench output.
"""

from __future__ import annotations

from .tables import format_table


def _survival_rows(survival: dict, columns: int = 16) -> dict[str, float]:
    """Down-sample the survival curve to a bar-chart-sized dict.

    Buckets beyond the last death are all zero; the chart stops one
    column past the last non-zero entry so tiny fleets do not render
    a hundred empty rows.
    """
    survivors = survival["survivors"]
    edges = survival["edges"]
    last = 0
    for index, count in enumerate(survivors):
        if count > 0:
            last = index
    span = last + 1
    step = max(1, -(-span // columns))
    rows: dict[str, float] = {}
    for index in range(0, span, step):
        rows[f">={edges[index]:g}f"] = float(survivors[index])
    return rows


def fleet_summary(bundle: dict) -> str:
    """Render one fleet bundle as paper-style tables and charts."""
    from .ascii_chart import bar_chart

    fleet = bundle["fleet"]
    aggregate = bundle["aggregate"]
    run = bundle.get("run", {})
    stream = bundle.get("stream", {})

    lines = []
    title = (
        f"fleet '{fleet['preset']}': {aggregate['count']} garments, "
        f"seed {fleet['seed']}"
    )
    metric_rows = []
    for name, stat in aggregate["metrics"].items():
        metric_rows.append(
            (
                name,
                round(stat["mean"], 2),
                round(stat["min"], 2),
                round(stat["p5"], 2),
                round(stat["p50"], 2),
                round(stat["p95"], 2),
                round(stat["max"], 2),
            )
        )
    lines.append(
        format_table(
            ["metric", "mean", "min", "p5", "p50", "p95", "max"],
            metric_rows,
            title=title,
        )
    )

    death_rows = sorted(
        aggregate["death_causes"].items(), key=lambda kv: (-kv[1], kv[0])
    )
    if death_rows:
        lines.append("")
        lines.append(
            format_table(["death cause", "garments"], death_rows)
        )

    survival = aggregate.get("survival")
    if survival and aggregate["count"]:
        lines.append("")
        lines.append(
            bar_chart(
                _survival_rows(survival),
                title="survivors by lifetime (frames)",
            )
        )

    stream_stats = stream.get("lifetime_frames") or {}
    if any(v is not None for v in stream_stats.values()):
        live = ", ".join(
            f"{key}={value:.1f}"
            for key, value in sorted(stream_stats.items())
            if value is not None
        )
        lines.append("")
        lines.append(f"stream (P2, this run's arrival order): {live}")

    if run:
        lines.append("")
        lines.append(
            f"{run.get('executed', 0)} simulated, {run.get('cached', 0)} "
            f"cached in {run.get('elapsed_s', 0.0):.1f}s "
            f"({run.get('workers') or 1} worker(s))"
        )
    return "\n".join(lines)
