"""Analysis and reporting harness.

Parameter sweeps over mesh sizes / routing algorithms / controller
counts, paper-style table and ASCII-chart formatting, the Table-2
communication-energy calibration, and theory-versus-simulation gap
analysis.  The benchmark suite is a thin layer over this package.
"""

from .ascii_chart import bar_chart, series_chart
from .calibration import (
    calibrated_link_pitch_cm,
    implied_communication_energy_pj,
)
from .faults import (
    fault_free_twin,
    fault_impact,
    fault_impact_for,
    wear_aware_twin,
    wear_comparison,
    wear_comparison_for,
)
from .congestion import (
    congestion_comparison,
    congestion_comparison_for,
    congestion_relief_twin,
    measure_only_twin,
)
from .fleet import fleet_comparison, fleet_summary
from .harvest import (
    harvest_aware_twin,
    harvest_comparison,
    harvest_comparison_for,
    harvest_free_twin,
    harvest_impact,
    harvest_impact_for,
)
from .mapping import (
    income_mapping_twin,
    mapping_comparison,
    mapping_comparison_for,
    reactive_mapping_twin,
)
from .sweep import SweepResult, run_sweep, sweep_controllers, sweep_mesh_sizes
from .tables import format_table
from .theory import bound_comparison, gap_report
from .trace_summary import trace_summary

__all__ = [
    "SweepResult",
    "bar_chart",
    "bound_comparison",
    "calibrated_link_pitch_cm",
    "congestion_comparison",
    "congestion_comparison_for",
    "congestion_relief_twin",
    "fault_free_twin",
    "fault_impact",
    "fault_impact_for",
    "fleet_comparison",
    "fleet_summary",
    "format_table",
    "gap_report",
    "harvest_aware_twin",
    "harvest_comparison",
    "harvest_comparison_for",
    "harvest_free_twin",
    "harvest_impact",
    "harvest_impact_for",
    "implied_communication_energy_pj",
    "income_mapping_twin",
    "mapping_comparison",
    "mapping_comparison_for",
    "measure_only_twin",
    "reactive_mapping_twin",
    "run_sweep",
    "series_chart",
    "sweep_controllers",
    "sweep_mesh_sizes",
    "trace_summary",
    "wear_aware_twin",
    "wear_comparison",
    "wear_comparison_for",
]
