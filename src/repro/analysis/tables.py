"""Plain-text table formatting for bench output and the CLI."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are right-aligned, text left-aligned; floats are shown with
    a sensible fixed precision.  Purely cosmetic, but every bench and
    the CLI share it so the output of the reproduction reads like the
    paper's tables.
    """

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in text_rows))
        if text_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]

    def render_row(cells: Sequence[str], pad: str = " ") -> str:
        parts = []
        for col, cell in enumerate(cells):
            parts.append(cell.rjust(widths[col], pad))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Minimal CSV emission (no quoting needs beyond the data we emit)."""
    def fmt(value: object) -> str:
        text = str(value)
        if "," in text or '"' in text:
            escaped = text.replace('"', '""')
            return f'"{escaped}"'
        return text

    lines = [",".join(fmt(h) for h in headers)]
    for row in rows:
        lines.append(",".join(fmt(c) for c in row))
    return "\n".join(lines) + "\n"
