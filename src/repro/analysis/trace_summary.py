"""Render a JSONL telemetry trace as a human-readable report.

``python -m repro trace out.jsonl`` feeds a trace captured with
``--trace`` through :func:`trace_summary`: an ASCII timeline of the
run's frames with event markers, a re-plan table carrying each
recompute's causes and per-cost-term weight attribution, event counts,
and (when the trace kept its wall-clock channel) the hot-path timer
aggregates.

Traces written by the sweep/bench/fleet commands interleave several
points in one file, each line tagged with its ``scenario``/``point``;
the report groups by those tags and renders one section per point.
"""

from __future__ import annotations

from ..telemetry.recorder import TIMERS_KIND
from .tables import format_table

#: Timeline marker per event, highest priority last (a bucket holding
#: several events shows the highest-priority one).
_EVENT_MARKERS = (
    ("harvest-rejected", "h"),
    ("deadlock-recovered", "d"),
    ("deadlock-report", "D"),
    ("replan", "R"),
    ("fault", "F"),
    ("node-death", "X"),
)

_MARKER_PRIORITY = {
    event: priority for priority, (event, _) in enumerate(_EVENT_MARKERS)
}
_MARKER_CHAR = dict(_EVENT_MARKERS)

_LEGEND = (
    "legend: . frame  R replan  F fault  X node-death  "
    "D deadlock-report  d deadlock-recovered  h harvest-rejected"
)


def _group_key(line: dict) -> tuple:
    return (line.get("scenario"), line.get("point"))


def _group_lines(lines: list[dict]) -> list[tuple[tuple, list[dict]]]:
    """Split a trace into per-point groups, preserving first-seen order."""
    groups: dict[tuple, list[dict]] = {}
    for line in lines:
        groups.setdefault(_group_key(line), []).append(line)
    return list(groups.items())


def _timeline(group: list[dict], width: int) -> str:
    """One-line ASCII timeline of the group's frames and events."""
    last_frame = 0
    for line in group:
        frame = line.get("frame")
        if isinstance(frame, int) and frame > last_frame:
            last_frame = frame
    width = max(8, min(width, last_frame + 1))
    cells = [" "] * width
    priority = [-1] * width
    span = last_frame + 1

    def bucket(frame: int) -> int:
        return min(width - 1, frame * width // span)

    for line in group:
        frame = line.get("frame")
        if not isinstance(frame, int) or frame < 0:
            continue
        index = bucket(frame)
        if line["kind"] == "frame" and priority[index] < 0:
            cells[index] = "."
        elif line["kind"] == "event":
            rank = _MARKER_PRIORITY.get(line["event"], -1)
            if rank > priority[index]:
                priority[index] = rank
                cells[index] = _MARKER_CHAR.get(line["event"], "!")
    return f"frames 0..{last_frame}  |{''.join(cells)}|"


def _format_terms(terms: list[dict]) -> str:
    """Compact per-term attribution: ``term xN (max f)``."""
    parts = []
    for term in terms:
        scaled = term.get("links_scaled", 0)
        if not scaled:
            continue
        parts.append(
            f"{term['term']} x{scaled} (max {term.get('max_factor')})"
        )
    return ", ".join(parts) if parts else "-"


def _replan_table(group: list[dict]) -> str | None:
    replans = [
        line
        for line in group
        if line["kind"] == "event" and line["event"] == "replan"
    ]
    if not replans:
        return None
    rows = [
        (
            line["frame"],
            ",".join(line.get("causes", [])) or "-",
            line.get("entries_sent", "-"),
            _format_terms(line.get("terms", [])),
        )
        for line in replans
    ]
    return format_table(
        ["frame", "causes", "entries", "term attribution"],
        rows,
        title=f"{len(replans)} re-plan(s)",
    )


def _event_counts(group: list[dict]) -> str | None:
    counts: dict[str, int] = {}
    for line in group:
        if line["kind"] == "event":
            counts[line["event"]] = counts.get(line["event"], 0) + 1
    if not counts:
        return None
    return "events: " + ", ".join(
        f"{name}={count}" for name, count in sorted(counts.items())
    )


def _timer_table(group: list[dict]) -> str | None:
    timers: dict[str, dict] = {}
    for line in group:
        if line.get("kind") == TIMERS_KIND:
            for name, stats in line.get("timers", {}).items():
                merged = timers.setdefault(
                    name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
                )
                merged["count"] += stats.get("count", 0)
                merged["total_s"] += stats.get("total_s", 0.0)
                merged["max_s"] = max(
                    merged["max_s"], stats.get("max_s", 0.0)
                )
    if not timers:
        return None
    rows = []
    for name, stats in sorted(timers.items()):
        count = stats["count"] or 1
        rows.append(
            (
                name,
                stats["count"],
                round(stats["total_s"] * 1e3, 3),
                round(stats["total_s"] / count * 1e6, 3),
                round(stats["max_s"] * 1e6, 3),
            )
        )
    return format_table(
        ["timer", "count", "total (ms)", "mean (us)", "max (us)"],
        rows,
        title="hot-path timers (non-deterministic channel)",
    )


def _group_title(key: tuple, group: list[dict]) -> str:
    scenario, point = key
    if point is not None:
        return f"{scenario}/{point}" if scenario else str(point)
    for line in group:
        if line.get("kind") == "meta" and line.get("label"):
            return str(line["label"])
    return "trace"


def trace_summary(
    lines: list[dict], width: int = 64, show_events: bool = False
) -> str:
    """Multi-section report over the trace's per-point groups.

    Args:
        lines: Parsed trace lines (see
            :func:`repro.telemetry.trace_io.load_trace`).
        width: Timeline width in character cells.
        show_events: Append every discrete event as its own line
            (verbose; the default keeps only the tables).
    """
    if not lines:
        return "empty trace"
    sections: list[str] = []
    for key, group in _group_lines(lines):
        frames = sum(1 for line in group if line["kind"] == "frame")
        events = sum(1 for line in group if line["kind"] == "event")
        part = [
            f"== {_group_title(key, group)} "
            f"({frames} frame probe(s), {events} event(s))",
            _timeline(group, width),
        ]
        counts = _event_counts(group)
        if counts:
            part.append(counts)
        replans = _replan_table(group)
        if replans:
            part.append(replans)
        if show_events:
            for line in group:
                if line["kind"] == "event":
                    fields = {
                        k: v
                        for k, v in line.items()
                        if k not in ("kind", "event", "frame")
                    }
                    detail = " ".join(
                        f"{k}={v}" for k, v in sorted(fields.items())
                    )
                    part.append(
                        f"  [{line['frame']:>6}] {line['event']} {detail}"
                    )
        timers = _timer_table(group)
        if timers:
            part.append(timers)
        sections.append("\n".join(part))
    sections.append(_LEGEND)
    return "\n\n".join(sections)
