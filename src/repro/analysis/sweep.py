"""Parameter-sweep harness over et_sim runs.

Every evaluation artifact of the paper is a sweep: Fig 7 sweeps mesh
size x routing algorithm, Table 2 sweeps mesh size under the ideal
battery, Fig 8 sweeps mesh size x controller count.  The harness keeps
each run fully described by its :class:`~repro.config.SimulationConfig`
and returns plain records convenient for tabulation and CSV export.

Execution is delegated to :mod:`repro.orchestration`: pass a
:class:`~repro.orchestration.ParallelSweepRunner` (optionally wrapping a
:class:`~repro.orchestration.SweepCache`) to fan points out over worker
processes and memoise finished points; the default remains in-process
sequential execution with full :class:`~repro.sim.stats.SimulationStats`
objects on every result.
"""

from __future__ import annotations

from typing import Callable

from ..config import ControlConfig, SimulationConfig
from ..orchestration.runner import (
    SequentialSweepRunner,
    SweepPoint,
    SweepRecord,
    SweepRunner,
)
from ..orchestration.scenarios import controller_grid, mesh_routing_grid
from ..sim.stats import SimulationStats


class SweepResult(SweepRecord):
    """Outcome of one sweep point (a :class:`SweepRecord` plus the
    analysis-side conveniences).

    ``stats`` is None when the point was served from a runner's cache —
    only the JSON ``summary`` survives a round-trip through disk.
    """

    @classmethod
    def from_record(cls, record: SweepRecord) -> "SweepResult":
        return cls(**vars(record))

    @property
    def jobs_fractional(self) -> float:
        """Completed jobs incl. partial credit, cache-safe."""
        if self.stats is not None:
            return self.stats.jobs_fractional
        return float(self.summary["jobs_fractional"])


def _run_points(
    points: list[SweepPoint],
    runner: SweepRunner | None,
    hook: Callable[["SweepRecord"], None] | None = None,
) -> list[SweepResult]:
    active = runner if runner is not None else SequentialSweepRunner()
    return [
        SweepResult.from_record(r) for r in active.run(points, hook=hook)
    ]


def run_sweep(
    configs: dict[str, SimulationConfig],
    hook: Callable[[str, SimulationStats | None], None] | None = None,
    runner: SweepRunner | None = None,
) -> list[SweepResult]:
    """Run a labelled set of configurations.

    Args:
        configs: Mapping of label to configuration.
        hook: Optional callback invoked after each run (progress
            reporting in long benches).  Receives the label and the
            full stats — **None for points served from a runner's
            cache**, where only the JSON summary survives; cache-aware
            hooks (and readers of ``SweepResult.stats``) must handle
            that or read ``SweepResult.summary`` instead.
        runner: Sweep executor; defaults to in-process sequential
            (no cache, so ``stats`` is always present).
    """
    points = [
        SweepPoint(label=label, config=config, params={"label": label})
        for label, config in configs.items()
    ]
    record_hook = None
    if hook is not None:
        def record_hook(record: SweepRecord) -> None:
            hook(record.label, record.stats)

    return _run_points(points, runner, hook=record_hook)


def sweep_mesh_sizes(
    base: SimulationConfig,
    widths: tuple[int, ...] = (4, 5, 6, 7, 8),
    routings: tuple[str, ...] = ("ear", "sdr"),
    runner: SweepRunner | None = None,
    hook: Callable[["SweepRecord"], None] | None = None,
) -> list[SweepResult]:
    """The Fig 7 grid: mesh width x routing algorithm."""
    return _run_points(
        mesh_routing_grid(base, widths, routings), runner, hook=hook
    )


def sweep_controllers(
    base: SimulationConfig,
    widths: tuple[int, ...] = (4, 5, 6, 7, 8),
    controller_counts: tuple[int, ...] = (1, 2, 4, 7, 10),
    runner: SweepRunner | None = None,
) -> list[SweepResult]:
    """The Fig 8 grid: mesh width x number of finite-battery controllers."""
    return _run_points(
        controller_grid(base, widths, controller_counts), runner
    )


def default_control() -> ControlConfig:
    """Convenience: a fresh default control configuration."""
    return ControlConfig()
