"""Parameter-sweep harness over et_sim runs.

Every evaluation artifact of the paper is a sweep: Fig 7 sweeps mesh
size x routing algorithm, Table 2 sweeps mesh size under the ideal
battery, Fig 8 sweeps mesh size x controller count.  The harness keeps
each run fully described by its :class:`~repro.config.SimulationConfig`
and returns plain records convenient for tabulation and CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..config import ControlConfig, SimulationConfig
from ..sim.et_sim import run_simulation
from ..sim.stats import SimulationStats


@dataclass
class SweepResult:
    """Outcome of one sweep point.

    Attributes:
        label: Human-readable point label (e.g. ``"4x4/ear"``).
        params: The swept parameter values.
        stats: Full simulation statistics.
    """

    label: str
    params: dict
    stats: SimulationStats

    def record(self) -> dict:
        """Flat JSON-safe record for CSV/JSON emission."""
        row = dict(self.params)
        row.update(self.stats.summary())
        return row


def run_sweep(
    configs: dict[str, SimulationConfig],
    hook: Callable[[str, SimulationStats], None] | None = None,
) -> list[SweepResult]:
    """Run a labelled set of configurations sequentially.

    Args:
        configs: Mapping of label to configuration.
        hook: Optional callback invoked after each run (progress
            reporting in long benches).
    """
    results = []
    for label, config in configs.items():
        stats = run_simulation(config)
        if hook is not None:
            hook(label, stats)
        results.append(
            SweepResult(
                label=label,
                params={"label": label},
                stats=stats,
            )
        )
    return results


def sweep_mesh_sizes(
    base: SimulationConfig,
    widths: tuple[int, ...] = (4, 5, 6, 7, 8),
    routings: tuple[str, ...] = ("ear", "sdr"),
) -> list[SweepResult]:
    """The Fig 7 grid: mesh width x routing algorithm."""
    results = []
    for width in widths:
        for routing in routings:
            config = replace(
                base,
                platform=replace(base.platform, mesh_width=width),
                routing=routing,
            )
            stats = run_simulation(config)
            results.append(
                SweepResult(
                    label=f"{width}x{width}/{routing}",
                    params={"mesh": f"{width}x{width}", "routing": routing},
                    stats=stats,
                )
            )
    return results


def sweep_controllers(
    base: SimulationConfig,
    widths: tuple[int, ...] = (4, 5, 6, 7, 8),
    controller_counts: tuple[int, ...] = (1, 2, 4, 7, 10),
) -> list[SweepResult]:
    """The Fig 8 grid: mesh width x number of finite-battery controllers."""
    results = []
    for count in controller_counts:
        for width in widths:
            control = replace(
                base.control,
                num_controllers=count,
                controller_battery="thin-film",
            )
            config = replace(
                base,
                platform=replace(base.platform, mesh_width=width),
                control=control,
            )
            stats = run_simulation(config)
            results.append(
                SweepResult(
                    label=f"{width}x{width}/{count}ctl",
                    params={
                        "mesh": f"{width}x{width}",
                        "controllers": count,
                    },
                    stats=stats,
                )
            )
    return results


def default_control() -> ControlConfig:
    """Convenience: a fresh default control configuration."""
    return ControlConfig()
