"""Harvest-impact analysis: income-bearing runs against their twins.

Per-run harvest counters (energy accepted, bus transfers, ...) live in
:meth:`repro.sim.stats.SimulationStats.summary`; what they cannot say
alone is *what the income (or the harvest-aware weight) bought*.  Those
are paired quantities: the same configuration with the income stripped
(or the harvest weight toggled) is the twin, and the delta between the
two runs is attributable to the harvesting alone — everything else
(workload, seeds, platform) is bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import replace

from ..config import SimulationConfig
from ..harvest import HarvestConfig


def harvest_free_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the income schedule stripped."""
    return replace(config, harvest=HarvestConfig(), harvest_aware=False)


def harvest_aware_twin(config: SimulationConfig) -> SimulationConfig:
    """The same run with the harvest-bonus weight switched on."""
    return replace(config, harvest_aware=True)


def harvest_comparison(reactive: dict, harvest_aware: dict) -> dict:
    """Harvest-aware EAR against reactive EAR on the same income schedule.

    Args:
        reactive: ``SimulationStats.summary()`` of the plain-EAR run.
        harvest_aware: Summary of the harvest-aware run of the same
            configuration.

    Returns:
        JSON-safe dict with the delivery and lifetime deltas the
        harvest-bonus weight bought (positive = harvest-aware is
        ahead), plus both runs' harvest accounting.
    """
    reactive_jobs = float(reactive["jobs_fractional"])
    aware_jobs = float(harvest_aware["jobs_fractional"])
    return {
        "jobs_reactive": reactive_jobs,
        "jobs_harvest_aware": aware_jobs,
        "jobs_gain": round(aware_jobs - reactive_jobs, 3),
        "lifetime_reactive_frames": reactive["lifetime_frames"],
        "lifetime_harvest_aware_frames": harvest_aware["lifetime_frames"],
        "lifetime_gain_frames": (
            harvest_aware["lifetime_frames"] - reactive["lifetime_frames"]
        ),
        "harvested_reactive_pj": reactive.get("harvested_pj", 0.0),
        "harvested_aware_pj": harvest_aware.get("harvested_pj", 0.0),
        "shared_reactive_pj": reactive.get("shared_pj", 0.0),
        "shared_aware_pj": harvest_aware.get("shared_pj", 0.0),
        "recomputes_reactive": reactive.get("recomputes", 0),
        "recomputes_harvest_aware": harvest_aware.get("recomputes", 0),
    }


def harvest_comparison_for(config: SimulationConfig) -> dict:
    """Run ``config`` reactively and harvest-aware; return the comparison."""
    from ..sim.et_sim import run_simulation

    reactive = run_simulation(
        replace(config, harvest_aware=False)
    ).summary()
    aware = run_simulation(harvest_aware_twin(config)).summary()
    return harvest_comparison(reactive, aware)


def harvest_impact(baseline: dict, harvesting: dict) -> dict:
    """Delivery gain of an income-bearing run over its harvest-free twin.

    Args:
        baseline: ``SimulationStats.summary()`` of the harvest-free twin.
        harvesting: Summary of the income-bearing run.
    """
    base_jobs = float(baseline["jobs_fractional"])
    harvest_jobs = float(harvesting["jobs_fractional"])
    gain = harvest_jobs - base_jobs
    return {
        "jobs_baseline": base_jobs,
        "jobs_harvesting": harvest_jobs,
        "delivery_gain": round(gain, 3),
        "delivery_gain_fraction": (
            round(gain / base_jobs, 5) if base_jobs > 0 else 0.0
        ),
        "lifetime_delta_frames": (
            harvesting["lifetime_frames"] - baseline["lifetime_frames"]
        ),
        "harvested_pj": harvesting.get("harvested_pj", 0.0),
        "shared_pj": harvesting.get("shared_pj", 0.0),
        "harvest_events": harvesting.get("harvest_events", 0),
    }


def harvest_impact_for(config: SimulationConfig) -> dict:
    """Run ``config`` and its harvest-free twin; return the impact."""
    from ..sim.et_sim import run_simulation

    harvesting = run_simulation(config).summary()
    baseline = run_simulation(harvest_free_twin(config)).summary()
    return harvest_impact(baseline, harvesting)
