"""First-class engine registry.

Engine choice used to be an implicit function of the workload kind,
buried in ``EtSim.build_engine``.  The registry makes it an explicit,
extensible mapping from engine *names* to builders, shared by the
facade, the sweep runner and the CLI: ``SimulationConfig.engine``
selects by name (``"auto"`` resolving to the workload's historical
engine), and unknown names fail with the full list of valid ones.

Builders import lazily so ``import repro.sim`` stays cheap and the
registry never forces NumPy-heavy modules on callers that only need
the sequential engine.
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..errors import ConfigurationError


def _build_sequential(config: SimulationConfig, recorder=None):
    from .sequential_engine import SequentialEngine

    return SequentialEngine(config, recorder)


def _build_concurrent(config: SimulationConfig, recorder=None):
    from .concurrent_engine import ConcurrentEngine

    return ConcurrentEngine(config, recorder)


def _build_vector(config: SimulationConfig, recorder=None):
    from .vector_engine import VectorEngine

    return VectorEngine(config, recorder)


#: Engine name -> builder taking a :class:`SimulationConfig`.
ENGINE_REGISTRY = {
    "sequential": _build_sequential,
    "concurrent": _build_concurrent,
    "vector": _build_vector,
}


def build_engine(config: SimulationConfig, recorder=None):
    """Instantiate the engine ``config`` selects, via the registry.

    Resolves ``"auto"`` through
    :meth:`~repro.config.SimulationConfig.resolved_engine` and rejects
    unknown names with the list of registered ones.  ``recorder`` is an
    optional telemetry sink forwarded to the engine; None keeps the
    zero-overhead null recorder.
    """
    name = config.resolved_engine()
    try:
        builder = ENGINE_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: "
            f"{sorted(ENGINE_REGISTRY)}"
        ) from None
    return builder(config, recorder)
