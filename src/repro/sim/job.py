"""Jobs: one AES encryption walking through the fabric.

A job owns a real 16-byte state and steps through the
:class:`~repro.aes.dataflow.AesJobDataflow` operation sequence.  When the
last operation completes the ciphertext is verified against the
monolithic reference cipher — functional verification the paper's
simulator implies (it simulates the actual AES) and that this
reproduction enforces on every single job.
"""

from __future__ import annotations

from ..aes.cipher import encrypt_block
from ..aes.dataflow import AesJobDataflow, Operation
from ..errors import SimulationError


class Job:
    """One in-flight encryption job.

    Attributes:
        job_id: Sequential id.
        plaintext: The 16-byte input block.
        state: Current intermediate state.
        op_index: Next operation to execute (0-based).
        holder: Node currently holding the job's last verified state.
    """

    def __init__(
        self,
        job_id: int,
        plaintext: bytes,
        dataflow: AesJobDataflow,
        origin: int,
    ):
        self.job_id = job_id
        self.plaintext = bytes(plaintext)
        self.state = bytes(plaintext)
        self.op_index = 0
        self.holder = origin
        self._dataflow = dataflow
        self._expected = encrypt_block(self.plaintext, dataflow.key)

    # ------------------------------------------------------------------
    @property
    def dataflow(self) -> AesJobDataflow:
        return self._dataflow

    @property
    def total_operations(self) -> int:
        return self._dataflow.total_operations

    @property
    def completed(self) -> bool:
        return self.op_index >= self.total_operations

    @property
    def current_operation(self) -> Operation:
        if self.completed:
            raise SimulationError(
                f"job {self.job_id} already completed all operations"
            )
        return self._dataflow.operations[self.op_index]

    @property
    def progress_fraction(self) -> float:
        """Completed operations over operations per job, in [0, 1]."""
        return self.op_index / self.total_operations

    # ------------------------------------------------------------------
    def execute_current(self, node: int) -> None:
        """Apply the current operation's transform at ``node``.

        Updates the carried state, advances the operation pointer, and
        records the node as the new holder of the job's state.
        """
        op = self.current_operation
        self.state = self._dataflow.apply(op, self.state)
        self.op_index += 1
        self.holder = node

    def verify(self) -> bool:
        """Check the final state against the reference ciphertext."""
        if not self.completed:
            raise SimulationError(
                f"job {self.job_id} verified before completion"
            )
        return self.state == self._expected

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, op={self.op_index}/"
            f"{self.total_operations}, holder={self.holder})"
        )
