"""Workload generation: the stream of encryption jobs.

The paper's sensor/actuator block (Fig 3a) produces data to encrypt; the
job factory draws deterministic pseudo-random plaintexts from a seeded
generator, so every simulation is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..aes.dataflow import AesJobDataflow
from .job import Job


class JobFactory:
    """Creates jobs with seeded random plaintexts under a fixed key."""

    def __init__(self, key: bytes, seed: int, origin: int):
        self._dataflow = AesJobDataflow(key)
        self._rng = np.random.default_rng(seed)
        self._origin = origin
        self._created = 0

    @property
    def dataflow(self) -> AesJobDataflow:
        return self._dataflow

    @property
    def created(self) -> int:
        """Number of jobs created so far."""
        return self._created

    def next_job(self) -> Job:
        """Create the next job with a fresh random plaintext."""
        plaintext = bytes(
            int(b) for b in self._rng.integers(0, 256, size=16)
        )
        job = Job(
            job_id=self._created,
            plaintext=plaintext,
            dataflow=self._dataflow,
            origin=self._origin,
        )
        self._created += 1
        return job
