"""et_sim facade: build and run a configured platform.

:class:`EtSim` resolves the engine through the registry
(:data:`~repro.sim.registry.ENGINE_REGISTRY`): ``config.engine`` picks
it by name, with ``"auto"`` keeping the historical workload-kind
mapping (the paper's main experiments use the sequential engine, the
deadlock experiments the concurrent one).  :func:`run_simulation` is
the one-call entry point used by the examples, the benches and the CLI.
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..errors import ConfigurationError
from .stats import SimulationStats


class EtSim:
    """One configured e-textile platform, ready to run.

    ``recorder`` is an optional telemetry sink (see
    :mod:`repro.telemetry`); None keeps the zero-overhead null
    recorder, preserving historical behaviour bit for bit.
    """

    def __init__(self, config: SimulationConfig, recorder=None):
        self.config = config
        self.recorder = recorder

    def build_engine(self):
        """Instantiate the engine ``config.engine`` selects."""
        from .registry import build_engine

        return build_engine(self.config, self.recorder)

    def run(self) -> SimulationStats:
        """Simulate until system death (or budget) and return statistics."""
        engine = self.build_engine()
        stats = engine.run()
        if stats.verification_failures:
            raise ConfigurationError(
                f"{stats.verification_failures} completed jobs failed AES "
                "verification — the simulator corrupted data"
            )
        return stats


def run_simulation(
    config: SimulationConfig, recorder=None
) -> SimulationStats:
    """Build a platform from ``config`` and run it to completion."""
    return EtSim(config, recorder).run()
