"""Per-link utilisation tracking for congestion-aware routing.

The engines already count link traversals for the wear weight
(:class:`~repro.faults.schedule.FaultRuntime`), but wear accumulates
monotonically over a link's whole life — congestion needs the *rate*:
how busy a line is right now.  :class:`CongestionRuntime` keeps an
exponential moving average of each link's per-frame traversal count,
quantises it into discrete load levels through the shared
:class:`~repro.core.link_levels.LinkLevelStore`, and flips
:attr:`~CongestionRuntime.load_dirty` on level crossings — the same
report-on-change discipline as battery, wear, and income telemetry.

The EMA half-life is short (a few tens of frames at the default
``alpha``): congestion must track the *current* routing plan, not the
run's history, or a relieved corridor would stay penalised long after
traffic moved off it and the weight would oscillate.
"""

from __future__ import annotations

import numpy as np

from ..core.link_levels import LinkLevelStore
from ..core.weights import DEFAULT_CONGESTION_LEVELS

#: Smoothing factor of the per-link traversal-rate moving average.  Much
#: faster than the income EMA (0.02): income shifts with the wearer's
#: activity schedule over thousands of frames, while link load jumps the
#: moment a routing recomputation moves a corridor, and the penalty must
#: follow within tens of frames for relief to engage before the hot
#: cells sag.
CONGESTION_EMA_ALPHA = 0.2


class CongestionRuntime:
    """Per-run link-utilisation state backing the congestion weight.

    Tracking is opt-in via ``quantum``: each link's load level is its
    smoothed per-frame traversal count in units of ``quantum``, capped
    at ``levels - 1``.  :meth:`note_traversal` is the hot path (one
    dict increment per forwarded packet, mirroring the wear counter);
    the EMA fold, quantisation, and dirty-flag bookkeeping happen once
    per frame in :meth:`end_frame`.

    Lifetime totals (:attr:`totals`) are kept alongside the EMA for the
    end-of-run utilisation metrics — they see every traversal whether
    or not the penalty is active, so measure-only baselines report the
    same statistics as penalised runs.
    """

    def __init__(
        self,
        quantum: float = 0.0,
        levels: int = DEFAULT_CONGESTION_LEVELS,
        alpha: float = CONGESTION_EMA_ALPHA,
    ):
        self.quantum = float(quantum)
        self.levels = int(levels)
        self.alpha = float(alpha)
        #: Canonical pair -> traversals in the current frame.
        self._frame_counts: dict[tuple[int, int], int] = {}
        #: Canonical pair -> smoothed traversals per frame.
        self._ema: dict[tuple[int, int], float] = {}
        #: Canonical pair -> lifetime traversal count.
        self.totals: dict[tuple[int, int], int] = {}
        self._store = LinkLevelStore()

    @property
    def tracks_load(self) -> bool:
        """True when the utilisation estimator is enabled."""
        return self.quantum > 0

    @property
    def load_dirty(self) -> bool:
        """Some link crossed a load-level boundary since the last reset."""
        return self._store.dirty

    @load_dirty.setter
    def load_dirty(self, value: bool) -> None:
        self._store.dirty = value

    def note_traversal(self, u: int, v: int) -> None:
        """One packet crossed the ``u - v`` line (hot path when enabled)."""
        if not self.tracks_load:
            return
        pair = (u, v) if u < v else (v, u)
        self._frame_counts[pair] = self._frame_counts.get(pair, 0) + 1

    def end_frame(self) -> None:
        """Fold the frame's counts into the EMA and requantise levels."""
        if not self.tracks_load:
            return
        alpha = self.alpha
        quantum = self.quantum
        cap = self.levels - 1
        counts = self._frame_counts
        ema = self._ema
        store = self._store
        # Links active this frame: fold the count in.
        for pair, count in counts.items():
            rate = ema.get(pair, 0.0)
            rate += alpha * (count - rate)
            ema[pair] = rate
            self.totals[pair] = self.totals.get(pair, 0) + count
            store.set_level(pair, min(cap, int(rate / quantum)))
        # Links quiet this frame: decay toward zero, dropping entries
        # once they cannot influence a level (keeps the dict bounded by
        # the working set, not the run's history).
        floor = quantum * 1e-3
        for pair in list(ema):
            if pair in counts:
                continue
            rate = ema[pair] * (1.0 - alpha)
            if rate < floor:
                del ema[pair]
                store.set_level(pair, 0)
            else:
                ema[pair] = rate
                store.set_level(pair, min(cap, int(rate / quantum)))
        counts.clear()

    def load_level_matrix(self, num_nodes: int) -> np.ndarray:
        """Dense symmetric ``(K, K)`` int matrix of quantised load levels."""
        return self._store.matrix(num_nodes)

    def level_snapshot(self) -> dict[tuple[int, int], int]:
        """Sparse copy of the nonzero load levels (telemetry probes)."""
        return self._store.snapshot()

    # ------------------------------------------------------------------
    # End-of-run utilisation metrics
    # ------------------------------------------------------------------
    def total_traversals(self) -> int:
        """Lifetime traversal count summed over every link."""
        return sum(self.totals.values())

    def max_link_traversals(self) -> int:
        """Lifetime traversal count of the single busiest link."""
        return max(self.totals.values(), default=0)

    def hot_link_share(self) -> float:
        """Busiest link's share of all traversals (0 when idle)."""
        total = self.total_traversals()
        if not total:
            return 0.0
        return self.max_link_traversals() / total
