"""Struct-of-arrays battery banks for the vector engine.

The scalar battery models (:mod:`repro.battery`) hold one Python object
per cell, which is exactly right for the per-draw engines but wastes the
frame-batched structure of the vector engine: there, every mesh cell
performs the *same* operation per frame (absorb the frame's load, accept
income, rest), so the state lives better as NumPy arrays with one
vectorised update per frame.

Each bank mirrors the corresponding scalar model's arithmetic line by
line — EMA smoothing, discharge-curve interpolation, rate-capacity
penalty, death conditions — so a bank cell and a scalar cell fed the
same draw sequence agree to float precision (pinned by the unit tests).
Scalar access stays available two ways:

* ``draw_one`` / ``recharge_one`` / ``rest_one`` operate on a single
  index with the exact scalar code path (used by the inherited
  power-sharing pass, which transfers between individual cells), and
* :class:`BankBatteryView` adapts one bank index to the
  :class:`~repro.battery.base.Battery` interface, so everything written
  against per-node batteries (finalisation, conservation tests,
  examples) reads bank-backed nodes unchanged.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from ..battery.base import Battery, DrawResult
from ..battery.ideal import DEFAULT_VOLTAGE
from ..battery.thin_film import _PJ_PER_CYCLE_TO_MW, ThinFilmParameters
from ..errors import BatteryError, ConfigurationError


class BankBatteryView(Battery):
    """One bank index presented through the scalar Battery interface."""

    def __init__(self, bank: "IdealBatteryBank | ThinFilmBatteryBank", index: int):
        self._bank = bank
        self._index = index

    @property
    def nominal_capacity_pj(self) -> float:
        return self._bank.capacity_pj

    @property
    def delivered_pj(self) -> float:
        return float(self._bank.delivered[self._index])

    @property
    def recharged_pj(self) -> float:
        return float(self._bank.recharged[self._index])

    @property
    def consumed_pj(self) -> float:
        return self._bank.consumed_one(self._index)

    @property
    def loss_pj(self) -> float:
        return self._bank.loss_one(self._index)

    @property
    def alive(self) -> bool:
        return bool(self._bank.alive[self._index])

    @property
    def voltage(self) -> float:
        return self._bank.voltage_one(self._index)

    @property
    def state_of_charge(self) -> float:
        return self._bank.soc_one(self._index)

    def draw(self, energy_pj: float, duration_cycles: float) -> DrawResult:
        return self._bank.draw_one(self._index, energy_pj, duration_cycles)

    def recharge(self, energy_pj: float) -> float:
        return self._bank.recharge_one(self._index, energy_pj)

    def rest(self, duration_cycles: float) -> None:
        self._bank.rest_one(self._index, duration_cycles)


def _check_draw_args(energy_pj: float, duration_cycles: float) -> None:
    if energy_pj < 0:
        raise ConfigurationError(f"cannot draw negative energy {energy_pj}")
    if duration_cycles <= 0:
        raise ConfigurationError(
            f"draw duration must be positive, got {duration_cycles}"
        )


class IdealBatteryBank:
    """Array-of-cells version of :class:`~repro.battery.ideal.IdealBattery`."""

    def __init__(
        self,
        count: int,
        capacity_pj: float,
        voltage: float = DEFAULT_VOLTAGE,
    ):
        if capacity_pj <= 0:
            raise ConfigurationError("battery capacity must be positive")
        self.capacity_pj = float(capacity_pj)
        self._voltage = float(voltage)
        self.delivered = np.zeros(count, dtype=float)
        self.recharged = np.zeros(count, dtype=float)
        self.alive = np.ones(count, dtype=bool)

    # -- vector operations (one call per frame) -------------------------
    def draw(
        self, requests: np.ndarray, durations: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``requests[i]`` pJ from every cell; zero requests and
        dead cells are untouched.  Returns ``(delivered, died)``."""
        active = self.alive & (requests > 0.0)
        available = self.capacity_pj - (self.delivered - self.recharged)
        delivered = np.where(
            active, np.minimum(requests, available), 0.0
        )
        self.delivered += delivered
        died = active & (
            self.delivered - self.recharged >= self.capacity_pj - 1e-9
        )
        self.alive &= ~died
        return delivered, died

    def recharge(
        self, offers: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Accept up to ``offers[i]`` into each masked living cell."""
        ok = mask & self.alive & (offers > 0.0)
        headroom = np.maximum(0.0, self.delivered - self.recharged)
        accepted = np.where(ok, np.minimum(offers, headroom), 0.0)
        self.recharged += accepted
        return accepted

    def rest(self, duration_cycles: float, mask: np.ndarray) -> None:
        """No-op: an ideal cell has no load-history state."""

    def soc_vector(self) -> np.ndarray:
        consumed = self.delivered - self.recharged
        return np.minimum(1.0, np.maximum(0.0, 1.0 - consumed / self.capacity_pj))

    # -- scalar access (power sharing, views) ---------------------------
    def consumed_one(self, i: int) -> float:
        return float(self.delivered[i] - self.recharged[i])

    def loss_one(self, i: int) -> float:
        return 0.0

    def voltage_one(self, i: int) -> float:
        return self._voltage if self.alive[i] else 0.0

    def soc_one(self, i: int) -> float:
        return min(1.0, max(0.0, 1.0 - self.consumed_one(i) / self.capacity_pj))

    def draw_one(
        self, i: int, energy_pj: float, duration_cycles: float
    ) -> DrawResult:
        if not self.alive[i]:
            raise BatteryError("cannot draw from a dead battery")
        _check_draw_args(energy_pj, duration_cycles)
        available = self.capacity_pj - self.consumed_one(i)
        delivered = min(energy_pj, available)
        self.delivered[i] += delivered
        died = self.consumed_one(i) >= self.capacity_pj - 1e-9
        if died:
            self.alive[i] = False
        return DrawResult(
            requested_pj=energy_pj,
            delivered_pj=delivered,
            died=died,
            voltage=self._voltage,
        )

    def recharge_one(self, i: int, energy_pj: float) -> float:
        if energy_pj < 0:
            raise ConfigurationError(
                f"cannot recharge negative energy {energy_pj}"
            )
        if not self.alive[i]:
            return 0.0
        accepted = min(energy_pj, max(0.0, self.consumed_one(i)))
        self.recharged[i] += accepted
        return accepted

    def rest_one(self, i: int, duration_cycles: float) -> None:
        if duration_cycles < 0:
            raise ConfigurationError(
                f"rest duration must be non-negative, got {duration_cycles}"
            )


class ThinFilmBatteryBank:
    """Array-of-cells version of
    :class:`~repro.battery.thin_film.ThinFilmBattery`."""

    def __init__(self, count: int, params: ThinFilmParameters):
        self._p = params
        self.capacity_pj = params.capacity_pj
        self.consumed = np.zeros(count, dtype=float)
        self.delivered = np.zeros(count, dtype=float)
        self.recharged = np.zeros(count, dtype=float)
        self.ema = np.zeros(count, dtype=float)
        self.alive = np.ones(count, dtype=bool)
        # Discharge-curve knots as arrays for the vectorised lookup.
        self._dods = np.array([p[0] for p in params.profile.points])
        self._volts = np.array([p[1] for p in params.profile.points])
        self._max_knot = len(self._dods) - 1
        # Running knot minimum: ``_volts_cummin[k]`` bounds the curve
        # from below on every DoD up to knot ``k`` without assuming the
        # profile is monotonic — the healthy-bank fast path in ``draw``
        # uses it to prove no cell can be near the cutoff.
        self._volts_cummin = np.minimum.accumulate(self._volts)

    @property
    def parameters(self) -> ThinFilmParameters:
        return self._p

    # -- vectorised discharge curve -------------------------------------
    def _voltage_at(self, dod: np.ndarray) -> np.ndarray:
        """Piecewise-linear ``V_oc(DoD)``, vectorised.

        Interpolates with the same association order as the scalar
        ``DischargeProfile.voltage_at`` (``v0 + frac * (v1 - v0)``) so
        both paths round identically; out-of-range values clamp to the
        curve ends, exactly like the scalar early returns.  Built from
        direct ufunc/method calls — this sits on the once-per-frame hot
        path and the ``np.clip``-style wrappers dominate at mesh-sized
        arrays.
        """
        idx = self._dods.searchsorted(dod, side="right")
        np.minimum(idx, self._max_knot, out=idx)
        np.maximum(idx, 1, out=idx)
        lo = idx - 1
        d0 = self._dods.take(lo)
        d1 = self._dods.take(idx)
        v0 = self._volts.take(lo)
        v1 = self._volts.take(idx)
        frac = (dod - d0) / (d1 - d0)
        volts = v0 + frac * (v1 - v0)
        volts = np.where(dod <= 0.0, self._volts[0], volts)
        return np.where(dod >= 1.0, self._volts[-1], volts)

    def _ocv_vector(self) -> np.ndarray:
        dod = np.minimum(1.0, self.consumed / self.capacity_pj)
        return self._voltage_at(dod)

    def _current_ma_vector(self, ocv: np.ndarray) -> np.ndarray:
        powered = ocv > 0.0
        current = self.ema * _PJ_PER_CYCLE_TO_MW
        np.divide(current, ocv, out=current, where=powered)
        return np.where(powered, current, 0.0)

    # -- vector operations (one call per frame) -------------------------
    def draw(
        self, requests: np.ndarray, durations: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``requests[i]`` pJ over ``durations[i]`` cycles per cell.

        Zero requests and dead cells are untouched (the scalar model's
        early returns); everything else is the scalar draw arithmetic
        applied element-wise.  Returns ``(delivered, died)``.
        """
        p = self._p
        active = self.alive & (requests > 0.0)
        safe_durations = np.maximum(durations, 1.0)
        alpha = 1.0 - np.exp(-safe_durations / p.ema_window_cycles)
        power = requests / safe_durations
        self.ema = np.where(
            active, self.ema + alpha * (power - self.ema), self.ema
        )
        ocv_before = self._ocv_vector()
        ratio = self._current_ma_vector(ocv_before) / p.reference_current_ma
        penalty = 1.0 + p.rate_penalty_coeff * ratio ** p.rate_penalty_exponent
        charge_needed = requests * penalty
        available = self.capacity_pj - self.consumed

        exhausted = active & (charge_needed >= available - 1e-9)
        delivered = np.where(
            exhausted,
            np.maximum(0.0, available / penalty),
            np.where(active, requests, 0.0),
        )
        self.consumed = np.where(
            exhausted,
            self.capacity_pj,
            np.where(active, self.consumed + charge_needed, self.consumed),
        )
        self.delivered += delivered

        died = exhausted
        if not self._voltage_safe():
            ocv_after = self._ocv_vector()
            sag = (
                self._current_ma_vector(ocv_after)
                * p.internal_resistance_ohm
                / 1e3
            )
            loaded = np.maximum(0.0, ocv_after - sag)
            died = exhausted | (active & (ocv_after < p.cutoff_voltage))
            if not p.allow_recovery:
                died |= active & (loaded < p.cutoff_voltage)
        self.alive &= ~died
        return delivered, died

    def _voltage_safe(self) -> bool:
        """True when no cell can possibly be at a fatal voltage.

        Bounds the whole bank by its worst cell: the open-circuit
        voltage of the deepest discharge (via the running knot minimum,
        so non-monotonic curves stay safe) minus the sag of the hardest
        smoothed load.  When even that pessimistic composite clears the
        cutoff, the per-cell post-draw voltage scan — half the cost of
        a healthy-bank draw — is provably a no-op and is skipped.
        """
        p = self._p
        dod_max = min(1.0, float(self.consumed.max()) / self.capacity_pj)
        knot = int(self._dods.searchsorted(dod_max, side="right")) - 1
        knot = max(0, min(knot, self._max_knot))
        ocv_floor = min(
            float(self._volts_cummin[knot]), p.profile.voltage_at(dod_max)
        )
        if ocv_floor <= 0.0:
            return False
        sag_ceiling = (
            float(self.ema.max())
            * _PJ_PER_CYCLE_TO_MW
            / ocv_floor
            * p.internal_resistance_ohm
            / 1e3
        )
        return ocv_floor - sag_ceiling >= p.cutoff_voltage + 1e-9

    def recharge(
        self, offers: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Roll depth of discharge back by the accepted income."""
        ok = mask & self.alive & (offers > 0.0)
        headroom = np.maximum(0.0, self.consumed)
        accepted = np.where(ok, np.minimum(offers, headroom), 0.0)
        self.consumed -= accepted
        self.recharged += accepted
        return accepted

    def rest(self, duration_cycles: float, mask: np.ndarray) -> None:
        if duration_cycles <= 0:
            return
        decay = math.exp(-duration_cycles / self._p.ema_window_cycles)
        self.ema = np.where(mask, self.ema * decay, self.ema)

    def soc_vector(self) -> np.ndarray:
        return 1.0 - np.minimum(1.0, self.consumed / self.capacity_pj)

    # -- scalar access (power sharing, views) ---------------------------
    def consumed_one(self, i: int) -> float:
        return float(self.consumed[i])

    def loss_one(self, i: int) -> float:
        return float(self.consumed[i] + self.recharged[i] - self.delivered[i])

    def _ocv_one(self, i: int) -> float:
        dod = min(1.0, float(self.consumed[i]) / self.capacity_pj)
        return self._p.profile.voltage_at(dod)

    def _current_ma_one(self, i: int, ocv: float) -> float:
        if ocv <= 0:
            return 0.0
        return float(self.ema[i]) * _PJ_PER_CYCLE_TO_MW / ocv

    def _loaded_one(self, i: int, ocv: float) -> float:
        sag = self._current_ma_one(i, ocv) * self._p.internal_resistance_ohm / 1e3
        return max(0.0, ocv - sag)

    def voltage_one(self, i: int) -> float:
        if not self.alive[i]:
            return 0.0
        return self._loaded_one(i, self._ocv_one(i))

    def soc_one(self, i: int) -> float:
        return 1.0 - min(1.0, float(self.consumed[i]) / self.capacity_pj)

    def draw_one(
        self, i: int, energy_pj: float, duration_cycles: float
    ) -> DrawResult:
        if not self.alive[i]:
            raise BatteryError("cannot draw from a dead battery")
        _check_draw_args(energy_pj, duration_cycles)
        if energy_pj == 0:
            return DrawResult(0.0, 0.0, died=False, voltage=self.voltage_one(i))
        p = self._p
        alpha = 1.0 - math.exp(-duration_cycles / p.ema_window_cycles)
        self.ema[i] += alpha * (energy_pj / duration_cycles - self.ema[i])
        ocv_before = self._ocv_one(i)
        ratio = self._current_ma_one(i, ocv_before) / p.reference_current_ma
        penalty = (
            1.0 + p.rate_penalty_coeff * ratio ** p.rate_penalty_exponent
        )
        charge_needed = energy_pj * penalty
        available = self.capacity_pj - float(self.consumed[i])

        exhausted = charge_needed >= available - 1e-9
        if exhausted:
            delivered = max(0.0, available / penalty)
            self.consumed[i] = self.capacity_pj
        else:
            delivered = energy_pj
            self.consumed[i] += charge_needed
        self.delivered[i] += delivered

        ocv_after = self._ocv_one(i)
        loaded_voltage = self._loaded_one(i, ocv_after)
        voltage_death = (
            not p.allow_recovery and loaded_voltage < p.cutoff_voltage
        )
        died = exhausted or voltage_death or ocv_after < p.cutoff_voltage
        if died:
            self.alive[i] = False
        return DrawResult(
            requested_pj=energy_pj,
            delivered_pj=delivered,
            died=died,
            voltage=loaded_voltage,
        )

    def recharge_one(self, i: int, energy_pj: float) -> float:
        if energy_pj < 0:
            raise ConfigurationError(
                f"cannot recharge negative energy {energy_pj}"
            )
        if not self.alive[i]:
            return 0.0
        accepted = min(energy_pj, max(0.0, float(self.consumed[i])))
        self.consumed[i] -= accepted
        self.recharged[i] += accepted
        return accepted

    def rest_one(self, i: int, duration_cycles: float) -> None:
        if duration_cycles < 0:
            raise ConfigurationError(
                f"rest duration must be non-negative, got {duration_cycles}"
            )
        if duration_cycles == 0:
            return
        self.ema[i] *= math.exp(-duration_cycles / self._p.ema_window_cycles)


def build_battery_bank(platform, count: int):
    """Bank matching ``platform.make_battery()`` for ``count`` cells."""
    if platform.battery_model == "ideal":
        return IdealBatteryBank(count, platform.battery_capacity_pj)
    params = replace(
        platform.thin_film, capacity_pj=platform.battery_capacity_pj
    )
    return ThinFilmBatteryBank(count, params)
