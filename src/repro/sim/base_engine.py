"""Shared machinery of the sequential and concurrent et_sim engines.

Both engines simulate the same platform — fabric, batteries, links, TDMA
control — and differ only in how jobs move (one exact job at a time
versus buffered packets with contention).  Everything platform-related
lives here.
"""

from __future__ import annotations

import time

from ..battery.monitor import BatteryLevelQuantizer, LevelTracker
from ..config import SimulationConfig
from ..control.controller import ControlPlane, StatusReport
from ..core.engines import EnergyAwareRouting, ShortestDistanceRouting
from ..core.parameters import ApplicationProfile
from ..errors import SimulationError
from ..faults.schedule import FaultRuntime, build_fault_schedule
from ..harvest.schedule import HarvestRuntime, build_harvest_schedule
from ..mesh.connectivity import reachable_set, system_is_alive
from ..mesh.geometry import node_id as mesh_node_id
from ..mesh.topology import attach_external_node
from ..telemetry.recorder import NULL_RECORDER, Recorder
from .congestion import CongestionRuntime
from .node import NetworkNode
from .stats import EnergyLedger, SimulationStats
from .workload import JobFactory

#: Frames a dispatch may wait for a fresh plan before retrying.
MAX_WAIT_FRAMES = 64


def _soc_quantiles(socs: list[float]) -> list[float]:
    """Nearest-rank p10/p50/p90 of the live cells' state of charge.

    Deterministic and allocation-light: sorts the already-collected
    per-frame SoC list and indexes it, so repeated traced runs emit
    byte-identical probe lines.  Returns zeros when no cell is alive.
    """
    if not socs:
        return [0.0, 0.0, 0.0]
    socs = sorted(socs)
    last = len(socs) - 1
    out = []
    for p in (0.1, 0.5, 0.9):
        i = min(last, int(p * last + 0.5))
        out.append(round(socs[i], 6))
    return out

#: Hop-count guard against transient routing churn.
HOP_GUARD_FACTOR = 6


class SystemDead(Exception):
    """Control-flow signal: the system died (cause attached)."""

    def __init__(self, cause: str):
        self.cause = cause
        super().__init__(cause)


class _AliveFull:
    """Stand-in battery for priming the level tracker (full and alive)."""

    alive = True
    state_of_charge = 1.0


class EngineBase:
    """Builds the platform and runs the per-frame control protocol."""

    def __init__(
        self,
        config: SimulationConfig,
        recorder: Recorder | None = None,
    ):
        self.config = config
        platform = config.platform
        #: Telemetry sink; the do-nothing default is gated out of every
        #: hot path through the two cached booleans below, so a
        #: recorder-free run executes the pre-telemetry instruction
        #: stream bit for bit.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._trace = bool(self.recorder.active)
        self._timed = bool(self.recorder.times)

        # --- fabric -----------------------------------------------------
        self.topology = platform.make_topology()
        attach = mesh_node_id(*platform.source_attach_xy, platform.mesh_width)
        self.source = attach_external_node(
            self.topology, attach, platform.source_link_cm
        )
        profile = ApplicationProfile.aes128(platform.hop_energy_pj())
        # The harvest schedule is built before the mapping: the
        # income-aware mapping strategy queries expected per-node
        # income at build time (the same schedule object later feeds
        # the runtime, so mapping and recharge see one income picture).
        self.harvest_schedule = build_harvest_schedule(
            config.harvest, self.topology, platform.num_mesh_nodes
        )
        self.mapping = platform.make_mapping(
            self.topology,
            profile.normalized_energies(),
            income_weights=self.harvest_schedule.expected_income_weights(),
        )
        self.num_mesh_nodes = platform.num_mesh_nodes

        self.nodes: dict[int, NetworkNode] = {}
        for node in range(self.num_mesh_nodes):
            self.nodes[node] = NetworkNode(
                node, self.mapping.module_of(node), platform.make_battery()
            )
        self.nodes[self.source] = NetworkNode(self.source, None, None)

        # --- links --------------------------------------------------------
        self.link_model = platform.link_energy_model()
        self.lengths = self.topology.length_matrix()
        #: Pristine lengths, kept so transient degradations can restore
        #: a line after expiry (self.lengths is the working matrix that
        #: fault injection rewrites in place).
        self._base_lengths = self.lengths.copy()
        #: The controller's picture of the link state: cuts appear here
        #: only once *discovered* (a node failed to use the line), so a
        #: degradation report never leaks knowledge of unrelated cuts.
        self._known_lengths = self.lengths.copy()
        self.hop_cycles = self.link_model.hop_cycles()
        # Per-hop packet energy depends only on the (static) line length,
        # and _transmit sits on the per-hop hot path: memoise by length.
        self._hop_energy_by_length: dict[float, float] = {}
        # Per-segment bus-transfer efficiency likewise depends only on
        # the line length (see _share_arrival_factor): memoise by length.
        self._share_factor_by_length: dict[float, float] = {}

        # --- control --------------------------------------------------------
        self.schedule = config.control.make_schedule(self.num_mesh_nodes)
        #: One shared wear function keeps the routing penalty table and
        #: the fault runtime's quantiser on the same parameters.  It is
        #: None unless this is a wear-aware EAR run: SDR ignores wear,
        #: and tracking it there would charge the controller spurious
        #: recomputes, biasing EAR-vs-SDR comparisons under
        #: --wear-weight.
        wear_function = (
            config.wear_function() if config.routing == "ear" else None
        )
        self._track_wear = wear_function is not None
        # Same gating as wear: SDR ignores income, and tracking it there
        # would charge the controller spurious recomputes, biasing
        # EAR-vs-SDR comparisons under --harvest-weight.
        harvest_function = (
            config.harvest_function() if config.routing == "ear" else None
        )
        # Same gating again for congestion: SDR routes on lengths alone.
        congestion_function = (
            config.congestion_function() if config.routing == "ear" else None
        )
        routing_engine = (
            EnergyAwareRouting(
                config.weight_function(),
                wear_function,
                harvest_function,
                congestion_function,
            )
            if config.routing == "ear"
            else ShortestDistanceRouting()
        )
        if config.routing_opts.ecmp:
            routing_engine.configure_ecmp(config.routing_opts.ecmp_seed)
        self.control = ControlPlane(
            lengths=self.lengths,
            mapping=self.mapping,
            engine=routing_engine,
            levels=platform.battery_levels,
            schedule=self.schedule,
            energy_model=config.control.energy,
            deadlock_policy=config.control.deadlock,
            controller_batteries=config.control.make_controller_batteries(),
            recorder=self.recorder,
        )
        self.quantizer = BatteryLevelQuantizer(platform.battery_levels)
        self.tracker = LevelTracker(self.quantizer)
        for node in range(self.num_mesh_nodes):
            self.tracker.observe(node, _AliveFull())

        # --- bookkeeping ------------------------------------------------------
        #: Live node ids, maintained incrementally by on_node_death so
        #: reachability checks never rescan every battery.
        self._alive_set: set[int] = set(self.nodes)
        self.ledger = EnergyLedger(self.topology.num_nodes)
        self.factory = JobFactory(
            key=config.workload.aes_key,
            seed=config.workload.seed,
            origin=self.source,
        )
        self.cycle = 0
        self.frames_done = 0
        self.total_hops = 0
        self.op_retries = 0
        self.jobs_lost = 0
        self.verification_failures = 0
        #: Deadlock flags queued by the engine for the next upload phase,
        #: as ``node -> blocked successor``.
        self.pending_deadlock: dict[int, int] = {}
        self.deadlocks_reported = 0
        self.deadlocks_recovered = 0

        # --- fault injection ----------------------------------------------
        self.faults = FaultRuntime(
            build_fault_schedule(
                config.faults,
                self.topology,
                num_mesh_nodes=self.num_mesh_nodes,
                horizon_frames=config.workload.max_frames,
            ),
            # The runtime quantises with the same cap the penalty table
            # saturates at — one source of truth via the wear function.
            wear_quantum=wear_function.quantum if wear_function else 0,
            wear_levels=wear_function.levels if wear_function else 1,
        )
        self.faults_injected = 0
        self.links_cut = 0
        self.links_degraded = 0
        self.links_repaired = 0
        self.nodes_fault_killed = 0
        #: Dispatches/packets that were blocked by fault state (cut line
        #: or fault-killed next hop) and subsequently progressed anyway.
        self.packets_rerouted = 0
        #: Cut lines the controller has not been told about yet: a cut
        #: is invisible to the control plane until some node fails to
        #: use the line and reports it (see _note_fault_block).
        self._undiscovered: set[tuple[int, int]] = set()
        self._link_report_pending = False

        # --- energy harvesting --------------------------------------------
        self.harvest = HarvestRuntime(
            self.harvest_schedule,
            # Income is estimated with the same quantum the bonus table
            # quantises at — one source of truth via the harvest
            # function.
            income_quantum=(
                harvest_function.quantum if harvest_function else 0.0
            ),
            levels=harvest_function.levels if harvest_function else 1,
        )
        self._track_income = (
            harvest_function is not None and self.harvest.is_active
        )

        # --- congestion tracking ------------------------------------------
        self.congestion = CongestionRuntime(
            # Load is estimated with the same quantum the penalty table
            # quantises at — one source of truth via the congestion
            # function.
            quantum=(
                congestion_function.quantum if congestion_function else 0.0
            ),
            levels=congestion_function.levels if congestion_function else 1,
        )
        self._track_load = congestion_function is not None
        #: Levels are pushed to the controller only when the penalty can
        #: actually change a weight: a measure-only run (q == 1) tracks
        #: and reports utilisation without charging the controller
        #: spurious recomputes, so it is behaviour-identical to plain
        #: EAR — the congestion analysis' baseline.
        self._push_load = self._track_load and not congestion_function.is_neutral
        #: True when the frame hook has any work at all: income to
        #: apply, or a bus profile redistributing existing charge.
        self.harvest_active = (
            self.harvest.is_active or self.harvest.shares_power
        )
        #: Reusable per-frame accepted-income buffer for the estimator.
        self._accepted_income = [0.0] * self.num_mesh_nodes

    # ------------------------------------------------------------------
    # Time and control frames
    # ------------------------------------------------------------------
    def _advance_time(self, cycles: int) -> None:
        """Advance the clock, firing TDMA frames at their boundaries."""
        self.cycle += int(cycles)
        frame_len = self.schedule.frame_cycles
        while (self.frames_done + 1) * frame_len <= self.cycle:
            self._run_frame(self.frames_done)
            self.frames_done += 1
            if self.frames_done >= self.config.workload.max_frames:
                raise SystemDead("frame-budget")

    def _wait_one_frame(self) -> None:
        """Idle until the next frame boundary (plan refresh opportunity)."""
        frame_len = self.schedule.frame_cycles
        next_boundary = (self.frames_done + 1) * frame_len
        self._advance_time(next_boundary - self.cycle)

    def _run_frame(self, frame: int) -> None:
        """One TDMA frame: faults, harvest, heartbeats, reports, plan
        refresh."""
        if self._timed:
            frame_started = time.perf_counter()
        self._apply_faults(frame)
        # Harvest recharges *after* faults (a frame's tear cannot be
        # undone by its income) and *before* the heartbeats, so a level
        # raised by fresh charge is reported this very frame.
        if self.harvest_active:
            self._apply_harvest(frame)
        reports, heartbeats = self._heartbeat_phase()
        if self._link_report_pending:
            # A node discovered a dead line since the last frame and
            # reports it in its upload slot: the controller updates its
            # length picture (only the *discovered* state) and re-plans
            # this frame.
            self.control.update_lengths(self._known_lengths)
            self._link_report_pending = False
        if self._track_wear and self.faults.wear_dirty:
            # Some link crossed a quantised wear level since the last
            # frame: push the new picture so the controller re-plans
            # around the wear *before* the line actually severs.
            self.control.update_wear(
                self.faults.wear_level_matrix(self.topology.num_nodes)
            )
            self.faults.wear_dirty = False
        if self._track_income and self.harvest.income_dirty:
            # Some node's smoothed income crossed a quantised level:
            # the status uploads carry the new rate and the controller
            # steers traffic toward the energy-rich region.
            self.control.update_income(
                self.harvest.income_level_vector(self.topology.num_nodes)
            )
            self.harvest.income_dirty = False
        if self._track_load:
            # Fold the frame's traversal counts into the utilisation
            # EMA; when some link crossed a quantised load level (and
            # the penalty is active), push the new picture so the
            # controller spreads traffic off the hot corridor.
            self.congestion.end_frame()
            if self._push_load and self.congestion.load_dirty:
                self.control.update_load(
                    self.congestion.load_level_matrix(self.topology.num_nodes)
                )
                self.congestion.load_dirty = False
        outcome = self.control.process_frame(frame, reports, heartbeats)
        self.ledger.add_controller(outcome.controller_energy_pj)
        if self._trace:
            self._record_frame_probe(frame)
        if self._timed:
            self.recorder.timing(
                "frame-step", time.perf_counter() - frame_started
            )
        if not self.control.alive:
            raise SystemDead("controller-dead")

    # ------------------------------------------------------------------
    # Telemetry probes
    # ------------------------------------------------------------------
    def _record_frame_probe(self, frame: int) -> None:
        """One per-frame trace probe (only called when tracing).

        Captures the live-cell count, the p10/p50/p90 state-of-charge
        quantiles, and the jobs in flight; when load/wear tracking is
        active the current quantised level snapshots ride along (the
        recorder deduplicates them, so a line appears only on level
        crossings).  Pure observation: nothing here mutates simulation
        state, which is what keeps traced runs bit-identical.
        """
        # _alive_set is kept in sync by on_node_death (every death
        # path funnels through it before the probe runs), so iterating
        # it skips the per-node ``alive`` property chain; the mesh
        # guard drops the battery-less source node, and the quantile
        # helper sorts, so set order cannot leak into the trace.
        nodes = self.nodes
        mesh = self.num_mesh_nodes
        socs = [
            nodes[node].battery.state_of_charge
            for node in self._alive_set
            if node < mesh
        ]
        probe: dict = {
            "alive": len(socs),
            "soc": _soc_quantiles(socs),
            "jobs": self._jobs_in_flight(),
        }
        if self._track_load:
            probe["load_levels"] = self.congestion.level_snapshot()
        if self._track_wear:
            probe["wear_levels"] = self.faults.level_snapshot()
        self.recorder.frame(frame, **probe)

    def _jobs_in_flight(self) -> int:
        """Jobs currently resident in the network (telemetry probe)."""
        return 0

    def _record_harvest_rejection(
        self,
        frame: int,
        offered_pj: float,
        accepted_pj: float,
        rejecting_nodes: int,
    ) -> None:
        """Emit a harvest-rejection event (only called when tracing)."""
        self.recorder.event(
            "harvest-rejected",
            frame=frame,
            offered_pj=round(offered_pj, 6),
            accepted_pj=round(accepted_pj, 6),
            rejected_pj=round(offered_pj - accepted_pj, 6),
            nodes=rejecting_nodes,
        )

    def _heartbeat_phase(self) -> tuple[list[StatusReport], int]:
        """Per-node upload phase of one frame.

        Every living node pays the upload energy, deadlock flags and
        level/liveness changes become status reports, and living cells
        rest for the frame.  Returns the reports plus the heartbeat
        count the controller bills for.  Overridable: the vector engine
        replaces the per-node loop with array operations over its
        battery bank while keeping the observable behaviour (report
        set, energy ledger, death hooks) identical.
        """
        reports: list[StatusReport] = []
        heartbeats = 0
        for node in range(self.num_mesh_nodes):
            unit = self.nodes[node]
            if unit.battery is None:
                raise SimulationError("mesh nodes must carry batteries")
            if unit.alive:
                heartbeats += 1
                result = unit.draw(
                    self.schedule.upload_energy_pj,
                    self.schedule.upload_slot_cycles,
                )
                self.ledger.add_upload(node, result.delivered_pj)
                if result.died:
                    self.on_node_death(node)
            # Liveness and level are observed through the *unit*, not the
            # battery: a fault-killed node is dead with a charged cell,
            # and its death must reach the controller like any other.
            blocked = self.pending_deadlock.pop(node, None)
            if blocked is not None and unit.alive:
                self.deadlocks_reported += 1
                if self._trace:
                    self.recorder.event(
                        "deadlock-report",
                        frame=self.frames_done,
                        node=node,
                        blocked=blocked,
                    )
                reports.append(
                    StatusReport(
                        node=node,
                        level=self.tracker.level(node),
                        alive=unit.alive,
                        blocked_port=blocked,
                    )
                )
                self.tracker.observe(node, unit)
            elif self.tracker.observe(node, unit):
                reports.append(
                    StatusReport(
                        node=node,
                        level=self.tracker.level(node),
                        alive=unit.alive,
                    )
                )
            if unit.alive:
                unit.rest(self.schedule.frame_cycles)
        return reports, heartbeats

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _apply_faults(self, frame: int) -> None:
        """Fire every fault event due at ``frame`` and expire transients.

        Cuts sever the topology edge and mark the working length matrix
        ``inf``; degradations scale the line length (and therefore the
        per-hop packet energy); node kills go through the regular death
        hook so resident state is cleaned up identically to a battery
        death.  Any link-state change is pushed to the control plane,
        which re-plans on its next processed frame.
        """
        runtime = self.faults
        events = runtime.due(frame)
        restored = runtime.expire_degradations(frame)
        trace = self._trace
        lengths_changed = False
        for u, v in restored:
            self.lengths[u, v] = self._base_lengths[u, v]
            self.lengths[v, u] = self._base_lengths[v, u]
            self._known_lengths[u, v] = self._base_lengths[u, v]
            self._known_lengths[v, u] = self._base_lengths[v, u]
            lengths_changed = True
            if trace:
                self.recorder.event(
                    "link-restored", frame=frame, link=[u, v]
                )
        for event in events:
            if event.kind == "link-cut":
                u, v = event.node_a, event.node_b
                if runtime.is_cut(u, v) or not self.topology.has_edge(u, v):
                    continue
                self.topology.remove_edge(u, v)
                runtime.mark_cut(u, v)
                self.lengths[u, v] = self.lengths[v, u] = float("inf")
                self.links_cut += 1
                self.faults_injected += 1
                # The cut is physical, not reported: the controller keeps
                # routing over the severed line until a node discovers
                # the failure by trying to use it (_note_fault_block).
                self._undiscovered.add((u, v))
                self._undiscovered.add((v, u))
                if trace:
                    self.recorder.event(
                        "fault", frame=frame, fault="link-cut", link=[u, v]
                    )
            elif event.kind == "link-repair":
                u, v = event.node_a, event.node_b
                if not runtime.is_cut(u, v):
                    continue  # never cut (budget/horizon) or already re-sewn
                base = float(self._base_lengths[u, v])
                self.topology.add_edge(u, v, base)
                runtime.mark_repaired(u, v)
                self.lengths[u, v] = self._base_lengths[u, v]
                self.lengths[v, u] = self._base_lengths[v, u]
                # A repair is a deliberate physical intervention, so the
                # controller learns of the restored line immediately —
                # including one it never discovered as cut.
                self._known_lengths[u, v] = self._base_lengths[u, v]
                self._known_lengths[v, u] = self._base_lengths[v, u]
                self._undiscovered.discard((u, v))
                self._undiscovered.discard((v, u))
                self.links_repaired += 1
                self.faults_injected += 1
                lengths_changed = True
                if trace:
                    self.recorder.event(
                        "fault",
                        frame=frame,
                        fault="link-repair",
                        link=[u, v],
                    )
            elif event.kind == "node-kill":
                unit = self.nodes[event.node_a]
                if not unit.alive:
                    continue
                unit.fail()
                self.on_node_death(event.node_a)
                self.nodes_fault_killed += 1
                self.faults_injected += 1
                if trace:
                    self.recorder.event(
                        "fault",
                        frame=frame,
                        fault="node-kill",
                        node=event.node_a,
                    )
            else:  # link-degrade
                u, v = event.node_a, event.node_b
                if runtime.is_cut(u, v) or not self.topology.has_edge(u, v):
                    continue
                self.lengths[u, v] = self._base_lengths[u, v] * event.factor
                self.lengths[v, u] = self._base_lengths[v, u] * event.factor
                # Degradations are measurable line quality: the frame's
                # status exchange carries them to the controller.
                self._known_lengths[u, v] = self.lengths[u, v]
                self._known_lengths[v, u] = self.lengths[v, u]
                runtime.degraded[(min(u, v), max(u, v))] = (
                    event.factor,
                    frame + event.duration_frames,
                )
                runtime.note_degraded(u, v)
                self.links_degraded += 1
                self.faults_injected += 1
                lengths_changed = True
                if trace:
                    self.recorder.event(
                        "fault",
                        frame=frame,
                        fault="link-degrade",
                        link=[u, v],
                        factor=event.factor,
                        duration_frames=event.duration_frames,
                    )
        if lengths_changed:
            self.control.update_lengths(self._known_lengths)

    # ------------------------------------------------------------------
    # Energy harvesting
    # ------------------------------------------------------------------
    def _apply_harvest(self, frame: int) -> None:
        """Recharge batteries from this frame's harvest income.

        Income lands at frame boundaries: each mesh node's cell accepts
        as much of its scheduled income as its headroom allows (a full
        cell accepts nothing, a dead cell rejects everything).  Bus
        profiles then run one power-sharing pass.  When harvest-aware
        routing is on, the accepted income feeds the per-node estimator
        whose quantised levels the controller learns.
        """
        runtime = self.harvest
        income = runtime.schedule.income(frame)
        tracking = self._track_income
        trace = self._trace
        offered_pj = 0.0
        accepted_pj = 0.0
        rejecting_nodes = 0
        accepted_income = self._accepted_income
        if tracking:
            for node in range(self.num_mesh_nodes):
                accepted_income[node] = 0.0
        if income is not None:
            for node, offered in enumerate(income):
                if offered <= 0.0:
                    continue
                if trace:
                    offered_pj += offered
                unit = self.nodes[node]
                # A fault-killed node's generator is as torn as its
                # module: only living nodes with a cell can harvest.
                if unit.battery is None or not unit.alive:
                    if trace:
                        rejecting_nodes += 1
                    continue
                accepted = unit.battery.recharge(offered)
                if trace:
                    accepted_pj += accepted
                    if accepted < offered:
                        rejecting_nodes += 1
                if accepted > 0.0:
                    self.ledger.add_harvest(node, accepted)
                    if tracking:
                        accepted_income[node] = accepted
        if trace and offered_pj - accepted_pj > 1e-9:
            self._record_harvest_rejection(
                frame, offered_pj, accepted_pj, rejecting_nodes
            )
        if runtime.shares_power:
            self._apply_power_sharing()
        if tracking:
            runtime.observe_frame(accepted_income)

    def _bus_reachable(
        self, donor: int, max_hops: int
    ) -> tuple[list[int], dict[int, tuple[int, ...]]]:
        """Living mesh nodes a bus transfer from ``donor`` can reach.

        Breadth-first over the surviving textile lines (cut lines are
        gone from the topology), through living nodes only, up to
        ``max_hops`` segments.  Returns the nodes in discovery order —
        nearer layers first, adjacency order within a layer, exactly
        the single-hop neighbour scan when ``max_hops == 1`` — plus the
        cheapest-loss path to each: fewest hops, ties broken by total
        line length from the working length matrix.
        """
        paths: dict[int, tuple[int, ...]] = {donor: ()}
        lengths_to: dict[int, float] = {donor: 0.0}
        order: list[int] = []
        frontier = [donor]
        for _ in range(max_hops):
            layer: list[int] = []
            for u in frontier:
                for v in self.topology.neighbors(u):
                    if v >= self.num_mesh_nodes:
                        continue
                    candidate_len = lengths_to[u] + float(self.lengths[u, v])
                    if v in paths:
                        # Same-layer rediscovery: keep the physically
                        # shorter line run (hop count is equal).
                        if v in layer and candidate_len < lengths_to[v]:
                            paths[v] = paths[u] + (v,)
                            lengths_to[v] = candidate_len
                        continue
                    unit = self.nodes[v]
                    if not unit.alive or unit.battery is None:
                        continue
                    paths[v] = paths[u] + (v,)
                    lengths_to[v] = candidate_len
                    order.append(v)
                    layer.append(v)
            if not layer:
                break
            frontier = layer
        return order, paths

    def _apply_power_sharing(self) -> None:
        """One I²We bus pass: surplus flows to poorer cells.

        Every living donor compares its state of charge with the mesh
        nodes reachable over at most ``share_max_hops`` surviving
        textile lines and, when the gap exceeds the configured
        threshold, pushes one quantum toward the poorest of them along
        the cheapest-loss path.  Each line segment passes
        ``share_efficiency`` of what enters it *per link pitch of
        physical line* (see :meth:`_share_arrival_factor`), so a
        ``k``-hop transfer over uniform-pitch lines arrives scaled by
        exactly ``efficiency ** k`` while a stretched or degraded line
        loses proportionally more — the per-hop losses are booked
        segment by segment and the intermediate nodes' relayed energy
        is recorded, so the conservation identity closes with any hop
        count.  Donor order is node order: deterministic, and identical
        in both engines.
        """
        config = self.config.harvest
        rate = config.share_rate_pj
        if rate <= 0.0:
            return
        threshold = config.share_threshold
        efficiency = config.share_efficiency
        for donor in range(self.num_mesh_nodes):
            unit = self.nodes[donor]
            if not unit.alive or unit.battery is None:
                continue
            soc = unit.battery.state_of_charge
            poorest = None
            poorest_soc = soc - threshold
            if poorest_soc <= 0.0:
                # No cell's state of charge is negative, so a donor
                # this drained can never find a receiver: skip the
                # reachability search entirely.
                continue
            candidates, paths = self._bus_reachable(
                donor, config.share_max_hops
            )
            for node in candidates:
                other_soc = self.nodes[node].battery.state_of_charge
                if other_soc < poorest_soc:
                    poorest = node
                    poorest_soc = other_soc
            if poorest is None:
                continue
            # Never push more than half the gap: the bus equalises, it
            # must not overshoot and slosh charge back next frame.
            gap_pj = (
                (soc - poorest_soc)
                * unit.battery.nominal_capacity_pj
                / 2.0
            )
            transfer = min(rate, gap_pj)
            if transfer <= 0.0:
                continue
            result = unit.battery.draw(
                transfer, self.schedule.frame_cycles
            )
            energy = result.delivered_pj
            prev = donor
            for hop in paths[poorest]:
                arrived = energy * self._share_arrival_factor(
                    float(self.lengths[prev, hop]), efficiency
                )
                self.ledger.add_share_hop(energy - arrived)
                if hop != poorest:
                    self.ledger.note_share_relay(hop, arrived)
                energy = arrived
                prev = hop
            accepted = self.nodes[poorest].battery.recharge(energy)
            self.ledger.add_share(
                donor,
                result.delivered_pj,
                poorest,
                accepted,
                arrived_pj=energy,
            )
            if result.died:
                self.on_node_death(donor)

    def _share_arrival_factor(self, length: float, efficiency: float) -> float:
        """Fraction of bus-transferred energy surviving one line segment.

        Resistive loss on a conductive-textile line grows with its
        physical length, so the per-segment efficiency is
        ``share_efficiency ** (length / link_pitch_cm)`` — the
        configured efficiency is the loss of one *pitch-length* line,
        and a stretched (degraded) or longer line loses proportionally
        more.  For uniform-pitch fabrics ``length / pitch == 1.0``
        exactly and ``x ** 1.0 == x`` in IEEE 754, so the historical
        constant-per-hop compounding is reproduced bit-identically.
        """
        factor = self._share_factor_by_length.get(length)
        if factor is None:
            pitch = self.config.platform.link_pitch_cm
            factor = efficiency ** (length / pitch)
            self._share_factor_by_length[length] = factor
        return factor

    def _link_alive(self, u: int, v: int) -> bool:
        """True while the ``u -> v`` line has not been cut by a fault."""
        return (u, v) not in self.faults.cut_links

    def _note_fault_block(self, u: int, v: int) -> None:
        """A node failed to use the ``u -> v`` line: discovery.

        The discovering node reports the dead line during the next
        frame's upload phase, at which point the controller re-plans —
        the fault-model counterpart of the paper's deadlock reports.
        """
        if (u, v) in self._undiscovered:
            self._undiscovered.discard((u, v))
            self._undiscovered.discard((v, u))
            self._known_lengths[u, v] = float("inf")
            self._known_lengths[v, u] = float("inf")
            self._link_report_pending = True

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def on_node_death(self, node: int) -> None:
        """Hook invoked the moment a node's battery dies."""
        self._alive_set.discard(node)
        self.ledger.mark_death(node, self.frames_done)
        if self._trace:
            self.recorder.event(
                "node-death", frame=self.frames_done, node=node
            )

    def _alive_ids(self) -> set[int]:
        return set(self._alive_set)

    def _check_reachability(self, origin: int, cause: str) -> None:
        """Raise system death if some module is unreachable from origin."""
        if not system_is_alive(
            self.topology, self._alive_ids(), self.mapping, origin
        ):
            raise SystemDead(cause)

    def _source_reachable_from(self, node: int) -> bool:
        reachable = reachable_set(self.topology, self._alive_ids(), node)
        return self.source in reachable

    def _transmit(self, sender: int, receiver: int, holder: int) -> bool:
        """One hop; returns False when the sender died mid-transmit."""
        if (sender, receiver) in self.faults.cut_links:
            raise SimulationError(
                f"packet transmitted over cut link {sender} -> {receiver}"
            )
        length = float(self.lengths[sender, receiver])
        energy = self._hop_energy_by_length.get(length)
        if energy is None:
            energy = self.link_model.hop_energy_pj(length)
            self._hop_energy_by_length[length] = energy
        if self._track_wear:
            self.faults.note_traversal(sender, receiver)
        if self._track_load:
            self.congestion.note_traversal(sender, receiver)
        unit = self.nodes[sender]
        result = unit.draw(energy, self.hop_cycles)
        if unit.has_infinite_supply:
            self.ledger.add_source_tx(result.delivered_pj)
        else:
            self.ledger.add_data_tx(
                sender, result.delivered_pj, relay=sender != holder
            )
        if result.died:
            self.on_node_death(sender)
        self.total_hops += 1
        return not result.died

    def _module_energy(self, module: int) -> float:
        from ..aes.energy import module_energy_pj

        return module_energy_pj(module)

    def _compute_cycles(self, module: int) -> int:
        return self.config.platform.compute_cycles.get(module, 12)

    # ------------------------------------------------------------------
    def _finalize(
        self, jobs_completed: int, partial: float, death: str
    ) -> SimulationStats:
        if self._trace:
            self.recorder.event(
                "run-end",
                frame=self.frames_done,
                cause=death,
                jobs=jobs_completed,
                jobs_lost=self.jobs_lost,
                total_hops=self.total_hops,
            )
        wasted = 0.0
        stranded = 0.0
        loss = 0.0
        for node in range(self.num_mesh_nodes):
            unit = self.nodes[node]
            battery = unit.battery
            if battery is None:
                continue
            # A fault-killed node's residual charge is as unreachable as
            # a depleted cell's, so it counts as wasted, not stranded.
            if unit.alive:
                stranded += battery.wasted_pj
            else:
                wasted += battery.wasted_pj
            loss += getattr(battery, "loss_pj", 0.0)
        # The textile power bus loses energy in conversion too: drawn
        # from donors minus accepted by receivers.
        loss += self.ledger.share_loss_pj
        # Utilisation metrics exist only on congestion-tracking runs:
        # None keeps every historical summary (and the golden fixtures
        # recorded from them) byte-identical.
        max_link_traversals = None
        hot_link_share = None
        if self._track_load:
            max_link_traversals = self.congestion.max_link_traversals()
            hot_link_share = round(self.congestion.hot_link_share(), 9)
        return SimulationStats(
            jobs_completed=jobs_completed,
            partial_progress=partial,
            jobs_lost=self.jobs_lost,
            lifetime_frames=self.frames_done,
            lifetime_cycles=self.cycle,
            death_cause=death,
            routing=self.config.routing,
            energy=self.ledger,
            wasted_at_death_pj=wasted,
            stranded_alive_pj=stranded,
            conversion_loss_pj=loss,
            recompute_count=self.control.recompute_count,
            deadlocks_reported=self.deadlocks_reported,
            deadlocks_recovered=self.deadlocks_recovered,
            op_retries=self.op_retries,
            verification_failures=self.verification_failures,
            total_hops=self.total_hops,
            faults_injected=self.faults_injected,
            links_cut=self.links_cut,
            links_degraded=self.links_degraded,
            links_repaired=self.links_repaired,
            nodes_fault_killed=self.nodes_fault_killed,
            packets_rerouted=self.packets_rerouted,
            harvested_pj=self.ledger.harvested_pj,
            shared_pj=self.ledger.shared_pj,
            share_hops=self.ledger.share_hops,
            harvest_events=self.ledger.harvest_events,
            max_link_traversals=max_link_traversals,
            hot_link_share=hot_link_share,
        )
