"""Shared machinery of the sequential and concurrent et_sim engines.

Both engines simulate the same platform — fabric, batteries, links, TDMA
control — and differ only in how jobs move (one exact job at a time
versus buffered packets with contention).  Everything platform-related
lives here.
"""

from __future__ import annotations

from ..battery.monitor import BatteryLevelQuantizer, LevelTracker
from ..config import SimulationConfig
from ..control.controller import ControlPlane, StatusReport
from ..core.engines import EnergyAwareRouting, ShortestDistanceRouting
from ..core.parameters import ApplicationProfile
from ..errors import SimulationError
from ..mesh.connectivity import reachable_set, system_is_alive
from ..mesh.geometry import node_id as mesh_node_id
from ..mesh.topology import attach_external_node
from .node import NetworkNode
from .stats import EnergyLedger, SimulationStats
from .workload import JobFactory

#: Frames a dispatch may wait for a fresh plan before retrying.
MAX_WAIT_FRAMES = 64

#: Hop-count guard against transient routing churn.
HOP_GUARD_FACTOR = 6


class SystemDead(Exception):
    """Control-flow signal: the system died (cause attached)."""

    def __init__(self, cause: str):
        self.cause = cause
        super().__init__(cause)


class _AliveFull:
    """Stand-in battery for priming the level tracker (full and alive)."""

    alive = True
    state_of_charge = 1.0


class EngineBase:
    """Builds the platform and runs the per-frame control protocol."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        platform = config.platform

        # --- fabric -----------------------------------------------------
        self.topology = platform.make_topology()
        attach = mesh_node_id(*platform.source_attach_xy, platform.mesh_width)
        self.source = attach_external_node(
            self.topology, attach, platform.source_link_cm
        )
        profile = ApplicationProfile.aes128(platform.hop_energy_pj())
        self.mapping = platform.make_mapping(
            self.topology, profile.normalized_energies()
        )
        self.num_mesh_nodes = platform.num_mesh_nodes

        self.nodes: dict[int, NetworkNode] = {}
        for node in range(self.num_mesh_nodes):
            self.nodes[node] = NetworkNode(
                node, self.mapping.module_of(node), platform.make_battery()
            )
        self.nodes[self.source] = NetworkNode(self.source, None, None)

        # --- links --------------------------------------------------------
        self.link_model = platform.link_energy_model()
        self.lengths = self.topology.length_matrix()
        self.hop_cycles = self.link_model.hop_cycles()
        # Per-hop packet energy depends only on the (static) line length,
        # and _transmit sits on the per-hop hot path: memoise by length.
        self._hop_energy_by_length: dict[float, float] = {}

        # --- control --------------------------------------------------------
        self.schedule = config.control.make_schedule(self.num_mesh_nodes)
        routing_engine = (
            EnergyAwareRouting(config.weight_function())
            if config.routing == "ear"
            else ShortestDistanceRouting()
        )
        self.control = ControlPlane(
            lengths=self.lengths,
            mapping=self.mapping,
            engine=routing_engine,
            levels=platform.battery_levels,
            schedule=self.schedule,
            energy_model=config.control.energy,
            deadlock_policy=config.control.deadlock,
            controller_batteries=config.control.make_controller_batteries(),
        )
        self.quantizer = BatteryLevelQuantizer(platform.battery_levels)
        self.tracker = LevelTracker(self.quantizer)
        for node in range(self.num_mesh_nodes):
            self.tracker.observe(node, _AliveFull())

        # --- bookkeeping ------------------------------------------------------
        #: Live node ids, maintained incrementally by on_node_death so
        #: reachability checks never rescan every battery.
        self._alive_set: set[int] = set(self.nodes)
        self.ledger = EnergyLedger(self.topology.num_nodes)
        self.factory = JobFactory(
            key=config.workload.aes_key,
            seed=config.workload.seed,
            origin=self.source,
        )
        self.cycle = 0
        self.frames_done = 0
        self.total_hops = 0
        self.op_retries = 0
        self.jobs_lost = 0
        self.verification_failures = 0
        #: Deadlock flags queued by the engine for the next upload phase,
        #: as ``node -> blocked successor``.
        self.pending_deadlock: dict[int, int] = {}
        self.deadlocks_reported = 0
        self.deadlocks_recovered = 0

    # ------------------------------------------------------------------
    # Time and control frames
    # ------------------------------------------------------------------
    def _advance_time(self, cycles: int) -> None:
        """Advance the clock, firing TDMA frames at their boundaries."""
        self.cycle += int(cycles)
        frame_len = self.schedule.frame_cycles
        while (self.frames_done + 1) * frame_len <= self.cycle:
            self._run_frame(self.frames_done)
            self.frames_done += 1
            if self.frames_done >= self.config.workload.max_frames:
                raise SystemDead("frame-budget")

    def _wait_one_frame(self) -> None:
        """Idle until the next frame boundary (plan refresh opportunity)."""
        frame_len = self.schedule.frame_cycles
        next_boundary = (self.frames_done + 1) * frame_len
        self._advance_time(next_boundary - self.cycle)

    def _run_frame(self, frame: int) -> None:
        """One TDMA frame: heartbeats, report ingestion, plan refresh."""
        reports: list[StatusReport] = []
        heartbeats = 0
        for node in range(self.num_mesh_nodes):
            unit = self.nodes[node]
            battery = unit.battery
            if battery is None:
                raise SimulationError("mesh nodes must carry batteries")
            if unit.alive:
                heartbeats += 1
                result = unit.draw(
                    self.schedule.upload_energy_pj,
                    self.schedule.upload_slot_cycles,
                )
                self.ledger.add_upload(node, result.delivered_pj)
                if result.died:
                    self.on_node_death(node)
            blocked = self.pending_deadlock.pop(node, None)
            if blocked is not None and battery.alive:
                self.deadlocks_reported += 1
                reports.append(
                    StatusReport(
                        node=node,
                        level=self.tracker.level(node),
                        alive=battery.alive,
                        blocked_port=blocked,
                    )
                )
                self.tracker.observe(node, battery)
            elif self.tracker.observe(node, battery):
                reports.append(
                    StatusReport(
                        node=node,
                        level=self.tracker.level(node),
                        alive=battery.alive,
                    )
                )
            if unit.alive:
                unit.rest(self.schedule.frame_cycles)
        outcome = self.control.process_frame(frame, reports, heartbeats)
        self.ledger.add_controller(outcome.controller_energy_pj)
        if not self.control.alive:
            raise SystemDead("controller-dead")

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def on_node_death(self, node: int) -> None:
        """Hook invoked the moment a node's battery dies."""
        self._alive_set.discard(node)
        self.ledger.mark_death(node, self.frames_done)

    def _alive_ids(self) -> set[int]:
        return set(self._alive_set)

    def _check_reachability(self, origin: int, cause: str) -> None:
        """Raise system death if some module is unreachable from origin."""
        if not system_is_alive(
            self.topology, self._alive_ids(), self.mapping, origin
        ):
            raise SystemDead(cause)

    def _source_reachable_from(self, node: int) -> bool:
        reachable = reachable_set(self.topology, self._alive_ids(), node)
        return self.source in reachable

    def _transmit(self, sender: int, receiver: int, holder: int) -> bool:
        """One hop; returns False when the sender died mid-transmit."""
        length = float(self.lengths[sender, receiver])
        energy = self._hop_energy_by_length.get(length)
        if energy is None:
            energy = self.link_model.hop_energy_pj(length)
            self._hop_energy_by_length[length] = energy
        unit = self.nodes[sender]
        result = unit.draw(energy, self.hop_cycles)
        if unit.has_infinite_supply:
            self.ledger.add_source_tx(result.delivered_pj)
        else:
            self.ledger.add_data_tx(
                sender, result.delivered_pj, relay=sender != holder
            )
        if result.died:
            self.on_node_death(sender)
        self.total_hops += 1
        return not result.died

    def _module_energy(self, module: int) -> float:
        from ..aes.energy import module_energy_pj

        return module_energy_pj(module)

    def _compute_cycles(self, module: int) -> int:
        return self.config.platform.compute_cycles.get(module, 12)

    # ------------------------------------------------------------------
    def _finalize(
        self, jobs_completed: int, partial: float, death: str
    ) -> SimulationStats:
        wasted = 0.0
        stranded = 0.0
        loss = 0.0
        for node in range(self.num_mesh_nodes):
            battery = self.nodes[node].battery
            if battery is None:
                continue
            if battery.alive:
                stranded += battery.wasted_pj
            else:
                wasted += battery.wasted_pj
            loss += getattr(battery, "loss_pj", 0.0)
        return SimulationStats(
            jobs_completed=jobs_completed,
            partial_progress=partial,
            jobs_lost=self.jobs_lost,
            lifetime_frames=self.frames_done,
            lifetime_cycles=self.cycle,
            death_cause=death,
            routing=self.config.routing,
            energy=self.ledger,
            wasted_at_death_pj=wasted,
            stranded_alive_pj=stranded,
            conversion_loss_pj=loss,
            recompute_count=self.control.recompute_count,
            deadlocks_reported=self.deadlocks_reported,
            deadlocks_recovered=self.deadlocks_recovered,
            op_retries=self.op_retries,
            verification_failures=self.verification_failures,
            total_hops=self.total_hops,
        )
