"""The sequential et_sim engine (paper Sec 7.1-7.3 workload).

"In this first set of experiments, a new job is launched when the
previous one is completed.  In other words, there is exactly one job in
the target system and therefore no buffering at nodes is needed."

With a single job in flight there is no link contention and no deadlock,
so the engine executes the job as an exact sequence of timed, energy-
accounted actions:

* a *computation* draws ``E_i`` from the executing node over that
  module's latency;
* a *communication* moves the packet hop by hop along the current
  routing tables, each hop drawing the line's packet energy from the
  **sending** node over the serialisation delay (the paper's ``C_j``);
* TDMA control frames fire at fixed cycle boundaries: every live node
  uploads its status heartbeat (paying the medium's transmit energy),
  the control plane ingests changed reports, recomputes routes when the
  picture changed, and downloads changed table entries.

Failures follow the protocol described in DESIGN.md: any node death
during an operation's dispatch wastes the energy spent and re-dispatches
the operation from the job's last stable holder; if the holder itself is
dead the job is lost.  The system dies when a needed module becomes
unreachable from the job's position (the paper's "critical nodes" dying),
when every controller is dead, or when the frame safety budget expires.
"""

from __future__ import annotations

from ..core.phase3 import NO_DESTINATION
from ..errors import SimulationError
from .base_engine import (
    HOP_GUARD_FACTOR,
    MAX_WAIT_FRAMES,
    EngineBase,
    SystemDead,
)
from .job import Job
from .stats import SimulationStats


class SequentialEngine(EngineBase):
    """Single-job-at-a-time simulation of one configured platform."""

    #: True while a job is being driven (telemetry probe; the workload
    #: keeps exactly one job in flight, so this is the whole count).
    _job_running = False

    def _jobs_in_flight(self) -> int:
        return 1 if self._job_running else 0

    # ------------------------------------------------------------------
    # Movement and execution
    # ------------------------------------------------------------------
    def _route_to_module(self, job: Job, module: int) -> int | None:
        """Walk the packet from the holder to a live duplicate of
        ``module`` following the per-node routing tables.

        Returns the arrival node, or None when the dispatch failed and
        must be retried from the holder.  Raises :class:`SystemDead`
        when no duplicate is reachable at all.
        """
        current = job.holder
        waited = 0
        hops = 0
        fault_blocked = False
        hop_guard = HOP_GUARD_FACTOR * self.topology.num_nodes
        while True:
            plan = self.control.plan
            if plan is None:
                raise SimulationError("routing plan missing after bootstrap")
            if not self.nodes[current].alive:
                return None  # mid-route relay death; retry upstream
            if not plan.has_destination(current, module):
                # Stale or genuinely dead: wait for the control plane to
                # learn the latest deaths, then re-check connectivity.
                self._check_reachability(current, "module-unreachable")
                waited += 1
                if waited > MAX_WAIT_FRAMES:
                    return None
                self._wait_one_frame()
                continue
            destination = plan.destination(current, module)
            if destination == current:
                if fault_blocked:
                    self.packets_rerouted += 1
                return current
            next_hop = plan.next_hop(current, destination)
            if not self.nodes[next_hop].alive or not self._link_alive(
                current, next_hop
            ):
                # The table still points at a node or line that just
                # failed; wait for the next frame's recomputation.
                if not self._link_alive(current, next_hop):
                    self._note_fault_block(current, next_hop)
                    fault_blocked = True
                elif self.nodes[next_hop].fault_killed:
                    fault_blocked = True
                waited += 1
                if waited > MAX_WAIT_FRAMES:
                    return None
                self._wait_one_frame()
                continue
            survived = self._transmit(current, next_hop, job.holder)
            self._advance_time(self.hop_cycles)
            if not survived:
                return None
            current = next_hop
            hops += 1
            if hops > hop_guard:
                return None  # routing churn; retry from the holder

    def _route_to_sink(self, job: Job) -> bool:
        """Deliver the finished ciphertext back to the source block."""
        current = job.holder
        waited = 0
        hops = 0
        fault_blocked = False
        hop_guard = HOP_GUARD_FACTOR * self.topology.num_nodes
        while current != self.source:
            plan = self.control.plan
            successor = plan.successor(current, self.source)
            if (
                successor == NO_DESTINATION
                or not self.nodes[successor].alive
                or not self._link_alive(current, successor)
            ):
                if not self._source_reachable_from(current):
                    raise SystemDead("source-cut")
                if successor != NO_DESTINATION:
                    if not self._link_alive(current, successor):
                        self._note_fault_block(current, successor)
                        fault_blocked = True
                    elif self.nodes[successor].fault_killed:
                        fault_blocked = True
                waited += 1
                if waited > MAX_WAIT_FRAMES:
                    return False
                self._wait_one_frame()
                continue
            survived = self._transmit(current, successor, job.holder)
            self._advance_time(self.hop_cycles)
            if not survived:
                return False
            current = successor
            hops += 1
            if hops > hop_guard:
                return False
        if fault_blocked:
            self.packets_rerouted += 1
        return True

    def _compute(self, job: Job, node: int, module: int) -> bool:
        """Execute the job's current operation at ``node``."""
        energy = self._module_energy(module)
        cycles = self._compute_cycles(module)
        unit = self.nodes[node]
        result = unit.draw(energy, cycles)
        self.ledger.add_compute(node, result.delivered_pj)
        if result.died:
            self.on_node_death(node)
        self._advance_time(cycles)
        if result.died:
            # Even a fully-powered transform is useless if the node died
            # before it could forward the result: the energy is wasted
            # and the operation re-dispatches from the holder.
            return False
        job.execute_current(node)
        return True

    # ------------------------------------------------------------------
    # Job and run loops
    # ------------------------------------------------------------------
    def _run_job(self, job: Job) -> str:
        """Drive one job to completion.

        Returns ``"completed"`` or ``"lost"``; raises :class:`SystemDead`
        on system death.
        """
        while not job.completed:
            module = job.current_operation.module
            if not self.nodes[job.holder].alive:
                return "lost"
            arrival = self._route_to_module(job, module)
            if arrival is None:
                self.op_retries += 1
                if not self.nodes[job.holder].alive:
                    return "lost"
                continue
            if not self._compute(job, arrival, module):
                self.op_retries += 1
                continue
        if self.config.platform.return_to_sink:
            delivered = False
            while not delivered:
                if not self.nodes[job.holder].alive:
                    return "lost"
                delivered = self._route_to_sink(job)
                if not delivered:
                    self.op_retries += 1
        return "completed"

    def run(self) -> SimulationStats:
        """Run to system death (or configured budget) and summarise."""
        self.control.bootstrap()
        jobs_completed = 0
        partial = 0.0
        death = "unknown"
        max_jobs = self.config.workload.max_jobs
        job: Job | None = None
        try:
            while True:
                if max_jobs is not None and jobs_completed >= max_jobs:
                    raise SystemDead("job-budget")
                job = self.factory.next_job()
                self._job_running = True
                try:
                    outcome = self._run_job(job)
                finally:
                    self._job_running = False
                if outcome == "completed":
                    jobs_completed += 1
                    if not job.verify():
                        self.verification_failures += 1
                    job = None
                else:
                    self.jobs_lost += 1
                    job = None
        except SystemDead as signal:
            death = signal.cause
            if job is not None and not job.completed:
                partial = job.progress_fraction
        return self._finalize(jobs_completed, partial, death)
