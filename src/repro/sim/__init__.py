"""et_sim — the cycle-granularity e-textile network simulator.

This is the reproduction of the paper's by-product simulator (Sec 7):
"A cycle-accurate network simulator, et_sim, was implemented. et_sim
supports, in default mode, any 2D mesh network with the mapping technique
described in Sec 5.2."

Two engines share all platform models (batteries, lines, TDMA control,
routing):

* :class:`~repro.sim.sequential_engine.SequentialEngine` — exact engine
  for the paper's main workload, where "a new job is launched when the
  previous one is completed ... no buffering at nodes is needed"
  (Sec 7.1).
* :class:`~repro.sim.concurrent_engine.ConcurrentEngine` — slot-stepped
  engine with finite buffers, link contention and the deadlock-recovery
  protocol, used for the multi-job experiments.
* :class:`~repro.sim.vector_engine.VectorEngine` — frame-batched NumPy
  engine for large fabrics (16x16 and beyond): sequential-workload
  semantics with all battery state in struct-of-arrays banks and one
  vectorised draw per frame bucket.

Engines are selected by name through
:data:`~repro.sim.registry.ENGINE_REGISTRY`
(``SimulationConfig.engine``, ``"auto"`` resolving to the workload's
historical engine).  :func:`~repro.sim.et_sim.run_simulation` builds a
platform from a :class:`~repro.config.SimulationConfig` and runs it to
system death.
"""

from .et_sim import EtSim, run_simulation
from .job import Job
from .registry import ENGINE_REGISTRY, build_engine
from .stats import EnergyLedger, NodeStats, SimulationStats
from .workload import JobFactory

__all__ = [
    "ENGINE_REGISTRY",
    "EnergyLedger",
    "EtSim",
    "Job",
    "JobFactory",
    "NodeStats",
    "SimulationStats",
    "build_engine",
    "run_simulation",
]
