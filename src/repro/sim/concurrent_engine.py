"""The concurrent et_sim engine: buffered packets, contention, deadlock.

The paper feeds "multiple concurrent jobs ... into the target system to
see the effectiveness of the developed deadlock recovery mechanism"
(Sec 7).  This engine models what the sequential workload never
exercises:

* **Finite buffers** — each node holds at most ``node_buffer_packets``
  resident packets.
* **Link/port exclusivity** — per time slot (one packet serialisation
  interval) a link carries at most one packet and a node receives at
  most one packet.
* **Blocking flow control** — a packet whose next hop has no buffer
  space (or whose link is busy) waits in place; cyclic waits are real
  deadlocks.
* **Deadlock recovery** — a packet waiting longer than the policy
  threshold makes its node report the blocked port during the next
  upload slot; the controller excludes the port in phase 3 and
  downloads new instructions (paper Sec 5.3), after which the packet is
  redirected "along an unlocked path".

Time advances in slots of one packet-serialisation interval; frame
boundaries fire the same TDMA control protocol as the sequential engine.
"""

from __future__ import annotations

from collections import deque

from .base_engine import EngineBase, SystemDead
from .job import Job
from .stats import SimulationStats

#: Consecutive fully-idle slots (with packets present) that end the run
#: as irrecoverably stalled.  Generous enough for recovery round-trips.
STALL_LIMIT_SLOTS = 4096


class _Packet:
    """A job moving through the buffered network."""

    __slots__ = (
        "job",
        "wait_slots",
        "to_sink",
        "reported_deadlock",
        "fault_blocked",
    )

    def __init__(self, job: Job):
        self.job = job
        self.wait_slots = 0
        self.to_sink = False
        self.reported_deadlock = False
        self.fault_blocked = False


class ConcurrentEngine(EngineBase):
    """Closed-loop multi-job simulation with contention and deadlock."""

    def __init__(self, config, recorder=None):
        super().__init__(config, recorder)
        capacity = config.platform.node_buffer_packets
        self.buffers: dict[int, deque[_Packet]] = {
            node: deque() for node in self.nodes
        }
        self.capacity: dict[int, int] = {
            node: capacity for node in range(self.num_mesh_nodes)
        }
        # The external source block queues its own jobs without limit.
        self.capacity[self.source] = 10**9
        self.computing: dict[int, tuple[_Packet, int]] = {}
        self.slot_cycles = self.hop_cycles
        self.slots_per_frame = max(
            1, self.schedule.frame_cycles // self.slot_cycles
        )
        policy = config.control.deadlock
        self.wait_threshold_slots = (
            policy.wait_threshold_frames * self.slots_per_frame
        )
        self.recovery_enabled = config.workload.deadlock_recovery
        self.jobs_completed = 0
        self._slot = 0
        self._stall_slots = 0
        #: Packets resident in buffers or mid-computation, maintained
        #: incrementally (inject/complete/lose/drop) so the per-slot
        #: loop never rescans every buffer.
        self._in_flight = 0
        # Per-slot contention sets and the service order are reused
        # across slots instead of being reallocated ~once per cycle.
        self._used_links: set[tuple[int, int]] = set()
        self._used_receivers: set[int] = set()
        self._service_order = list(self.buffers)

    def _jobs_in_flight(self) -> int:
        return self._in_flight

    # ------------------------------------------------------------------
    # Death hook: resident packets die with their node
    # ------------------------------------------------------------------
    def on_node_death(self, node: int) -> None:
        super().on_node_death(node)
        dropped = len(self.buffers[node])
        self.buffers[node].clear()
        if node in self.computing:
            self.computing.pop(node)
            dropped += 1
        self.jobs_lost += dropped
        self._in_flight -= dropped

    # ------------------------------------------------------------------
    # Per-slot behaviour
    # ------------------------------------------------------------------
    def _inject_jobs(self) -> None:
        """Keep ``concurrency`` jobs in flight (closed-loop workload)."""
        target = self.config.workload.concurrency
        while self._in_flight < target:
            job = self.factory.next_job()
            self.buffers[self.source].append(_Packet(job))
            self._in_flight += 1

    def _finish_computations(self) -> bool:
        """Apply operations whose latency elapsed; True if any finished."""
        if not self.computing:
            return False
        finished = [
            node
            for node, (_, done_at) in self.computing.items()
            if done_at <= self._slot
        ]
        for node in finished:
            packet, _ = self.computing.pop(node)
            packet.job.execute_current(node)
            packet.wait_slots = 0
            self.buffers[node].appendleft(packet)
        return bool(finished)

    def _absorb_or_redirect(self, node: int, packet: _Packet) -> bool:
        """Handle a packet whose job has completed all operations.

        Returns True when the packet left the network (job done).
        """
        if self.config.platform.return_to_sink and node != self.source:
            packet.to_sink = True
            return False
        self._complete_job(packet.job)
        self.buffers[node].popleft()
        self._in_flight -= 1
        return True

    def _complete_job(self, job: Job) -> None:
        self.jobs_completed += 1
        if not job.verify():
            self.verification_failures += 1
        max_jobs = self.config.workload.max_jobs
        if max_jobs is not None and self.jobs_completed >= max_jobs:
            raise SystemDead("job-budget")

    def _note_wait(self, node: int, packet: _Packet, port: int) -> None:
        """A blocked packet waited one more slot; escalate to deadlock.

        The node re-reports on every further threshold's worth of
        waiting, so the controller's port exclusion (which expires after
        a few frames) is refreshed for as long as the blockage persists.
        """
        packet.wait_slots += 1
        if (
            self.recovery_enabled
            and node < self.num_mesh_nodes
            and packet.wait_slots >= self.wait_threshold_slots
            and packet.wait_slots % self.wait_threshold_slots == 0
        ):
            self.pending_deadlock[node] = port
            packet.reported_deadlock = True

    def _can_move(
        self,
        node: int,
        next_hop: int,
        used_links: set[tuple[int, int]],
        used_receivers: set[int],
    ) -> bool:
        """Contention rules for one hop this slot."""
        return (
            self.nodes[next_hop].alive
            and self._link_alive(node, next_hop)
            and len(self.buffers[next_hop]) < self.capacity[next_hop]
            and (node, next_hop) not in used_links
            and next_hop not in used_receivers
        )

    def _escape_hops(self, node: int, target: int) -> list[int]:
        """Alternative next hops toward ``target`` for deadlock escape.

        The paper's recovery redirects a blocked job "along an unlocked
        path"; after the wait threshold a packet may take any live
        neighbour that still has a finite (weighted) distance to the
        target, nearest-first.
        """
        plan = self.control.plan
        candidates = []
        for neighbor in self.topology.neighbors(node):
            if not self.nodes[neighbor].alive:
                continue
            distance = plan.distances[neighbor, target]
            if distance != float("inf"):
                candidates.append((float(distance), neighbor))
        return [n for _, n in sorted(candidates)]

    def _try_move(
        self,
        node: int,
        packet: _Packet,
        next_hop: int,
        target: int,
        used_links: set[tuple[int, int]],
        used_receivers: set[int],
    ) -> bool:
        """Attempt one hop under contention rules; True when it moved.

        ``next_hop`` is the routing table's choice; once the packet has
        waited past the deadlock threshold (and recovery is enabled),
        alternative neighbours toward ``target`` are tried too.
        """
        chosen = None
        if self._can_move(node, next_hop, used_links, used_receivers):
            chosen = next_hop
        elif (
            self.recovery_enabled
            and packet.wait_slots >= self.wait_threshold_slots
        ):
            for alternative in self._escape_hops(node, target):
                if alternative != next_hop and self._can_move(
                    node, alternative, used_links, used_receivers
                ):
                    chosen = alternative
                    break
        if chosen is None:
            if not self._link_alive(node, next_hop):
                self._note_fault_block(node, next_hop)
                packet.fault_blocked = True
            elif self.nodes[next_hop].fault_killed:
                packet.fault_blocked = True
            self._note_wait(node, packet, next_hop)
            return False
        # Take the packet in hand before transmitting: a sender death
        # during the transmit clears the node's buffer, and this packet
        # must not be double-counted by that cleanup.
        self.buffers[node].popleft()
        survived = self._transmit(node, chosen, packet.job.holder)
        used_links.add((node, chosen))
        used_receivers.add(chosen)
        if survived:
            self.buffers[chosen].append(packet)
            if packet.reported_deadlock:
                self.deadlocks_recovered += 1
                if self._trace:
                    self.recorder.event(
                        "deadlock-recovered",
                        frame=self.frames_done,
                        node=node,
                        via=chosen,
                    )
                packet.reported_deadlock = False
            if packet.fault_blocked:
                self.packets_rerouted += 1
                packet.fault_blocked = False
            packet.wait_slots = 0
        else:
            # Sender died mid-transmit: the packet is lost with it.
            self.jobs_lost += 1
            self._in_flight -= 1
        return True

    def _step_node(
        self,
        node: int,
        used_links: set[tuple[int, int]],
        used_receivers: set[int],
    ) -> bool:
        """Advance the head packet of ``node`` one decision.

        Returns True when any progress happened (move, compute start,
        absorption).
        """
        if node in self.computing or not self.buffers[node]:
            return False
        unit = self.nodes[node]
        if not unit.alive:
            return False
        packet = self.buffers[node][0]
        plan = self.control.plan

        if packet.job.completed and not packet.to_sink:
            return self._absorb_or_redirect(node, packet)

        if packet.to_sink:
            if node == self.source:
                self._complete_job(packet.job)
                self.buffers[node].popleft()
                self._in_flight -= 1
                return True
            successor = plan.successor(node, self.source)
            if successor < 0:
                if not self._source_reachable_from(node):
                    raise SystemDead("source-cut")
                self._note_wait(node, packet, node)
                return False
            return self._try_move(
                node, packet, successor, self.source,
                used_links, used_receivers,
            )

        module = packet.job.current_operation.module
        if not plan.has_destination(node, module):
            self._check_reachability(node, "module-unreachable")
            self._note_wait(node, packet, node)
            return False
        destination = plan.destination(node, module)
        if destination == node:
            energy = self._module_energy(module)
            cycles = self._compute_cycles(module)
            result = unit.draw(energy, cycles)
            self.ledger.add_compute(node, result.delivered_pj)
            if result.died:
                self.on_node_death(node)
                return True
            self.buffers[node].popleft()
            done_at = self._slot + max(
                1, -(-cycles // self.slot_cycles)
            )
            self.computing[node] = (packet, done_at)
            return True
        next_hop = plan.next_hop(node, destination)
        return self._try_move(
            node, packet, next_hop, destination,
            used_links, used_receivers,
        )

    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run the closed-loop workload to system death and summarise."""
        self.control.bootstrap()
        death = "unknown"
        order = self._service_order
        count = len(order)
        used_links = self._used_links
        used_receivers = self._used_receivers
        try:
            while True:
                self._inject_jobs()
                progressed = self._finish_computations()
                used_links.clear()
                used_receivers.clear()
                # Rotate the service order across slots for fairness
                # (modular indexing; no per-slot list rebuilds).
                offset = self._slot % count
                for position in range(count):
                    node = order[(position + offset) % count]
                    if self._step_node(node, used_links, used_receivers):
                        progressed = True
                if progressed or self.computing:
                    self._stall_slots = 0
                elif self._in_flight:
                    self._stall_slots += 1
                    if self._stall_slots > STALL_LIMIT_SLOTS:
                        raise SystemDead("stalled")
                self._slot += 1
                self._advance_time(self.slot_cycles)
        except SystemDead as signal:
            death = signal.cause
        partial = sum(
            packet.job.progress_fraction
            for queue in self.buffers.values()
            for packet in queue
        )
        partial += sum(
            packet.job.progress_fraction
            for packet, _ in self.computing.values()
        )
        return self._finalize(self.jobs_completed, partial, death)
