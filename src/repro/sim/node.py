"""Simulated network nodes.

A :class:`NetworkNode` bundles what the paper's platform puts at every
mesh grid point: one module instance, one attached battery, and the port
logic that transmits packets over the textile lines.  The external
source/sink block is represented by a node with an infinite supply and no
module.
"""

from __future__ import annotations

from ..battery.base import Battery, DrawResult
from ..errors import DeadNodeError


class NetworkNode:
    """One computational (or external) node of the fabric.

    Args:
        node_id: Dense topology id.
        module: Application module id hosted here (None for pure
            relays/externals).
        battery: Attached battery; None models an infinite supply (the
            paper's external sensor block and the Sec 7.1 infinite
            controller).
    """

    def __init__(
        self,
        node_id: int,
        module: int | None,
        battery: Battery | None,
    ):
        self.node_id = node_id
        self.module = module
        self.battery = battery
        self._infinite_drawn = 0.0
        #: Physically failed (fault injection), independent of battery
        #: state — a fault-killed node is dead even with a charged cell.
        self.fault_killed = False

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        if self.fault_killed:
            return False
        return self.battery is None or self.battery.alive

    def fail(self) -> None:
        """Kill this node physically (cut trace, crushed module, ...)."""
        self.fault_killed = True

    @property
    def has_infinite_supply(self) -> bool:
        return self.battery is None

    @property
    def state_of_charge(self) -> float:
        if self.battery is None:
            return 1.0
        return self.battery.state_of_charge

    def draw(self, energy_pj: float, duration_cycles: float) -> DrawResult:
        """Draw energy for any activity of this node.

        Raises :class:`DeadNodeError` if the node is already dead —
        engines must check :attr:`alive` first, so hitting this is a
        simulator bug, not a modelling event.
        """
        if not self.alive:
            raise DeadNodeError(self.node_id, "draw energy")
        if self.battery is None:
            self._infinite_drawn += energy_pj
            return DrawResult(
                requested_pj=energy_pj,
                delivered_pj=energy_pj,
                died=False,
                voltage=3.6,
            )
        return self.battery.draw(energy_pj, duration_cycles)

    def rest(self, duration_cycles: float) -> None:
        if self.battery is not None and self.battery.alive:
            self.battery.rest(duration_cycles)

    @property
    def infinite_drawn_pj(self) -> float:
        """Energy drawn from an infinite supply (0 for battery nodes)."""
        return self._infinite_drawn

    def __repr__(self) -> str:
        module = f"module={self.module}" if self.module else "relay"
        state = "alive" if self.alive else "dead"
        return f"NetworkNode({self.node_id}, {module}, {state})"
