"""The vectorised et_sim engine (frame-batched NumPy state).

Same workload semantics as the sequential engine — one exact job in
flight, hop-by-hop movement along the routing tables, TDMA control
frames — but all per-node battery state lives in a struct-of-arrays
bank (:mod:`repro.sim.vector_bank`) and every energy draw inside a
frame is *deferred*: hop and compute requests accumulate into per-frame
buckets and merge with the status-upload energy into a *single*
vectorised draw at the frame boundary, immediately before the frame's
fault/harvest/heartbeat processing.  Harvest income lands as one masked
vector recharge, the heartbeat is an array level-compare, and the
per-node ledger is merged from arrays once at the end of the run.

The observable protocol is unchanged: the controller sees the same kind
of status reports (quantised level transitions and deaths), fault
events apply identically (the schedule is a pure function of the
configuration), and the conservation identity closes exactly — it is
re-asserted against the bank arrays at finalisation.  What *does*
differ from the sequential engine is micro-timing within a frame:
deaths caused by data/compute draws surface at the frame boundary
rather than mid-walk, a cell absorbs its whole frame load (data,
compute and upload together) as one aggregate draw, and the upload
share lands before the boundary's fault/harvest events instead of
after, so EMA trajectories (and therefore exact death frames) can
drift between the engines.  The cross-engine property suite pins
the quantities that must not drift: delivered jobs under a budget,
conservation, and fault/harvest event counts.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..control.controller import StatusReport
from ..errors import SimulationError
from .node import NetworkNode
from .sequential_engine import SequentialEngine
from .stats import SimulationStats
from .vector_bank import BankBatteryView, build_battery_bank


class VectorNode:
    """Mesh-node facade over one battery-bank index.

    Mimics the :class:`~repro.sim.node.NetworkNode` surface the shared
    engine machinery touches (``alive``, ``fault_killed``, ``fail``,
    ``draw``, ``rest``, ``battery``) while keeping all mutable state in
    the engine's arrays.
    """

    __slots__ = ("node_id", "module", "battery", "_alive", "_killed")

    def __init__(
        self,
        node_id: int,
        module: int | None,
        battery: BankBatteryView,
        alive: np.ndarray,
        killed: np.ndarray,
    ):
        self.node_id = node_id
        self.module = module
        self.battery = battery
        self._alive = alive
        self._killed = killed

    @property
    def alive(self) -> bool:
        return bool(self._alive[self.node_id]) and not bool(
            self._killed[self.node_id]
        )

    @property
    def fault_killed(self) -> bool:
        return bool(self._killed[self.node_id])

    def fail(self) -> None:
        self._killed[self.node_id] = True

    @property
    def has_infinite_supply(self) -> bool:
        return False

    @property
    def state_of_charge(self) -> float:
        return self.battery.state_of_charge

    @property
    def infinite_drawn_pj(self) -> float:
        return 0.0

    def draw(self, energy_pj: float, duration_cycles: float):
        from ..errors import DeadNodeError

        if not self.alive:
            raise DeadNodeError(self.node_id, "draw energy")
        return self.battery.draw(energy_pj, duration_cycles)

    def rest(self, duration_cycles: float) -> None:
        if self.battery.alive:
            self.battery.rest(duration_cycles)

    def __repr__(self) -> str:
        module = f"module={self.module}" if self.module else "relay"
        state = "alive" if self.alive else "dead"
        return f"VectorNode({self.node_id}, {module}, {state})"


class VectorEngine(SequentialEngine):
    """Sequential-workload engine with frame-batched vector state."""

    def __init__(self, config, recorder=None):
        super().__init__(config, recorder)
        mesh = self.num_mesh_nodes
        self.bank = build_battery_bank(config.platform, mesh)
        self._killed = np.zeros(mesh, dtype=bool)
        for node in range(mesh):
            self.nodes[node] = VectorNode(
                node,
                self.mapping.module_of(node),
                BankBatteryView(self.bank, node),
                self.bank.alive,
                self._killed,
            )
        # The source keeps its infinite-supply NetworkNode; its draws
        # are charged live (add_source_tx), never through the bank.
        assert isinstance(self.nodes[self.source], NetworkNode)

        # Deferred per-node ledger columns, merged once at finalisation.
        self._data_pj = np.zeros(mesh, dtype=float)
        self._compute_pj = np.zeros(mesh, dtype=float)
        self._upload_pj = np.zeros(mesh, dtype=float)
        self._harvest_pj = np.zeros(mesh, dtype=float)
        self._packets_sent = np.zeros(mesh, dtype=np.int64)
        self._packets_relayed = np.zeros(mesh, dtype=np.int64)
        self._operations = np.zeros(mesh, dtype=np.int64)
        self._harvest_events = 0
        self._ledger_merged = False

        # Current frame's draw buckets.
        self._hop_senders: list[int] = []
        self._hop_energies: list[float] = []
        self._hop_relayers: list[int] = []
        self._compute_nodes: list[int] = []
        self._compute_energies: list[float] = []
        self._compute_cycles_acc: list[int] = []

        # Heartbeat state: last reported (level, alive) per node, primed
        # full/alive exactly like the base tracker.
        levels = self.quantizer.levels
        self._last_level = np.full(mesh, levels - 1, dtype=np.int64)
        self._last_alive = np.ones(mesh, dtype=bool)
        self._zero_income = [0.0] * mesh
        # Per-frame constants, hoisted off the flush/heartbeat hot path.
        self._upload_energy = float(self.schedule.upload_energy_pj)
        self._upload_cycles = float(self.schedule.upload_slot_cycles)
        self._frame_rest_cycles = float(self.schedule.frame_cycles)
        # Upload request/duration vectors only change when the living
        # set does; every death path funnels through on_node_death,
        # which drops the cache.
        self._upload_vectors: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Deferred draws
    # ------------------------------------------------------------------
    def _transmit(self, sender: int, receiver: int, holder: int) -> bool:
        """Queue one hop's energy; the draw lands at the frame boundary.

        Always reports survival: a sender whose cell the queued load
        exhausts dies when the bucket flushes, which the walk observes
        through its per-iteration liveness checks.
        """
        if (sender, receiver) in self.faults.cut_links:
            raise SimulationError(
                f"packet transmitted over cut link {sender} -> {receiver}"
            )
        length = float(self.lengths[sender, receiver])
        energy = self._hop_energy_by_length.get(length)
        if energy is None:
            energy = self.link_model.hop_energy_pj(length)
            self._hop_energy_by_length[length] = energy
        if self._track_wear:
            self.faults.note_traversal(sender, receiver)
        if self._track_load:
            self.congestion.note_traversal(sender, receiver)
        unit = self.nodes[sender]
        if unit.has_infinite_supply:
            result = unit.draw(energy, self.hop_cycles)
            self.ledger.add_source_tx(result.delivered_pj)
        else:
            self._hop_senders.append(sender)
            self._hop_energies.append(energy)
            if sender != holder:
                self._hop_relayers.append(sender)
        self.total_hops += 1
        return True

    def _compute(self, job, node: int, module: int) -> bool:
        """Queue the operation's energy and execute the transform.

        The energy draw lands with the frame flush; if advancing the
        module latency crossed a frame boundary and the flush (or a
        fault) killed the node, the result is wasted and the operation
        retries from the holder — the sequential engine's rule.
        """
        energy = self._module_energy(module)
        cycles = self._compute_cycles(module)
        self._compute_nodes.append(node)
        self._compute_energies.append(energy)
        self._compute_cycles_acc.append(cycles)
        self._operations[node] += 1
        self._advance_time(cycles)
        if not self.nodes[node].alive:
            return False
        job.execute_current(node)
        return True

    def _flush_buckets(self, upload: bool = False) -> None:
        """Apply the frame's whole load as one vectorised draw.

        Hop and compute buckets — plus, at a frame boundary, every
        living unit's status-upload energy — merge into a single
        per-node ``(request, duration)`` pair, so a cell absorbs its
        frame as one aggregate draw.  Delivered energy is split back
        into the ledger's data/compute/upload columns in proportion to
        what each category requested; for every surviving cell the
        factor is exactly 1, so attribution only approximates on the
        (rare) draw that exhausts a cell mid-frame.
        """
        mesh = self.num_mesh_nodes
        bank = self.bank
        if upload:
            if self._upload_vectors is None:
                unit_alive = bank.alive & ~self._killed
                self._upload_vectors = (
                    np.where(unit_alive, self._upload_energy, 0.0),
                    np.where(unit_alive, self._upload_cycles, 0.0),
                )
            upload_req, upload_dur = self._upload_vectors
            requests = upload_req.copy()
            durations = upload_dur.copy()
        else:
            if not self._hop_senders and not self._compute_nodes:
                return
            upload_req = None
            requests = np.zeros(mesh, dtype=float)
            durations = np.zeros(mesh, dtype=float)
        data_req = None
        if self._hop_senders:
            senders = np.asarray(self._hop_senders, dtype=np.int64)
            energies = np.asarray(self._hop_energies, dtype=float)
            data_req = np.zeros(mesh, dtype=float)
            np.add.at(data_req, senders, energies)
            counts = np.zeros(mesh, dtype=np.int64)
            np.add.at(counts, senders, 1)
            self._packets_sent += counts
            if self._hop_relayers:
                relayers = np.asarray(self._hop_relayers, dtype=np.int64)
                np.add.at(self._packets_relayed, relayers, 1)
            requests += data_req
            durations += counts * float(self.hop_cycles)
            self._hop_senders.clear()
            self._hop_energies.clear()
            self._hop_relayers.clear()
        compute_req = None
        if self._compute_nodes:
            nodes = np.asarray(self._compute_nodes, dtype=np.int64)
            compute_req = np.zeros(mesh, dtype=float)
            np.add.at(
                compute_req,
                nodes,
                np.asarray(self._compute_energies, dtype=float),
            )
            compute_dur = np.zeros(mesh, dtype=float)
            np.add.at(
                compute_dur,
                nodes,
                np.asarray(self._compute_cycles_acc, dtype=float),
            )
            requests += compute_req
            durations += compute_dur
            self._compute_nodes.clear()
            self._compute_energies.clear()
            self._compute_cycles_acc.clear()
        if self._timed:
            draw_started = time.perf_counter()
            delivered, died = bank.draw(requests, durations)
            self.recorder.timing(
                "bank-draw", time.perf_counter() - draw_started
            )
        else:
            delivered, died = bank.draw(requests, durations)
        if died.any():
            # A draw only under-delivers on the cell it exhausts, so
            # the proportional split is exact everywhere else.
            factor = delivered / np.where(requests > 0.0, requests, 1.0)
            if upload_req is not None:
                self._upload_pj += upload_req * factor
            if data_req is not None:
                self._data_pj += data_req * factor
            if compute_req is not None:
                self._compute_pj += compute_req * factor
            for idx in np.flatnonzero(died):
                self.on_node_death(int(idx))
        else:
            if upload_req is not None:
                self._upload_pj += upload_req
            if data_req is not None:
                self._data_pj += data_req
            if compute_req is not None:
                self._compute_pj += compute_req

    def on_node_death(self, node: int) -> None:
        self._upload_vectors = None
        super().on_node_death(node)

    # ------------------------------------------------------------------
    # Frame processing overrides
    # ------------------------------------------------------------------
    def _run_frame(self, frame: int) -> None:
        # The frame's accumulated load (including the boundary's status
        # uploads) must hit the cells before the heartbeat observes
        # them, so levels and deaths reported this frame reflect the
        # work done during it.
        self._flush_buckets(upload=True)
        super()._run_frame(frame)

    def _heartbeat_phase(self) -> tuple[list[StatusReport], int]:
        # The upload energy was already part of the frame's merged
        # draw; the heartbeat proper is only the observation: count the
        # living units, diff quantised levels against the last report
        # and let the cells rest.
        bank = self.bank
        unit_alive = bank.alive & ~self._killed
        heartbeats = int(np.count_nonzero(unit_alive))
        levels = self.quantizer.levels
        soc = bank.soc_vector()
        raw = np.minimum(levels - 1, (soc * levels).astype(np.int64))
        raw = np.where(soc <= 0.0, 0, raw)
        level = np.where(unit_alive, raw, 0)
        changed = (level != self._last_level) | (
            unit_alive != self._last_alive
        )
        if changed.any():
            reports = [
                StatusReport(
                    node=int(node),
                    level=int(level[node]),
                    alive=bool(unit_alive[node]),
                )
                for node in np.flatnonzero(changed)
            ]
        else:
            reports = []
        self._last_level = level
        self._last_alive = unit_alive
        bank.rest(self._frame_rest_cycles, unit_alive)
        return reports, heartbeats

    def _apply_harvest(self, frame: int) -> None:
        runtime = self.harvest
        income = runtime.schedule.income(frame)
        tracking = self._track_income
        accepted_list = None
        if income is not None:
            offers = np.asarray(income, dtype=float)
            accepted = self.bank.recharge(offers, ~self._killed)
            events = int(np.count_nonzero(accepted > 0.0))
            if events:
                self._harvest_pj += accepted
                self._harvest_events += events
            if self._trace:
                offered_pj = float(offers.sum())
                accepted_pj = float(accepted.sum())
                if offered_pj - accepted_pj > 1e-9:
                    self._record_harvest_rejection(
                        frame,
                        offered_pj,
                        accepted_pj,
                        int(np.count_nonzero(accepted < offers)),
                    )
            if tracking:
                accepted_list = accepted.tolist()
        if runtime.shares_power:
            self._apply_power_sharing()
        if tracking:
            runtime.observe_frame(
                accepted_list if accepted_list is not None
                else self._zero_income
            )

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def _merge_ledger(self) -> None:
        """Fold the deferred per-node array columns into the ledger."""
        if self._ledger_merged:
            return
        self._ledger_merged = True
        ledger = self.ledger
        ledger.data_tx_pj += float(self._data_pj.sum())
        ledger.compute_pj += float(self._compute_pj.sum())
        ledger.upload_pj += float(self._upload_pj.sum())
        ledger.harvested_pj += float(self._harvest_pj.sum())
        ledger.harvest_events += self._harvest_events
        for node in range(self.num_mesh_nodes):
            stats = ledger.nodes[node]
            stats.operations += int(self._operations[node])
            stats.packets_sent += int(self._packets_sent[node])
            stats.packets_relayed += int(self._packets_relayed[node])
            stats.data_tx_pj += float(self._data_pj[node])
            stats.compute_pj += float(self._compute_pj[node])
            stats.upload_pj += float(self._upload_pj[node])
            stats.harvested_pj += float(self._harvest_pj[node])

    def _assert_conservation(self) -> None:
        """Re-derive the energy identity from the bank arrays.

        Everything the cells delivered must appear in the ledger's load
        buckets, and everything they accepted must be harvest or bus
        income — the vectorised bookkeeping is only trusted because
        this closes on every run.
        """
        delivered = float(np.sum(self.bank.delivered))
        recharged = float(np.sum(self.bank.recharged))
        if not math.isclose(
            delivered, self.ledger.node_total_pj, rel_tol=1e-9, abs_tol=1e-6
        ):
            raise SimulationError(
                "vector engine conservation violation: cells delivered "
                f"{delivered} pJ but the ledger booked "
                f"{self.ledger.node_total_pj} pJ of load"
            )
        income = self.ledger.harvested_pj + self.ledger.shared_pj
        if not math.isclose(recharged, income, rel_tol=1e-9, abs_tol=1e-6):
            raise SimulationError(
                "vector engine conservation violation: cells accepted "
                f"{recharged} pJ but the ledger booked {income} pJ of "
                "income"
            )

    def _finalize(
        self, jobs_completed: int, partial: float, death: str
    ) -> SimulationStats:
        self._flush_buckets()
        self._merge_ledger()
        self._assert_conservation()
        return super()._finalize(jobs_completed, partial, death)
