"""Energy accounting and simulation statistics.

The paper's headline metric is the number of completed jobs at system
death; supporting numbers are the energy split between application and
control ("the percentage of energy consumed on exchanging the control
information", Sec 7.1) and the battery state at death.  The ledger
accumulates every picojoule by bucket and by node, so energy
conservation can be asserted by the test suite:

    delivered_by_batteries == compute + data_tx + control_upload + share_tx
    nominal + harvested == delivered_to_loads + conversion_loss
                           + wasted + stranded

where ``harvested`` is the external income accepted into cells and
``conversion_loss`` covers both the batteries' rate-capacity losses and
the textile power bus's transfer losses (energy drawn from a donor for
sharing minus what the receiver's cell accepted).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeStats:
    """Per-node counters.

    Attributes:
        operations: Acts of computation executed.
        packets_sent: Packets transmitted (own or relayed).
        packets_relayed: Subset of ``packets_sent`` relayed for others.
        compute_pj: Energy drawn for computation.
        data_tx_pj: Energy drawn for data transmission.
        upload_pj: Energy drawn for control status uploads.
        share_tx_pj: Energy drawn to push charge onto the power bus.
        harvested_pj: External harvest income accepted by this node's
            cell.
        shared_pj: Bus transfers accepted by this node's cell
            (post-conversion).
        share_relay_pj: Bus energy that passed *through* this node on a
            multi-hop transfer (post-conversion at the inbound hop; it
            never touches the node's own cell).
        died_at_frame: Frame of death (None while alive).
    """

    operations: int = 0
    packets_sent: int = 0
    packets_relayed: int = 0
    compute_pj: float = 0.0
    data_tx_pj: float = 0.0
    upload_pj: float = 0.0
    share_tx_pj: float = 0.0
    harvested_pj: float = 0.0
    shared_pj: float = 0.0
    share_relay_pj: float = 0.0
    died_at_frame: int | None = None

    @property
    def total_pj(self) -> float:
        return (
            self.compute_pj
            + self.data_tx_pj
            + self.upload_pj
            + self.share_tx_pj
        )


class EnergyLedger:
    """Mutable energy accounting used by the engines."""

    #: Controller-side bucket names (mirrors FrameOutcome's breakdown).
    CONTROLLER_BUCKETS = (
        "rx",
        "compute",
        "download_tx",
        "housekeeping",
        "idle_leak",
    )

    def __init__(self, num_nodes: int):
        self.nodes: dict[int, NodeStats] = {
            node: NodeStats() for node in range(num_nodes)
        }
        self.compute_pj = 0.0
        self.data_tx_pj = 0.0
        self.upload_pj = 0.0
        self.source_tx_pj = 0.0
        #: External harvest income accepted into mesh-node cells.
        self.harvested_pj = 0.0
        #: Bus transfers accepted by receiving cells (post-conversion).
        self.shared_pj = 0.0
        #: Energy drawn from donor cells to feed the power bus.
        self.share_tx_pj = 0.0
        #: Bus energy lost in conversion (drawn minus accepted).
        self.share_loss_pj = 0.0
        #: Subset of ``share_loss_pj`` dissipated hop by hop in the
        #: textile lines (each line segment passes ``share_efficiency``
        #: of what enters it).
        self.share_hop_loss_pj = 0.0
        #: Subset of ``share_loss_pj`` rejected at the receiving cell
        #: (arrivals beyond its headroom).
        self.share_rejected_pj = 0.0
        #: Bus line segments traversed by transfers.
        self.share_hops = 0
        #: Harvest pulses that actually recharged a cell.
        self.harvest_events = 0
        self.controller_pj: dict[str, float] = {
            bucket: 0.0 for bucket in self.CONTROLLER_BUCKETS
        }

    # ------------------------------------------------------------------
    def add_compute(self, node: int, energy_pj: float) -> None:
        self.compute_pj += energy_pj
        stats = self.nodes[node]
        stats.compute_pj += energy_pj
        stats.operations += 1

    def add_data_tx(
        self, node: int, energy_pj: float, relay: bool
    ) -> None:
        self.data_tx_pj += energy_pj
        stats = self.nodes[node]
        stats.data_tx_pj += energy_pj
        stats.packets_sent += 1
        if relay:
            stats.packets_relayed += 1

    def add_source_tx(self, energy_pj: float) -> None:
        """Transmissions paid by the external (infinite-supply) source."""
        self.source_tx_pj += energy_pj

    def add_upload(self, node: int, energy_pj: float) -> None:
        self.upload_pj += energy_pj
        self.nodes[node].upload_pj += energy_pj

    def add_harvest(self, node: int, energy_pj: float) -> None:
        """External income accepted into ``node``'s cell."""
        self.harvested_pj += energy_pj
        self.nodes[node].harvested_pj += energy_pj
        self.harvest_events += 1

    def add_share_hop(self, loss_pj: float) -> None:
        """One line segment of a bus transfer: ``loss_pj`` of what
        entered the segment was lost to conversion.  (Per-node
        attribution of relayed energy is :meth:`note_share_relay`.)"""
        self.share_hops += 1
        self.share_hop_loss_pj += loss_pj

    def note_share_relay(self, node: int, energy_pj: float) -> None:
        """``energy_pj`` passed through ``node`` on a multi-hop
        transfer without touching its cell."""
        self.nodes[node].share_relay_pj += energy_pj

    def add_share(
        self,
        donor: int,
        drawn_pj: float,
        receiver: int,
        accepted_pj: float,
        arrived_pj: float | None = None,
    ) -> None:
        """One bus transfer: ``drawn_pj`` left the donor's cell and
        ``accepted_pj`` arrived in the receiver's; the difference is
        conversion loss in the textile bus.  ``arrived_pj`` — what
        reached the receiving cell after the per-hop losses — splits
        that difference into hop loss and headroom rejection."""
        self.share_tx_pj += drawn_pj
        self.nodes[donor].share_tx_pj += drawn_pj
        self.shared_pj += accepted_pj
        self.nodes[receiver].shared_pj += accepted_pj
        self.share_loss_pj += drawn_pj - accepted_pj
        if arrived_pj is not None:
            self.share_rejected_pj += arrived_pj - accepted_pj

    def add_controller(self, breakdown: dict[str, float]) -> None:
        for bucket, energy in breakdown.items():
            self.controller_pj[bucket] = (
                self.controller_pj.get(bucket, 0.0) + energy
            )

    def mark_death(self, node: int, frame: int) -> None:
        if self.nodes[node].died_at_frame is None:
            self.nodes[node].died_at_frame = frame

    # ------------------------------------------------------------------
    @property
    def node_total_pj(self) -> float:
        """Everything drawn from mesh-node batteries."""
        return (
            self.compute_pj
            + self.data_tx_pj
            + self.upload_pj
            + self.share_tx_pj
        )

    @property
    def controller_total_pj(self) -> float:
        return sum(self.controller_pj.values())

    @property
    def control_medium_pj(self) -> float:
        """Energy spent *exchanging control information* on the shared
        medium: node status uploads plus routing-table downloads.

        This is the quantity behind the paper's Sec 7.1 percentages
        (2.8 % .. 11.6 %); the controllers' internal energy is accounted
        separately (it comes from an infinite supply in the Sec 7.1-7.2
        experiments and only matters for Fig 8).
        """
        return self.upload_pj + self.controller_pj.get("download_tx", 0.0)

    @property
    def control_total_pj(self) -> float:
        """All control-mechanism energy: medium plus controller internals."""
        return self.upload_pj + self.controller_total_pj

    @property
    def application_total_pj(self) -> float:
        """Computation plus data transport (including the source's)."""
        return self.compute_pj + self.data_tx_pj + self.source_tx_pj

    def control_overhead_fraction(self) -> float:
        """The paper's Sec 7.1 metric: control-exchange energy over the
        total (application + control-exchange) energy."""
        total = self.control_medium_pj + self.application_total_pj
        if total <= 0:
            return 0.0
        return self.control_medium_pj / total


@dataclass
class SimulationStats:
    """Immutable summary returned by a finished simulation.

    Attributes:
        jobs_completed: Whole jobs finished before system death.
        partial_progress: Fractional progress (completed operations over
            operations per job) of work lost at death — the paper
            reports fractional job counts such as 62.8.
        jobs_lost: Jobs abandoned after unrecoverable failures.
        lifetime_frames / lifetime_cycles: System lifetime.
        death_cause: Why the system died (``module-unreachable``,
            ``controller-dead``, ``source-cut``, ``frame-budget``,
            ``job-budget``).
        routing: Routing algorithm name.
        energy: Final energy ledger.
        wasted_at_death_pj: Residual energy stranded in dead cells.
        stranded_alive_pj: Residual energy in cells still alive at
            system death.
        conversion_loss_pj: Rate-capacity losses inside batteries.
        recompute_count: Routing recomputations performed.
        deadlocks_reported / deadlocks_recovered: Deadlock protocol
            activity (concurrent engine).
        op_retries: Operations re-dispatched after node deaths.
        verification_failures: Completed jobs whose ciphertext did not
            match the reference cipher (must be 0).
        total_hops: Data-network hops traversed.
        faults_injected: Fault events actually applied to the platform.
        links_cut: Interconnect lines permanently severed.
        links_degraded: Transient link-degradation events applied.
        links_repaired: Cut lines re-sewn by repair events.
        nodes_fault_killed: Nodes killed by faults (not battery death).
        packets_rerouted: Dispatches/packets blocked by fault state that
            subsequently progressed along another path or a fresh plan.
        harvested_pj: External harvest income accepted into cells.
        shared_pj: Power-bus transfers accepted by receiving cells.
        share_hops: Bus line segments traversed by power transfers.
        harvest_events: Harvest pulses that actually recharged a cell.
        max_link_traversals: Lifetime traversal count of the single
            busiest link (None unless the run tracked congestion —
            absent keys keep historical summaries byte-identical).
        hot_link_share: Busiest link's share of all link traversals
            (None unless the run tracked congestion).
        extra: Out-of-band metadata attached by harnesses (e.g. the
            sweep runner's wall-clock timing); never part of
            :meth:`summary`.
    """

    jobs_completed: int = 0
    partial_progress: float = 0.0
    jobs_lost: int = 0
    lifetime_frames: int = 0
    lifetime_cycles: int = 0
    death_cause: str = "unknown"
    routing: str = "?"
    energy: EnergyLedger | None = None
    wasted_at_death_pj: float = 0.0
    stranded_alive_pj: float = 0.0
    conversion_loss_pj: float = 0.0
    recompute_count: int = 0
    deadlocks_reported: int = 0
    deadlocks_recovered: int = 0
    op_retries: int = 0
    verification_failures: int = 0
    total_hops: int = 0
    faults_injected: int = 0
    links_cut: int = 0
    links_degraded: int = 0
    links_repaired: int = 0
    nodes_fault_killed: int = 0
    packets_rerouted: int = 0
    harvested_pj: float = 0.0
    shared_pj: float = 0.0
    share_hops: int = 0
    harvest_events: int = 0
    max_link_traversals: int | None = None
    hot_link_share: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def jobs_fractional(self) -> float:
        """Completed jobs including the partial credit of in-flight work
        (matches the paper's fractional reporting, e.g. 62.8)."""
        return self.jobs_completed + self.partial_progress

    @property
    def control_overhead_fraction(self) -> float:
        if self.energy is None:
            return 0.0
        return self.energy.control_overhead_fraction()

    def summary(self) -> dict:
        """Compact JSON-safe result record for sweep harnesses.

        Congestion metrics appear only on runs that tracked them, so
        summaries (and the golden fixtures recorded from them) of
        congestion-blind runs are unchanged by the subsystem's
        existence.
        """
        energy = self.energy
        congestion = {}
        if self.max_link_traversals is not None:
            congestion["max_link_traversals"] = self.max_link_traversals
            congestion["hot_link_share"] = self.hot_link_share
        return {
            "routing": self.routing,
            "jobs_completed": self.jobs_completed,
            "jobs_fractional": round(self.jobs_fractional, 3),
            "jobs_lost": self.jobs_lost,
            "lifetime_frames": self.lifetime_frames,
            "death_cause": self.death_cause,
            "control_overhead": round(self.control_overhead_fraction, 5),
            "compute_pj": round(energy.compute_pj, 1) if energy else 0.0,
            "data_tx_pj": round(energy.data_tx_pj, 1) if energy else 0.0,
            "upload_pj": round(energy.upload_pj, 1) if energy else 0.0,
            "controller_pj": (
                round(energy.controller_total_pj, 1) if energy else 0.0
            ),
            "wasted_at_death_pj": round(self.wasted_at_death_pj, 1),
            "stranded_alive_pj": round(self.stranded_alive_pj, 1),
            "conversion_loss_pj": round(self.conversion_loss_pj, 1),
            "total_hops": self.total_hops,
            "recomputes": self.recompute_count,
            "op_retries": self.op_retries,
            "deadlocks_reported": self.deadlocks_reported,
            "deadlocks_recovered": self.deadlocks_recovered,
            "verification_failures": self.verification_failures,
            "faults_injected": self.faults_injected,
            "links_cut": self.links_cut,
            "links_degraded": self.links_degraded,
            "links_repaired": self.links_repaired,
            "nodes_fault_killed": self.nodes_fault_killed,
            "packets_rerouted": self.packets_rerouted,
            "harvested_pj": round(self.harvested_pj, 1),
            "shared_pj": round(self.shared_pj, 1),
            "share_hops": self.share_hops,
            "harvest_events": self.harvest_events,
            **congestion,
        }
