"""Module-to-node mapping strategies.

A mapping assigns every *computational* node of the fabric to exactly one
application module ("Each node is an instance of exactly one module",
paper Sec 3).  External nodes (sources/sinks, controllers) carry no
module.  Three strategies are provided:

* :func:`checkerboard_mapping` — the paper's parity rule (Sec 5.2).
* :func:`proportional_mapping` — Theorem 1's optimal replication
  ``n_i* = K * H_i / sum(H)``, rounded by largest remainder and spread
  spatially by error diffusion.
* :func:`uniform_mapping` — equal replication, the natural naive
  baseline used in the mapping ablation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

from ..errors import MappingError
from .geometry import parity
from .topology import Topology


class ModuleMapping:
    """Immutable assignment of nodes to module ids.

    Args:
        assignment: Mapping from node id to module id (1-based module
            ids, following the paper's Table 1).
        num_modules: Total number of distinct modules ``p``.  Every
            module in ``1..p`` must be instantiated at least once —
            otherwise no job could ever complete.
    """

    def __init__(self, assignment: Mapping[int, int], num_modules: int):
        if num_modules < 1:
            raise MappingError(f"need >= 1 module, got {num_modules}")
        self._num_modules = int(num_modules)
        self._assignment = dict(assignment)
        for node, module in self._assignment.items():
            if not 1 <= module <= num_modules:
                raise MappingError(
                    f"node {node} mapped to module {module}, outside "
                    f"1..{num_modules}"
                )
        counts = Counter(self._assignment.values())
        missing = [m for m in range(1, num_modules + 1) if counts[m] == 0]
        if missing:
            raise MappingError(
                f"modules {missing} are not instantiated on any node; "
                "every module needs at least one duplicate or no job "
                "can ever complete"
            )
        self._counts = {m: counts[m] for m in range(1, num_modules + 1)}
        self._duplicates = {
            m: tuple(sorted(n for n, mod in self._assignment.items() if mod == m))
            for m in range(1, num_modules + 1)
        }

    @property
    def num_modules(self) -> int:
        """Number of distinct modules ``p``."""
        return self._num_modules

    @property
    def mapped_nodes(self) -> tuple[int, ...]:
        """All nodes that carry a module, sorted."""
        return tuple(sorted(self._assignment))

    def module_of(self, node: int) -> int | None:
        """Module id of ``node`` (None for unmapped/external nodes)."""
        return self._assignment.get(node)

    def duplicates(self, module: int) -> tuple[int, ...]:
        """The paper's ``S_i``: sorted node ids instantiating ``module``."""
        try:
            return self._duplicates[module]
        except KeyError:
            raise MappingError(
                f"module {module} outside 1..{self._num_modules}"
            ) from None

    def duplicate_counts(self) -> dict[int, int]:
        """The paper's ``n_i``: number of duplicates per module."""
        return dict(self._counts)

    def validate_against(self, topology: Topology) -> None:
        """Check that every mapped node exists in ``topology``."""
        for node in self._assignment:
            if not 0 <= node < topology.num_nodes:
                raise MappingError(
                    f"mapped node {node} does not exist in {topology!r}"
                )

    def as_dict(self) -> dict[int, int]:
        """Copy of the raw node -> module assignment."""
        return dict(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModuleMapping):
            return NotImplemented
        return (
            self._assignment == other._assignment
            and self._num_modules == other._num_modules
        )

    def __repr__(self) -> str:
        counts = ", ".join(
            f"n{m}={c}" for m, c in sorted(self._counts.items())
        )
        return f"ModuleMapping(p={self._num_modules}, {counts})"


def checkerboard_mapping(
    topology: Topology, nodes: Iterable[int] | None = None
) -> ModuleMapping:
    """The paper's parity mapping for the 3-module AES application.

    "Assuming any node with coordinates (x, y), our mapping strategy is
    to map that node to module 1 if m(x)+m(y)=2, to module 2 if
    m(x)+m(y)=0, and to module 3 if m(x)+m(y)=1 where m(x) is defined as
    x modulo 2" (Sec 5.2).  With 1-based coordinates this places module 1
    on odd/odd nodes, module 2 on even/even nodes and module 3 — the most
    energy-hungry module — on the remaining (roughly half the) nodes,
    qualitatively matching Theorem 1's proportional rule.
    """
    if topology.mesh_width is None:
        raise MappingError("checkerboard mapping requires a mesh topology")
    selected = (
        range(topology.mesh_width * (topology.mesh_height or 0))
        if nodes is None
        else nodes
    )
    assignment: dict[int, int] = {}
    for node in selected:
        x, y = topology.coordinates(node)
        parity_sum = parity(x) + parity(y)
        if parity_sum == 2:
            assignment[node] = 1
        elif parity_sum == 0:
            assignment[node] = 2
        else:
            assignment[node] = 3
    mapping = ModuleMapping(assignment, num_modules=3)
    mapping.validate_against(topology)
    return mapping


def _largest_remainder_allocation(
    weights: dict[int, float], total: int
) -> dict[int, int]:
    """Integer allocation of ``total`` slots proportional to ``weights``.

    Guarantees at least one slot per key (a module with zero duplicates
    would make jobs impossible) and exact total.
    """
    if total < len(weights):
        raise MappingError(
            f"cannot allocate {total} nodes to {len(weights)} modules "
            "(each module needs at least one duplicate)"
        )
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise MappingError("allocation weights must sum to a positive value")
    raw = {m: total * w / weight_sum for m, w in weights.items()}
    counts = {m: max(1, int(raw[m])) for m in weights}
    # Fix the total by walking the largest fractional remainders.
    while sum(counts.values()) < total:
        candidates = sorted(
            weights,
            key=lambda m: (raw[m] - counts[m]),
            reverse=True,
        )
        counts[candidates[0]] += 1
        raw[candidates[0]] -= 1.0
    while sum(counts.values()) > total:
        candidates = sorted(
            (m for m in weights if counts[m] > 1),
            key=lambda m: (raw[m] - counts[m]),
        )
        if not candidates:
            raise MappingError("cannot shrink allocation below 1 per module")
        counts[candidates[0]] -= 1
        raw[candidates[0]] += 1.0
    return counts


#: Smallest supply mass a node may carry in the income-aware mapping:
#: even a node with no generator still brings its battery to the table.
_MASS_FLOOR = 0.05

#: Default income bias of :func:`harvest_proportional_mapping`.
#: Calibrated on the ``harvest-mapping`` scenario's quick grid — small
#: enough that the placement keeps the proportional rule's spatial
#: interleaving (which the transport energy depends on), large enough
#: that the energy-hungry duplicates actually migrate onto the
#: generator-equipped nodes.
DEFAULT_INCOME_BIAS = 0.3


def _mass_error_diffusion(
    selected: list[int],
    masses: list[float],
    counts: dict[int, int],
    modules: list[int],
) -> tuple[dict[int, int], dict[int, float]]:
    """Error-diffusion placement in supply-mass space.

    Nodes are visited in ``selected`` order — the spatial interleaving
    the classic diffusion relies on — but the deficits are tracked in
    supply mass: at each node the module whose captured mass lags most
    behind its target share (subject to its duplicate count) is
    assigned.  A high-mass node bumps the cumulative mass hardest, so
    the largest-share (energy-hungriest) module surges to the top of
    the deficit ranking exactly when an income-rich node comes up.
    With unit masses this is the classic count-space diffusion.
    Returns the assignment and the mass each module captured.
    """
    total = len(selected)
    target = {m: counts[m] / total for m in modules}
    assigned = {m: 0 for m in modules}
    captured = {m: 0.0 for m in modules}
    assignment: dict[int, int] = {}
    cum_mass = 0.0
    for position in range(total):
        cum_mass += masses[position]
        deficits = {
            m: target[m] * cum_mass - captured[m]
            for m in modules
            if assigned[m] < counts[m]
        }
        module = max(sorted(deficits), key=lambda m: deficits[m])
        assignment[selected[position]] = module
        assigned[module] += 1
        captured[module] += masses[position]
    return assignment, captured


def proportional_mapping(
    topology: Topology,
    normalized_energies: dict[int, float],
    nodes: Iterable[int] | None = None,
) -> ModuleMapping:
    """Theorem-1 proportional mapping.

    Allocates duplicates proportionally to the normalised energies
    ``H_i`` (paper Eq 3) and spreads each module across the fabric by
    error diffusion over the node order, so duplicates of the same
    module do not clump in one corner.
    """
    selected = list(range(topology.num_nodes) if nodes is None else nodes)
    counts = _largest_remainder_allocation(normalized_energies, len(selected))
    modules = sorted(normalized_energies)
    assignment, _ = _mass_error_diffusion(
        selected, [1.0] * len(selected), counts, modules
    )
    mapping = ModuleMapping(assignment, num_modules=max(modules))
    mapping.validate_against(topology)
    return mapping


def harvest_proportional_mapping(
    topology: Topology,
    normalized_energies: dict[int, float],
    income: Sequence[float] | Mapping[int, float],
    nodes: Iterable[int] | None = None,
    income_bias: float = DEFAULT_INCOME_BIAS,
) -> ModuleMapping:
    """Income-aware Theorem-1 mapping.

    Extends :func:`proportional_mapping` from node-count space to
    *supply-mass* space: each node's mass blends its (uniform) battery
    with its expected harvest income, so generator-equipped regions
    weigh more.  Two effects follow:

    * **Placement** — error diffusion runs over mass in the spatial
      node order, so a generator-equipped node bumps the cumulative
      mass hardest and the energy-hungriest module surges to the top
      of the deficit ranking exactly when such a node comes up.
    * **Duplicate counts** — after a first placement pass, each
      module's count is re-derived from ``H_i`` divided by the mean
      supply mass its duplicates captured: a module sitting on
      income-rich nodes needs fewer duplicates to sustain its share of
      the work, freeing fabric for the others.

    With uniform income (including the all-zero income of a
    harvest-free run) every mass is 1 and both passes reproduce
    :func:`proportional_mapping` exactly.

    Args:
        income: Expected per-node income, indexable by node id (e.g.
            ``HarvestSchedule.expected_income_weights()``).  Only the
            relative magnitudes matter.
        income_bias: Fraction of a node's supply mass carried by its
            income deviation (0 = ignore income entirely, 1 = income
            dominates).
    """
    selected = list(range(topology.num_nodes) if nodes is None else nodes)
    if not 0.0 <= income_bias <= 1.0:
        raise MappingError(
            f"income bias must lie in [0, 1], got {income_bias}"
        )
    raw = [max(0.0, float(income[node])) for node in selected]
    mean = sum(raw) / len(raw) if raw else 0.0
    if mean <= 0.0 or max(raw) == min(raw):
        masses = [1.0] * len(selected)
    else:
        masses = [
            max(_MASS_FLOOR, 1.0 + income_bias * (value / mean - 1.0))
            for value in raw
        ]
    modules = sorted(normalized_energies)
    counts = _largest_remainder_allocation(normalized_energies, len(selected))
    assignment, captured = _mass_error_diffusion(
        selected, masses, counts, modules
    )
    if any(mass != 1.0 for mass in masses):
        # Re-express Theorem 1 in supply-mass space: duplicates needed
        # scale with H_i over the mean mass one duplicate commands.
        # The correction is clamped to a 2x band — income supplements
        # batteries, it does not replace them, and an unbounded
        # correction would collapse a module onto a single very rich
        # node (transport and congestion, which the mapping cannot
        # see, punish that hard).
        mean_captured = {
            m: min(2.0, max(0.5, captured[m] / counts[m])) for m in modules
        }
        adjusted = {
            m: normalized_energies[m] / mean_captured[m] for m in modules
        }
        counts = _largest_remainder_allocation(adjusted, len(selected))
        assignment, _ = _mass_error_diffusion(
            selected, masses, counts, modules
        )
    mapping = ModuleMapping(assignment, num_modules=max(modules))
    mapping.validate_against(topology)
    return mapping


def uniform_mapping(
    topology: Topology,
    num_modules: int,
    nodes: Iterable[int] | None = None,
) -> ModuleMapping:
    """Equal-replication round-robin mapping (ablation baseline)."""
    selected = list(range(topology.num_nodes) if nodes is None else nodes)
    if len(selected) < num_modules:
        raise MappingError(
            f"{len(selected)} nodes cannot host {num_modules} modules"
        )
    assignment = {
        node: (index % num_modules) + 1
        for index, node in enumerate(selected)
    }
    mapping = ModuleMapping(assignment, num_modules=num_modules)
    mapping.validate_against(topology)
    return mapping
