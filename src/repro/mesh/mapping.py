"""Module-to-node mapping strategies.

A mapping assigns every *computational* node of the fabric to exactly one
application module ("Each node is an instance of exactly one module",
paper Sec 3).  External nodes (sources/sinks, controllers) carry no
module.  Three strategies are provided:

* :func:`checkerboard_mapping` — the paper's parity rule (Sec 5.2).
* :func:`proportional_mapping` — Theorem 1's optimal replication
  ``n_i* = K * H_i / sum(H)``, rounded by largest remainder and spread
  spatially by error diffusion.
* :func:`uniform_mapping` — equal replication, the natural naive
  baseline used in the mapping ablation.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from ..errors import MappingError
from .geometry import parity
from .topology import Topology


class ModuleMapping:
    """Immutable assignment of nodes to module ids.

    Args:
        assignment: Mapping from node id to module id (1-based module
            ids, following the paper's Table 1).
        num_modules: Total number of distinct modules ``p``.  Every
            module in ``1..p`` must be instantiated at least once —
            otherwise no job could ever complete.
    """

    def __init__(self, assignment: Mapping[int, int], num_modules: int):
        if num_modules < 1:
            raise MappingError(f"need >= 1 module, got {num_modules}")
        self._num_modules = int(num_modules)
        self._assignment = dict(assignment)
        for node, module in self._assignment.items():
            if not 1 <= module <= num_modules:
                raise MappingError(
                    f"node {node} mapped to module {module}, outside "
                    f"1..{num_modules}"
                )
        counts = Counter(self._assignment.values())
        missing = [m for m in range(1, num_modules + 1) if counts[m] == 0]
        if missing:
            raise MappingError(
                f"modules {missing} have no duplicates; jobs cannot complete"
            )
        self._counts = {m: counts[m] for m in range(1, num_modules + 1)}
        self._duplicates = {
            m: tuple(sorted(n for n, mod in self._assignment.items() if mod == m))
            for m in range(1, num_modules + 1)
        }

    @property
    def num_modules(self) -> int:
        """Number of distinct modules ``p``."""
        return self._num_modules

    @property
    def mapped_nodes(self) -> tuple[int, ...]:
        """All nodes that carry a module, sorted."""
        return tuple(sorted(self._assignment))

    def module_of(self, node: int) -> int | None:
        """Module id of ``node`` (None for unmapped/external nodes)."""
        return self._assignment.get(node)

    def duplicates(self, module: int) -> tuple[int, ...]:
        """The paper's ``S_i``: sorted node ids instantiating ``module``."""
        try:
            return self._duplicates[module]
        except KeyError:
            raise MappingError(
                f"module {module} outside 1..{self._num_modules}"
            ) from None

    def duplicate_counts(self) -> dict[int, int]:
        """The paper's ``n_i``: number of duplicates per module."""
        return dict(self._counts)

    def validate_against(self, topology: Topology) -> None:
        """Check that every mapped node exists in ``topology``."""
        for node in self._assignment:
            if not 0 <= node < topology.num_nodes:
                raise MappingError(
                    f"mapped node {node} does not exist in {topology!r}"
                )

    def as_dict(self) -> dict[int, int]:
        """Copy of the raw node -> module assignment."""
        return dict(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModuleMapping):
            return NotImplemented
        return (
            self._assignment == other._assignment
            and self._num_modules == other._num_modules
        )

    def __repr__(self) -> str:
        counts = ", ".join(
            f"n{m}={c}" for m, c in sorted(self._counts.items())
        )
        return f"ModuleMapping(p={self._num_modules}, {counts})"


def checkerboard_mapping(
    topology: Topology, nodes: Iterable[int] | None = None
) -> ModuleMapping:
    """The paper's parity mapping for the 3-module AES application.

    "Assuming any node with coordinates (x, y), our mapping strategy is
    to map that node to module 1 if m(x)+m(y)=2, to module 2 if
    m(x)+m(y)=0, and to module 3 if m(x)+m(y)=1 where m(x) is defined as
    x modulo 2" (Sec 5.2).  With 1-based coordinates this places module 1
    on odd/odd nodes, module 2 on even/even nodes and module 3 — the most
    energy-hungry module — on the remaining (roughly half the) nodes,
    qualitatively matching Theorem 1's proportional rule.
    """
    if topology.mesh_width is None:
        raise MappingError("checkerboard mapping requires a mesh topology")
    selected = (
        range(topology.mesh_width * (topology.mesh_height or 0))
        if nodes is None
        else nodes
    )
    assignment: dict[int, int] = {}
    for node in selected:
        x, y = topology.coordinates(node)
        parity_sum = parity(x) + parity(y)
        if parity_sum == 2:
            assignment[node] = 1
        elif parity_sum == 0:
            assignment[node] = 2
        else:
            assignment[node] = 3
    mapping = ModuleMapping(assignment, num_modules=3)
    mapping.validate_against(topology)
    return mapping


def _largest_remainder_allocation(
    weights: dict[int, float], total: int
) -> dict[int, int]:
    """Integer allocation of ``total`` slots proportional to ``weights``.

    Guarantees at least one slot per key (a module with zero duplicates
    would make jobs impossible) and exact total.
    """
    if total < len(weights):
        raise MappingError(
            f"cannot allocate {total} nodes to {len(weights)} modules "
            "(each module needs at least one duplicate)"
        )
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise MappingError("allocation weights must sum to a positive value")
    raw = {m: total * w / weight_sum for m, w in weights.items()}
    counts = {m: max(1, int(raw[m])) for m in weights}
    # Fix the total by walking the largest fractional remainders.
    while sum(counts.values()) < total:
        candidates = sorted(
            weights,
            key=lambda m: (raw[m] - counts[m]),
            reverse=True,
        )
        counts[candidates[0]] += 1
        raw[candidates[0]] -= 1.0
    while sum(counts.values()) > total:
        candidates = sorted(
            (m for m in weights if counts[m] > 1),
            key=lambda m: (raw[m] - counts[m]),
        )
        if not candidates:
            raise MappingError("cannot shrink allocation below 1 per module")
        counts[candidates[0]] -= 1
        raw[candidates[0]] += 1.0
    return counts


def proportional_mapping(
    topology: Topology,
    normalized_energies: dict[int, float],
    nodes: Iterable[int] | None = None,
) -> ModuleMapping:
    """Theorem-1 proportional mapping.

    Allocates duplicates proportionally to the normalised energies
    ``H_i`` (paper Eq 3) and spreads each module across the fabric by
    error diffusion over the node order, so duplicates of the same
    module do not clump in one corner.
    """
    selected = list(range(topology.num_nodes) if nodes is None else nodes)
    counts = _largest_remainder_allocation(normalized_energies, len(selected))
    modules = sorted(normalized_energies)
    # Error diffusion: at each node pick the module whose assigned share
    # lags most behind its target share.
    target = {
        m: counts[m] / len(selected) for m in modules
    }
    assigned = {m: 0 for m in modules}
    assignment: dict[int, int] = {}
    for index, node in enumerate(selected, start=1):
        deficits = {
            m: target[m] * index - assigned[m]
            for m in modules
            if assigned[m] < counts[m]
        }
        module = max(sorted(deficits), key=lambda m: deficits[m])
        assignment[node] = module
        assigned[module] += 1
    mapping = ModuleMapping(assignment, num_modules=max(modules))
    mapping.validate_against(topology)
    return mapping


def uniform_mapping(
    topology: Topology,
    num_modules: int,
    nodes: Iterable[int] | None = None,
) -> ModuleMapping:
    """Equal-replication round-robin mapping (ablation baseline)."""
    selected = list(range(topology.num_nodes) if nodes is None else nodes)
    if len(selected) < num_modules:
        raise MappingError(
            f"{len(selected)} nodes cannot host {num_modules} modules"
        )
    assignment = {
        node: (index % num_modules) + 1
        for index, node in enumerate(selected)
    }
    mapping = ModuleMapping(assignment, num_modules=num_modules)
    mapping.validate_against(topology)
    return mapping
