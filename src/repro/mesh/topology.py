"""Graph representation of the e-textile communication network.

A :class:`Topology` is a directed graph whose edges carry physical line
lengths in centimetres.  The routing engines consume its dense numpy
length matrix; the simulator walks its adjacency lists.  The paper's
default platform is a 2-D mesh (Sec 5.2) built by :func:`mesh2d`;
arbitrary fabrics (e.g. the smart-shirt block diagram of Fig 3a) can be
assembled edge by edge or imported from networkx.
"""

from __future__ import annotations

import numpy as np

from ..errors import TopologyError
from ..units import require_positive
from .geometry import node_coordinates, node_id

#: Default physical distance between adjacent mesh nodes, in cm.  The
#: value is derived from the paper's Table 2 (see DESIGN.md): the implied
#: per-hop packet energy of ~116.7 pJ corresponds to a 128-bit packet
#: over a ~2.045 cm textile line.
DEFAULT_LINK_PITCH_CM = 2.045


class Topology:
    """Directed graph with per-edge physical lengths.

    Nodes are dense integers ``0 .. num_nodes-1``.  Most fabrics are
    symmetric; :meth:`add_edge` therefore adds both directions by
    default, but asymmetric links (e.g. a one-way sensor feed) are
    supported.
    """

    def __init__(self, num_nodes: int, name: str = "custom"):
        if num_nodes < 1:
            raise TopologyError(f"topology needs >= 1 node, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._name = name
        self._adjacency: list[dict[int, float]] = [
            {} for _ in range(self._num_nodes)
        ]
        #: Optional physical positions (x, y) per node, used for display
        #: and for mesh coordinate lookups.
        self.positions: dict[int, tuple[float, float]] = {}
        #: For meshes: the width, kept so coordinates can be recovered.
        self.mesh_width: int | None = None
        self.mesh_height: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append one node and return its id."""
        self._adjacency.append({})
        self._num_nodes += 1
        return self._num_nodes - 1

    def add_edge(
        self,
        u: int,
        v: int,
        length_cm: float,
        bidirectional: bool = True,
    ) -> None:
        """Connect ``u -> v`` with a textile line of ``length_cm``."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop on node {u} is not allowed")
        require_positive("length_cm", length_cm)
        self._adjacency[u][v] = float(length_cm)
        if bidirectional:
            self._adjacency[v][u] = float(length_cm)

    def remove_edge(self, u: int, v: int, bidirectional: bool = True) -> None:
        """Sever the ``u -> v`` line (fault model: a cut interconnect).

        Removing an absent edge is a no-op, so repeated cuts of the same
        line are harmless.
        """
        self._check_node(u)
        self._check_node(v)
        self._adjacency[u].pop(v, None)
        if bidirectional:
            self._adjacency[v].pop(u, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def nodes(self) -> range:
        return range(self._num_nodes)

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Successor nodes of ``u`` (targets of out-edges)."""
        self._check_node(u)
        return tuple(self._adjacency[u])

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in self._adjacency[u]

    def edge_length(self, u: int, v: int) -> float:
        """Physical length in cm of the ``u -> v`` line."""
        if not self.has_edge(u, v):
            raise TopologyError(f"no edge {u} -> {v} in topology {self._name!r}")
        return self._adjacency[u][v]

    def edges(self) -> list[tuple[int, int, float]]:
        """All directed edges as ``(u, v, length_cm)`` triples."""
        return [
            (u, v, length)
            for u in self.nodes
            for v, length in self._adjacency[u].items()
        ]

    def num_undirected_edges(self) -> int:
        """Number of node pairs connected in at least one direction."""
        pairs = {frozenset((u, v)) for u, v, _ in self.edges()}
        return len(pairs)

    def coordinates(self, node: int) -> tuple[int, int]:
        """Paper-style 1-based mesh coordinates of ``node``.

        Only available on mesh topologies built by :func:`mesh2d`.
        """
        if self.mesh_width is None:
            raise TopologyError(
                f"topology {self._name!r} has no mesh coordinate system"
            )
        self._check_node(node)
        return node_coordinates(node, self.mesh_width)

    def node_position(self, node: int) -> tuple[float, float] | None:
        """Physical position of ``node``, or None when unknown.

        Explicit :attr:`positions` win; mesh topologies fall back to
        their coordinate system, arbitrary fabrics without positions
        return None (geometric fault correlation degrades gracefully to
        single-link events there).
        """
        self._check_node(node)
        if node in self.positions:
            return self.positions[node]
        if self.mesh_width is not None:
            x, y = node_coordinates(node, self.mesh_width)
            return (float(x), float(y))
        return None

    def edge_midpoint(self, u: int, v: int) -> tuple[float, float] | None:
        """Geometric midpoint of the ``u - v`` line, or None when either
        endpoint has no known position.  The spatially correlated fault
        profiles (tear, moisture) measure link-to-link distance between
        these midpoints."""
        pu = self.node_position(u)
        pv = self.node_position(v)
        if pu is None or pv is None:
            return None
        return ((pu[0] + pv[0]) / 2.0, (pu[1] + pv[1]) / 2.0)

    # ------------------------------------------------------------------
    # Matrix and interop views
    # ------------------------------------------------------------------
    def length_matrix(self) -> np.ndarray:
        """Dense ``(K, K)`` matrix of line lengths.

        Entry ``[u, v]`` is the edge length, ``inf`` for non-edges and
        0 on the diagonal — exactly the W-matrix convention of the
        paper's Sec 6.
        """
        size = self._num_nodes
        matrix = np.full((size, size), np.inf, dtype=float)
        np.fill_diagonal(matrix, 0.0)
        for u in self.nodes:
            for v, length in self._adjacency[u].items():
                matrix[u, v] = length
        return matrix

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with ``length`` edge data."""
        import networkx as nx

        graph = nx.DiGraph(name=self._name)
        graph.add_nodes_from(self.nodes)
        for u, v, length in self.edges():
            graph.add_edge(u, v, length=length)
        return graph

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise TopologyError(
                f"node {node} outside topology {self._name!r} "
                f"({self._num_nodes} nodes)"
            )

    def __repr__(self) -> str:
        return (
            f"Topology(name={self._name!r}, nodes={self._num_nodes}, "
            f"edges={self.num_undirected_edges()})"
        )


def mesh2d(
    width: int,
    height: int | None = None,
    link_pitch_cm: float = DEFAULT_LINK_PITCH_CM,
) -> Topology:
    """Build the paper's 2-D mesh network.

    Args:
        width: Nodes per row.
        height: Nodes per column (defaults to ``width``, i.e. square).
        link_pitch_cm: Physical length of each neighbour-to-neighbour
            textile line.

    Returns:
        A :class:`Topology` whose node ids follow :func:`node_id` and
        which carries mesh coordinate metadata.
    """
    if height is None:
        height = width
    if width < 1 or height < 1:
        raise TopologyError(f"mesh must be at least 1x1, got {width}x{height}")
    require_positive("link_pitch_cm", link_pitch_cm)

    topo = Topology(width * height, name=f"mesh{width}x{height}")
    topo.mesh_width = width
    topo.mesh_height = height
    for y in range(1, height + 1):
        for x in range(1, width + 1):
            node = node_id(x, y, width)
            topo.positions[node] = (float(x), float(y))
            if x < width:
                topo.add_edge(node, node_id(x + 1, y, width), link_pitch_cm)
            if y < height:
                topo.add_edge(node, node_id(x, y + 1, width), link_pitch_cm)
    return topo


def attach_external_node(
    topology: Topology,
    attach_to: int,
    link_length_cm: float,
) -> int:
    """Attach an external block (e.g. the smart shirt's sensor/actuator,
    Fig 3a) to an existing node via a dedicated textile line.

    Returns the id of the newly created external node.
    """
    new_node = topology.add_node()
    topology.add_edge(new_node, attach_to, link_length_cm)
    if topology.positions and attach_to in topology.positions:
        x, y = topology.positions[attach_to]
        topology.positions[new_node] = (x - 1.0, y - 1.0)
    return new_node
