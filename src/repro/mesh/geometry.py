"""Coordinate arithmetic for 2-D mesh networks.

The paper indexes mesh nodes by 1-based coordinates ``(x, y)`` (Fig 3b);
internally nodes are dense 0-based integer ids so numpy matrices can be
indexed directly.  This module owns the bijection between the two.
"""

from __future__ import annotations

from ..errors import TopologyError


def node_id(x: int, y: int, width: int) -> int:
    """Dense node id of mesh coordinate ``(x, y)`` (1-based, paper style).

    Ids are assigned row-major: ``(1,1) -> 0``, ``(2,1) -> 1`` ...
    """
    if width < 1:
        raise TopologyError(f"mesh width must be >= 1, got {width}")
    if x < 1 or x > width or y < 1:
        raise TopologyError(f"coordinate ({x}, {y}) outside mesh of width {width}")
    return (y - 1) * width + (x - 1)


def node_coordinates(node: int, width: int) -> tuple[int, int]:
    """Inverse of :func:`node_id`: 1-based ``(x, y)`` of a dense id."""
    if width < 1:
        raise TopologyError(f"mesh width must be >= 1, got {width}")
    if node < 0:
        raise TopologyError(f"node id must be >= 0, got {node}")
    return node % width + 1, node // width + 1


def manhattan_distance(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Hop count between two mesh coordinates (adjacent nodes are 1 apart)."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def parity(value: int) -> int:
    """The paper's ``m(x) = x modulo 2`` helper (Sec 5.2)."""
    return value % 2
