"""Network topology substrate: meshes, coordinates, mappings, connectivity.

The paper evaluates 2-D mesh networks of 4x4 .. 8x8 nodes (Sec 7) with
the AES modules mapped onto nodes by a parity (checkerboard) rule
(Sec 5.2).  This package provides the topology representation used by the
routing engines and the simulator, the paper's mapping plus the
Theorem-1-optimal and uniform alternatives, and the connectivity analysis
that decides when the "critical nodes" are dead.
"""

from .connectivity import articulation_points, reachable_set, system_is_alive
from .geometry import manhattan_distance, node_coordinates, node_id
from .mapping import (
    ModuleMapping,
    checkerboard_mapping,
    proportional_mapping,
    uniform_mapping,
)
from .topology import Topology, attach_external_node, mesh2d

__all__ = [
    "ModuleMapping",
    "Topology",
    "articulation_points",
    "attach_external_node",
    "checkerboard_mapping",
    "manhattan_distance",
    "mesh2d",
    "node_coordinates",
    "node_id",
    "proportional_mapping",
    "reachable_set",
    "system_is_alive",
    "uniform_mapping",
]
