"""Connectivity analysis over the set of live nodes.

The paper's system-death condition — "the target system dies when the
critical nodes become dead" (Sec 3) — is a reachability property: a job
at some node must still be able to reach a live duplicate of every module
it has yet to visit.  These helpers compute reachability restricted to
live nodes, plus articulation points for diagnostic tooling (module-3
nodes of the checkerboard mapping are the fabric's articulation-heavy
relay layer, which is why SDR's concentrated load is so damaging).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection

from .mapping import ModuleMapping
from .topology import Topology


def reachable_set(
    topology: Topology,
    alive: Collection[int],
    origin: int,
) -> frozenset[int]:
    """All live nodes reachable from ``origin`` through live nodes.

    ``origin`` itself must be alive to reach anything (a dead node cannot
    relay); the result always contains a live origin.
    """
    alive_set = set(alive)
    if origin not in alive_set:
        return frozenset()
    seen = {origin}
    queue = deque([origin])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors(node):
            if neighbor in alive_set and neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return frozenset(seen)


def system_is_alive(
    topology: Topology,
    alive: Collection[int],
    mapping: ModuleMapping,
    origin: int,
) -> bool:
    """The paper's liveness predicate.

    True while, starting from ``origin`` (the node currently holding the
    job, or the injection point), at least one live duplicate of *every*
    module is reachable through live nodes.
    """
    reachable = reachable_set(topology, alive, origin)
    if not reachable:
        return False
    for module in range(1, mapping.num_modules + 1):
        if not any(dup in reachable for dup in mapping.duplicates(module)):
            return False
    return True


def dead_modules(
    topology: Topology,
    alive: Collection[int],
    mapping: ModuleMapping,
    origin: int,
) -> tuple[int, ...]:
    """Modules with no live reachable duplicate (diagnostic counterpart
    of :func:`system_is_alive`)."""
    reachable = reachable_set(topology, alive, origin)
    return tuple(
        module
        for module in range(1, mapping.num_modules + 1)
        if not any(dup in reachable for dup in mapping.duplicates(module))
    )


def articulation_points(
    topology: Topology, alive: Collection[int] | None = None
) -> frozenset[int]:
    """Articulation points of the undirected live subgraph.

    Uses the classic Hopcroft–Tarjan low-link algorithm, implemented
    iteratively so deep fabrics cannot overflow the recursion limit.
    """
    alive_set = (
        set(range(topology.num_nodes)) if alive is None else set(alive)
    )
    # Build an undirected adjacency restricted to live nodes.
    neighbors: dict[int, list[int]] = {n: [] for n in alive_set}
    for u in alive_set:
        for v in topology.neighbors(u):
            if v in alive_set and topology.has_edge(u, v):
                neighbors[u].append(v)

    index = {}
    low = {}
    parent: dict[int, int | None] = {}
    result: set[int] = set()
    counter = 0

    for root in sorted(alive_set):
        if root in index:
            continue
        parent[root] = None
        stack: list[tuple[int, int]] = [(root, 0)]
        index[root] = low[root] = counter
        counter += 1
        root_children = 0
        while stack:
            node, edge_pos = stack[-1]
            if edge_pos < len(neighbors[node]):
                stack[-1] = (node, edge_pos + 1)
                child = neighbors[node][edge_pos]
                if child == parent[node]:
                    continue
                if child in index:
                    low[node] = min(low[node], index[child])
                else:
                    parent[child] = node
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append((child, 0))
                    if node == root:
                        root_children += 1
            else:
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
                    if above != root and low[node] >= index[above]:
                        result.add(above)
        if root_children > 1:
            result.add(root)
    return frozenset(result)
