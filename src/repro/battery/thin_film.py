"""Discrete-time Li-free thin-film battery model.

Implements the battery behaviour the paper feeds into et_sim (Sec 5.1.3):
the discharge characteristic of a Li-free thin-film cell (Fig 2, after
Neudecker et al. [10]) combined with a discrete-time model in the style
of Benini et al. [8].  The model tracks:

* **Open-circuit voltage** from the digitised discharge profile as a
  function of depth of discharge (DoD).
* **Smoothed load current** — an exponential moving average of drawn
  power over a configurable window, converted to current through the
  present voltage.  This captures *duty cycle*: a node hammered by the
  router sustains a much higher average current than one that shares
  load with its duplicates.
* **IR sag** — the loaded output voltage is ``V_oc(DoD) - I_ema * R``.
  Thin-film micro-batteries have internal resistances in the tens of
  kilo-ohms, so concentrated load depresses the output voltage
  substantially.
* **Rate-capacity effect** — delivering energy at high smoothed current
  removes extra charge from the store
  (``penalty = 1 + k * (I/I_ref)^a``), the discrete-time analogue of the
  Peukert/rate-capacity behaviour of [8].
* **Permanent death** — once the loaded voltage falls below the 3.0 V
  threshold the node is dead and "the remaining energy stored in the
  attached battery is wasted" (Sec 5.1.3).  An optional recovery mode
  (used only by the ablation benches) restricts death to open-circuit
  exhaustion so the contribution of rate-induced early death can be
  isolated.

The paper reports its discrete-time approximation as accurate within
15 % of the continuous-time circuit model while noting that real cell
capacity varies by up to 20 % between identical units — the calibration
philosophy here follows suit: shapes are faithful, absolute constants
are explicit, documented parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import require_non_negative, require_positive
from .base import Battery, DrawResult
from .profile import LI_FREE_THIN_FILM_PROFILE, DischargeProfile

#: Paper default: nominal capacity shrunk to 60 000 pJ (Sec 5.1.3).
DEFAULT_CAPACITY_PJ = 60_000.0

#: Paper default: node dead below 3.0 V (Sec 5.1.3).
DEFAULT_CUTOFF_VOLTAGE = 3.0


@dataclass(frozen=True)
class ThinFilmParameters:
    """Electrical parameters of the thin-film cell model.

    Attributes:
        capacity_pj: Nominal energy capacity (paper: 60 000 pJ).
        cutoff_voltage: Loaded voltage below which the node dies
            (paper: 3.0 V).
        internal_resistance_ohm: Series resistance producing IR sag under
            the smoothed load current.  Thin-film cells are high-impedance
            devices; the default is calibrated so a node monopolised by
            the router sags a few hundred millivolts.
        ema_window_cycles: Time constant (in clock cycles) of the
            exponential moving average of drawn power — the "time step"
            of the discrete-time model.  Chosen on the order of one job
            so the average reflects per-job duty cycle.
        rate_penalty_coeff: Strength ``k`` of the rate-capacity penalty.
        rate_penalty_exponent: Exponent ``a`` of the penalty term.
        reference_current_ma: Current ``I_ref`` at which the penalty term
            reaches ``1 + k``.
        allow_recovery: When True, dips of the *loaded* voltage below the
            cut-off do not kill the cell; only open-circuit depletion
            does.  Default False, matching the paper's permanent death.
    """

    capacity_pj: float = DEFAULT_CAPACITY_PJ
    cutoff_voltage: float = DEFAULT_CUTOFF_VOLTAGE
    internal_resistance_ohm: float = 40_000.0
    ema_window_cycles: float = 8_000.0
    rate_penalty_coeff: float = 0.5
    rate_penalty_exponent: float = 2.0
    reference_current_ma: float = 0.02
    allow_recovery: bool = False
    profile: DischargeProfile = field(default=LI_FREE_THIN_FILM_PROFILE)

    def __post_init__(self) -> None:
        require_positive("capacity_pj", self.capacity_pj)
        require_positive("cutoff_voltage", self.cutoff_voltage)
        require_non_negative(
            "internal_resistance_ohm", self.internal_resistance_ohm
        )
        require_positive("ema_window_cycles", self.ema_window_cycles)
        require_non_negative("rate_penalty_coeff", self.rate_penalty_coeff)
        require_positive("rate_penalty_exponent", self.rate_penalty_exponent)
        require_positive("reference_current_ma", self.reference_current_ma)
        if self.cutoff_voltage >= self.profile.full_voltage:
            raise ConfigurationError(
                "cutoff voltage must be below the fresh-cell voltage "
                f"({self.cutoff_voltage} >= {self.profile.full_voltage})"
            )


#: Conversion factor: 1 pJ/cycle at a 100 MHz clock equals 0.1 mW.
_PJ_PER_CYCLE_TO_MW = 0.1


class ThinFilmBattery(Battery):
    """Stateful thin-film cell following :class:`ThinFilmParameters`."""

    def __init__(self, params: ThinFilmParameters | None = None):
        self._p = params if params is not None else ThinFilmParameters()
        self._consumed = 0.0       # charge removed from the store (pJ)
        self._delivered = 0.0      # energy handed to the load (pJ)
        self._recharged = 0.0      # harvested charge accepted (pJ)
        self._ema_power = 0.0      # smoothed drawn power (pJ/cycle)
        self._alive = True

    # ------------------------------------------------------------------
    # Battery interface
    # ------------------------------------------------------------------
    @property
    def parameters(self) -> ThinFilmParameters:
        """The (immutable) electrical parameters of this cell."""
        return self._p

    @property
    def nominal_capacity_pj(self) -> float:
        return self._p.capacity_pj

    @property
    def delivered_pj(self) -> float:
        return self._delivered

    @property
    def consumed_pj(self) -> float:
        return self._consumed

    @property
    def recharged_pj(self) -> float:
        return self._recharged

    @property
    def loss_pj(self) -> float:
        """Charge lost to the rate-capacity effect so far.

        Recharge rolls :attr:`consumed_pj` back (the DoD rollback), so
        the accepted harvest is added back here to keep the loss a
        monotone gross quantity: ``gross removed = delivered + loss``.
        """
        return self._consumed + self._recharged - self._delivered

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def depth_of_discharge(self) -> float:
        """Consumed fraction of nominal capacity, in [0, 1]."""
        return min(1.0, self._consumed / self._p.capacity_pj)

    @property
    def state_of_charge(self) -> float:
        return 1.0 - self.depth_of_discharge

    @property
    def open_circuit_voltage(self) -> float:
        """Voltage of the cell with the load removed."""
        return self._p.profile.voltage_at(self.depth_of_discharge)

    def _current_ma(self, ocv: float) -> float:
        """Smoothed load current at a known open-circuit voltage."""
        if ocv <= 0:
            return 0.0
        return self._ema_power * _PJ_PER_CYCLE_TO_MW / ocv

    def _loaded_voltage(self, ocv: float) -> float:
        """IR-sagged output voltage at a known open-circuit voltage."""
        sag = self._current_ma(ocv) * self._p.internal_resistance_ohm / 1e3
        return max(0.0, ocv - sag)

    @property
    def smoothed_current_ma(self) -> float:
        """Exponentially averaged load current in mA."""
        return self._current_ma(self.open_circuit_voltage)

    @property
    def voltage(self) -> float:
        """Loaded output voltage ``V_oc - I_ema * R`` (0 when dead)."""
        if not self._alive:
            return 0.0
        return self._loaded_voltage(self.open_circuit_voltage)

    # ------------------------------------------------------------------
    # Discrete-time dynamics
    # ------------------------------------------------------------------
    def _update_ema(self, power_pj_per_cycle: float, duration_cycles: float) -> None:
        alpha = 1.0 - math.exp(-duration_cycles / self._p.ema_window_cycles)
        self._ema_power += alpha * (power_pj_per_cycle - self._ema_power)

    def draw(self, energy_pj: float, duration_cycles: float) -> DrawResult:
        self._guard_alive()
        if energy_pj < 0:
            raise ConfigurationError(f"cannot draw negative energy {energy_pj}")
        if duration_cycles <= 0:
            raise ConfigurationError(
                f"draw duration must be positive, got {duration_cycles}"
            )
        if energy_pj == 0:
            return DrawResult(0.0, 0.0, died=False, voltage=self.voltage)

        self._update_ema(energy_pj / duration_cycles, duration_cycles)
        # Evaluate the discharge curve once per state: the pre-draw OCV
        # feeds the rate penalty, the post-draw OCV feeds sag and death.
        ocv_before = self.open_circuit_voltage
        ratio = self._current_ma(ocv_before) / self._p.reference_current_ma
        penalty = (
            1.0
            + self._p.rate_penalty_coeff
            * ratio ** self._p.rate_penalty_exponent
        )
        charge_needed = energy_pj * penalty
        available = self._p.capacity_pj - self._consumed

        exhausted = charge_needed >= available - 1e-9
        if exhausted:
            delivered = max(0.0, available / penalty)
            self._consumed = self._p.capacity_pj
        else:
            delivered = energy_pj
            self._consumed += charge_needed
        self._delivered += delivered

        ocv_after = self.open_circuit_voltage
        loaded_voltage = self._loaded_voltage(ocv_after)
        voltage_death = (
            not self._p.allow_recovery
            and loaded_voltage < self._p.cutoff_voltage
        )
        ocv_death = ocv_after < self._p.cutoff_voltage
        died = exhausted or voltage_death or ocv_death
        if died:
            self._alive = False
        return DrawResult(
            requested_pj=energy_pj,
            delivered_pj=delivered,
            died=died,
            voltage=loaded_voltage,
        )

    def recharge(self, energy_pj: float) -> float:
        """Accept harvested charge by rolling the depth of discharge back.

        The accepted amount is capped by the present DoD (the store
        never exceeds nominal capacity) and a dead cell rejects
        everything — neither voltage death nor exhaustion is reversible
        (Sec 5.1.3's death is permanent).  Rolling ``consumed`` back
        raises the open-circuit voltage for subsequent draws, which is
        exactly how a refilled thin-film cell behaves.
        """
        if energy_pj < 0:
            raise ConfigurationError(
                f"cannot recharge negative energy {energy_pj}"
            )
        if not self._alive:
            return 0.0
        accepted = min(energy_pj, max(0.0, self._consumed))
        self._consumed -= accepted
        self._recharged += accepted
        return accepted

    def rest(self, duration_cycles: float) -> None:
        if duration_cycles < 0:
            raise ConfigurationError(
                f"rest duration must be non-negative, got {duration_cycles}"
            )
        if duration_cycles == 0:
            return
        self._ema_power *= math.exp(
            -duration_cycles / self._p.ema_window_cycles
        )
