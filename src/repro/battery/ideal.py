"""The ideal battery model.

Used by the paper for the Table 2 comparison against Theorem 1: "the
battery model of the Li-free thin-film battery is replaced with the ideal
battery model which outputs constant voltage with 100 % efficiency until
depletion" (Sec 7.2).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import require_positive
from .base import Battery, DrawResult

#: Default nominal capacity from the paper (Sec 5.1.3).
DEFAULT_CAPACITY_PJ = 60_000.0

#: Output voltage of the ideal cell; the value itself never affects the
#: energy accounting (100 % efficiency), it only needs to stay above the
#: 3.0 V death threshold until depletion.
DEFAULT_VOLTAGE = 3.6


class IdealBattery(Battery):
    """Constant-voltage, 100 %-efficient energy store.

    Delivers exactly the requested energy until the store is exhausted;
    the draw that empties the store delivers the remaining energy and
    kills the cell, so no energy is ever wasted.
    """

    def __init__(
        self,
        capacity_pj: float = DEFAULT_CAPACITY_PJ,
        voltage: float = DEFAULT_VOLTAGE,
    ):
        require_positive("capacity_pj", capacity_pj)
        require_positive("voltage", voltage)
        self._capacity = float(capacity_pj)
        self._voltage = float(voltage)
        self._delivered = 0.0
        self._recharged = 0.0
        self._alive = True

    @property
    def nominal_capacity_pj(self) -> float:
        return self._capacity

    @property
    def delivered_pj(self) -> float:
        return self._delivered

    @property
    def recharged_pj(self) -> float:
        return self._recharged

    @property
    def consumed_pj(self) -> float:
        """Net charge removed from the store (delivered minus refilled)."""
        return self._delivered - self._recharged

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def voltage(self) -> float:
        return self._voltage if self._alive else 0.0

    @property
    def state_of_charge(self) -> float:
        return min(1.0, max(0.0, 1.0 - self.consumed_pj / self._capacity))

    def draw(self, energy_pj: float, duration_cycles: float) -> DrawResult:
        self._guard_alive()
        if energy_pj < 0:
            raise ConfigurationError(f"cannot draw negative energy {energy_pj}")
        if duration_cycles <= 0:
            raise ConfigurationError(
                f"draw duration must be positive, got {duration_cycles}"
            )
        available = self._capacity - self.consumed_pj
        delivered = min(energy_pj, available)
        self._delivered += delivered
        died = self.consumed_pj >= self._capacity - 1e-9
        if died:
            self._alive = False
        return DrawResult(
            requested_pj=energy_pj,
            delivered_pj=delivered,
            died=died,
            voltage=self._voltage,
        )

    def recharge(self, energy_pj: float) -> float:
        """Accept harvested charge (100 % efficiency, capped at nominal).

        The accepted amount never exceeds the charge already removed,
        so the store never holds more than its nominal capacity; a dead
        cell rejects everything.
        """
        if energy_pj < 0:
            raise ConfigurationError(
                f"cannot recharge negative energy {energy_pj}"
            )
        if not self._alive:
            return 0.0
        # The headroom can carry float dust (delivered and recharged
        # accumulate separately); clamp so a full cell accepts exactly 0.
        accepted = min(energy_pj, max(0.0, self.consumed_pj))
        self._recharged += accepted
        return accepted

    def rest(self, duration_cycles: float) -> None:
        """No-op: an ideal cell has no load-history state."""
        if duration_cycles < 0:
            raise ConfigurationError(
                f"rest duration must be non-negative, got {duration_cycles}"
            )
