"""Abstract battery interface shared by all battery models."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import BatteryError, ConfigurationError


@dataclass(frozen=True)
class DrawResult:
    """Outcome of one energy draw from a battery.

    Attributes:
        requested_pj: Energy the load asked for.
        delivered_pj: Energy actually delivered (< requested only on the
            draw that kills the battery).
        died: True when this draw depleted the battery (or pushed the
            loaded voltage below the cut-off threshold).
        voltage: Loaded output voltage observed during the draw.
    """

    requested_pj: float
    delivered_pj: float
    died: bool
    voltage: float

    @property
    def complete(self) -> bool:
        """True when the full requested energy was delivered."""
        return self.delivered_pj >= self.requested_pj - 1e-9


class Battery(abc.ABC):
    """Common interface of the ideal and thin-film battery models.

    All energies are in pJ and all durations in clock cycles (see
    :mod:`repro.units`).  A battery starts alive and dies permanently:
    the paper treats a node whose battery output drops below 3.0 V as
    dead, with any remaining stored energy wasted (Sec 5.1.3).
    """

    @property
    @abc.abstractmethod
    def nominal_capacity_pj(self) -> float:
        """Initial (nominal) energy capacity in pJ."""

    @property
    @abc.abstractmethod
    def delivered_pj(self) -> float:
        """Total energy delivered to the load so far."""

    @property
    @abc.abstractmethod
    def alive(self) -> bool:
        """False once the battery has died (permanently)."""

    @property
    @abc.abstractmethod
    def voltage(self) -> float:
        """Present output voltage (loaded, using the smoothed current)."""

    @property
    @abc.abstractmethod
    def state_of_charge(self) -> float:
        """Remaining usable fraction of nominal capacity, in [0, 1]."""

    @abc.abstractmethod
    def draw(self, energy_pj: float, duration_cycles: float) -> DrawResult:
        """Draw ``energy_pj`` over ``duration_cycles`` from the cell.

        Returns a :class:`DrawResult`; raises :class:`BatteryError` if
        called on a dead battery (which would indicate a simulator bug —
        the engine must check :attr:`alive` first).
        """

    @abc.abstractmethod
    def rest(self, duration_cycles: float) -> None:
        """Let the battery idle for ``duration_cycles`` (relaxes the load
        average; never revives a dead cell)."""

    def recharge(self, energy_pj: float) -> float:
        """Accept up to ``energy_pj`` of harvested charge into the store.

        Returns the energy actually accepted: capped at the nominal
        capacity (a full cell accepts nothing) and 0 for a dead cell —
        recharge never revives a battery, matching the paper's
        permanent-death semantics.  The base implementation models a
        cell without a charge path (accepts nothing); the ideal and
        thin-film models override it.
        """
        if energy_pj < 0:
            raise ConfigurationError(
                f"cannot recharge negative energy {energy_pj}"
            )
        return 0.0

    @property
    def recharged_pj(self) -> float:
        """Total harvested energy accepted into the store so far."""
        return 0.0

    @property
    def wasted_pj(self) -> float:
        """Energy stranded in the cell (everything put in minus
        everything drawn out).

        For a dead battery this is the paper's "remaining energy stored
        in the attached battery is wasted"; for a living one it is the
        energy still available.  Models account recharge inside
        :attr:`consumed_pj` (the ideal cell nets it off, the thin-film
        cell rolls its depth of discharge back), so this is always the
        true remaining store.
        """
        return max(0.0, self.nominal_capacity_pj - self.consumed_pj)

    @property
    def consumed_pj(self) -> float:
        """Energy removed from the store (delivered plus conversion loss).

        Models default to lossless delivery; the thin-film model
        overrides this to include its rate-capacity penalty.
        """
        return self.delivered_pj

    def _guard_alive(self) -> None:
        if not self.alive:
            raise BatteryError("cannot draw from a dead battery")
