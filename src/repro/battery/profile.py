"""Discharge voltage profiles ``V_oc(DoD)``.

The paper's Fig 2 reproduces the discharge curve of a Li-free thin-film
battery from Neudecker et al. [10] and states that the nominal capacity
is shrunk to 60 000 pJ with the voltage profile compressed horizontally
in proportion (Sec 5.1.3).  Only the *shape* of the curve enters the
model, expressed here as open-circuit voltage versus depth of discharge
(DoD, the consumed fraction of nominal capacity).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DischargeProfile:
    """Piecewise-linear open-circuit voltage curve.

    Args:
        points: Sequence of ``(dod, voltage)`` pairs with ``dod`` rising
            from 0.0 to 1.0 and voltage non-increasing.
        name: Label used in reports.
    """

    points: tuple[tuple[float, float], ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigurationError("a discharge profile needs >= 2 points")
        dods = [p[0] for p in self.points]
        volts = [p[1] for p in self.points]
        if abs(dods[0]) > 1e-12 or abs(dods[-1] - 1.0) > 1e-12:
            raise ConfigurationError(
                "discharge profile must span DoD 0.0 .. 1.0, got "
                f"{dods[0]} .. {dods[-1]}"
            )
        if any(b <= a for a, b in zip(dods, dods[1:])):
            raise ConfigurationError("profile DoD values must strictly increase")
        if any(b > a + 1e-12 for a, b in zip(volts, volts[1:])):
            raise ConfigurationError("profile voltage must be non-increasing")
        if volts[-1] < 0:
            raise ConfigurationError("profile voltage must be non-negative")
        # voltage_at sits on the simulator's per-draw hot path; keep the
        # knot abscissae ready instead of rebuilding them every call.
        # (object.__setattr__ because the dataclass is frozen; the cache
        # is not a field, so equality/serialisation are unaffected.)
        object.__setattr__(self, "_dods", tuple(dods))

    @property
    def full_voltage(self) -> float:
        """Open-circuit voltage of a fresh cell."""
        return self.points[0][1]

    @property
    def empty_voltage(self) -> float:
        """Open-circuit voltage of a fully discharged cell."""
        return self.points[-1][1]

    def voltage_at(self, dod: float) -> float:
        """Open-circuit voltage at depth of discharge ``dod``.

        Values outside [0, 1] are clamped, which keeps the battery model
        robust against floating-point overshoot on the final draw.
        """
        if dod <= 0.0:
            return self.full_voltage
        if dod >= 1.0:
            return self.empty_voltage
        idx = bisect.bisect_right(self._dods, dod)
        (d0, v0), (d1, v1) = self.points[idx - 1], self.points[idx]
        frac = (dod - d0) / (d1 - d0)
        return v0 + frac * (v1 - v0)

    def dod_at_voltage(self, voltage: float) -> float:
        """Smallest DoD at which the open-circuit voltage falls to
        ``voltage`` (inverse of :meth:`voltage_at` on the non-increasing
        curve).  Returns 0.0 if the cell starts below ``voltage`` and 1.0
        if it never drops that low.
        """
        if voltage >= self.full_voltage:
            return 0.0
        if voltage < self.empty_voltage:
            return 1.0
        for (d0, v0), (d1, v1) in zip(self.points, self.points[1:]):
            if v1 <= voltage <= v0:
                if abs(v0 - v1) < 1e-12:
                    return d0
                frac = (v0 - voltage) / (v0 - v1)
                return d0 + frac * (d1 - d0)
        return 1.0

    def usable_fraction(self, cutoff_voltage: float) -> float:
        """Fraction of nominal capacity available above a voltage cut-off
        under zero load (no IR sag)."""
        return self.dod_at_voltage(cutoff_voltage)


#: Digitised shape of the Li-free thin-film cell discharge curve
#: (paper Fig 2, after Neudecker, Dudney and Bates [10]): a fresh cell
#: near 4.17 V, a long sloping plateau through ~3.6 V, and a knee that
#: crosses the paper's 3.0 V death threshold shortly before exhaustion.
LI_FREE_THIN_FILM_PROFILE = DischargeProfile(
    points=(
        (0.00, 4.17),
        (0.03, 3.98),
        (0.10, 3.85),
        (0.25, 3.74),
        (0.45, 3.65),
        (0.60, 3.58),
        (0.75, 3.48),
        (0.85, 3.38),
        (0.92, 3.22),
        (0.955, 3.02),
        (0.975, 2.80),
        (1.00, 2.50),
    ),
    name="li-free-thin-film",
)

#: Idealised flat profile used by the ideal battery model: constant
#: voltage until the store is empty.
CONSTANT_PROFILE = DischargeProfile(
    points=((0.0, 3.6), (1.0, 3.6)),
    name="constant-3.6V",
)
