"""Quantised battery-level reporting.

The EAR weighting function consumes a *reported battery level*
``N_B(j)`` with ``0 <= N_B(j) < N_B`` (paper Sec 6) — an integer that the
node uploads to the central controller during its TDMA slot.  The
quantiser maps a battery's state of charge onto that integer scale and
the tracker detects level changes, which is what triggers both an upload
and, at the controller, a routing recomputation ("when the currently
reported system information differs from the previous one").
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from .base import Battery

#: Default number of quantisation levels (3 bits of status payload).
DEFAULT_LEVELS = 8


class BatteryLevelQuantizer:
    """Maps state of charge onto ``levels`` discrete report values."""

    def __init__(self, levels: int = DEFAULT_LEVELS):
        if levels < 2:
            raise ConfigurationError(
                f"need at least 2 battery levels, got {levels}"
            )
        self._levels = int(levels)

    @property
    def levels(self) -> int:
        """The number of quantisation levels ``N_B``."""
        return self._levels

    @property
    def bits(self) -> int:
        """Bits needed to encode one level report."""
        return max(1, math.ceil(math.log2(self._levels)))

    def level_of_fraction(self, state_of_charge: float) -> int:
        """Quantise a state-of-charge fraction in [0, 1].

        A full battery reports ``levels - 1``; a dead or empty battery
        reports 0.  The mapping is ``floor(soc * levels)`` clamped to the
        valid range, so each level covers an equal SoC band.
        """
        if state_of_charge <= 0.0:
            return 0
        level = int(state_of_charge * self._levels)
        return min(self._levels - 1, level)

    def level_of(self, battery: Battery) -> int:
        """Quantise a battery object (0 if the battery is dead)."""
        if not battery.alive:
            return 0
        return self.level_of_fraction(battery.state_of_charge)


class LevelTracker:
    """Remembers the last reported level per node and flags changes.

    The controller's view is refreshed only when a node's quantised level
    changes (or the node dies), which is exactly the condition the paper
    uses to re-run the routing algorithm.
    """

    def __init__(self, quantizer: BatteryLevelQuantizer):
        self._quantizer = quantizer
        self._last: dict[int, int] = {}
        self._alive: dict[int, bool] = {}

    @property
    def quantizer(self) -> BatteryLevelQuantizer:
        return self._quantizer

    def observe(self, node: int, battery: Battery) -> bool:
        """Record the node's current level; return True if it changed."""
        level = self._quantizer.level_of(battery)
        alive = battery.alive
        changed = (
            self._last.get(node) != level or self._alive.get(node) != alive
        )
        self._last[node] = level
        self._alive[node] = alive
        return changed

    def level(self, node: int) -> int:
        """Last recorded level of ``node`` (0 if never observed)."""
        return self._last.get(node, 0)

    def snapshot(self) -> dict[int, int]:
        """Copy of all recorded levels."""
        return dict(self._last)
