"""Battery substrate for the e-textile platform.

The paper attaches a Li-free thin-film battery [10] to every node and
models it with a discrete-time approximation in the style of Benini et
al. [8] (Sec 5.1.3).  Two battery models are provided:

* :class:`~repro.battery.ideal.IdealBattery` — constant output voltage,
  100 % conversion efficiency until depletion.  The paper switches to
  this model for the Table 2 comparison against the analytical bound.
* :class:`~repro.battery.thin_film.ThinFilmBattery` — open-circuit
  voltage follows a digitised discharge profile (the paper's Fig 2),
  load current is smoothed with an exponential moving average, the
  loaded voltage sags across an internal resistance, delivery incurs a
  rate-capacity penalty, and the cell dies permanently once the loaded
  voltage drops below the 3.0 V threshold — wasting whatever energy
  remains, exactly as the paper specifies.

:class:`~repro.battery.monitor.BatteryLevelQuantizer` produces the
quantised battery levels ``N_B(j)`` that nodes report to the central
controller and that the EAR weighting function consumes.
"""

from .base import Battery, DrawResult
from .ideal import IdealBattery
from .monitor import BatteryLevelQuantizer
from .profile import LI_FREE_THIN_FILM_PROFILE, DischargeProfile
from .thin_film import ThinFilmBattery, ThinFilmParameters

__all__ = [
    "Battery",
    "BatteryLevelQuantizer",
    "DischargeProfile",
    "DrawResult",
    "IdealBattery",
    "LI_FREE_THIN_FILM_PROFILE",
    "ThinFilmBattery",
    "ThinFilmParameters",
]
