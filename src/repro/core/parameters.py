"""Application/architecture parameters (the paper's Table 1).

An :class:`ApplicationProfile` carries, per module ``i``:

* ``f_i`` — operations per completed job,
* ``E_i`` — computation energy per operation (pJ),
* ``c_i`` — communication energy per act of communication (pJ),

and derives the *normalised energy consumption*
``H_i = f_i * (E_i + c_i)`` that drives both Theorem 1 and the
proportional mapping.  Profiles are plain data so alternative
applications can be described without touching the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aes.dataflow import operations_per_module
from ..aes.energy import AES_MODULE_ENERGIES_PJ
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ApplicationProfile:
    """Data-flow and energy description of one distributed application.

    Attributes:
        name: Human-readable application name.
        operations: ``f_i`` per module id.
        computation_energy_pj: ``E_i`` per module id.
        communication_energy_pj: ``c_i`` per module id.
    """

    name: str
    operations: dict[int, int] = field(default_factory=dict)
    computation_energy_pj: dict[int, float] = field(default_factory=dict)
    communication_energy_pj: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        modules = set(self.operations)
        if not modules:
            raise ConfigurationError("profile needs at least one module")
        if modules != set(self.computation_energy_pj) or modules != set(
            self.communication_energy_pj
        ):
            raise ConfigurationError(
                "operations, computation and communication energies must "
                "cover the same module ids"
            )
        if sorted(modules) != list(range(1, len(modules) + 1)):
            raise ConfigurationError(
                f"module ids must be 1..p, got {sorted(modules)}"
            )
        for module in modules:
            if self.operations[module] <= 0:
                raise ConfigurationError(
                    f"module {module} must run >= 1 operation per job"
                )
            if self.computation_energy_pj[module] < 0:
                raise ConfigurationError(
                    f"module {module} has negative computation energy"
                )
            if self.communication_energy_pj[module] < 0:
                raise ConfigurationError(
                    f"module {module} has negative communication energy"
                )

    # ------------------------------------------------------------------
    @property
    def num_modules(self) -> int:
        """The paper's ``p``."""
        return len(self.operations)

    @property
    def modules(self) -> tuple[int, ...]:
        """Module ids in id order."""
        return tuple(sorted(self.operations))

    def normalized_energy(self, module: int) -> float:
        """``H_i = f_i * (E_i + c_i)`` (paper Table 1)."""
        try:
            return self.operations[module] * (
                self.computation_energy_pj[module]
                + self.communication_energy_pj[module]
            )
        except KeyError:
            raise ConfigurationError(
                f"unknown module {module} in profile {self.name!r}"
            ) from None

    def normalized_energies(self) -> dict[int, float]:
        """``H_i`` for every module."""
        return {m: self.normalized_energy(m) for m in self.modules}

    @property
    def total_normalized_energy(self) -> float:
        """``sum_i H_i`` — the denominator of Theorem 1."""
        return sum(self.normalized_energies().values())

    @property
    def operations_per_job(self) -> int:
        """``sum_i f_i`` — total operations in one job."""
        return sum(self.operations.values())

    # ------------------------------------------------------------------
    @classmethod
    def aes128(cls, communication_energy_pj: float) -> "ApplicationProfile":
        """The paper's AES-128 profile with a uniform per-hop energy.

        All three AES modules exchange the same fixed-size packet over
        the same fabric, so ``c_i`` is uniform; the value normally comes
        from :class:`repro.link.LinkEnergyModel` evaluated at the mesh
        link pitch (~116.7 pJ under the calibrated defaults).
        """
        if communication_energy_pj < 0:
            raise ConfigurationError(
                "communication energy must be non-negative, got "
                f"{communication_energy_pj}"
            )
        f = operations_per_module()
        return cls(
            name="aes-128",
            operations=f,
            computation_energy_pj=dict(AES_MODULE_ENERGIES_PJ),
            communication_energy_pj={
                m: float(communication_energy_pj) for m in f
            },
        )
