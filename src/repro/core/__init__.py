"""The paper's core contribution: the routing problem, EAR/SDR, Theorem 1.

Three-phase online routing (paper Sec 6):

1. **Phase 1** — assign a weight to every directed interconnect:
   ``W^(SDR) = L_ij`` for the shortest-distance baseline,
   ``W^(EAR) = f(N_B(j)) * L_ij`` for the energy-aware algorithm, where
   ``f`` is a decreasing function of the reported battery level.
2. **Phase 2** — all-pairs shortest paths *and successors* via a
   Floyd–Warshall variant (paper Fig 5).
3. **Phase 3** — pick, for every node and every module type, the
   duplicate with the least (weighted) distance, avoiding ports that are
   currently deadlocked (paper Fig 6).

The analytical side (paper Sec 4) is :mod:`repro.core.upper_bound`:
Theorem 1's closed-form bound ``J* = B*K / sum(H_i)`` and optimal
replication ``n_i* = K * H_i / sum(H)``, cross-checked by a brute-force
optimiser of the underlying max-min program.
"""

from .costs import (
    BatteryTerm,
    CongestionTerm,
    CostPipeline,
    CostTerm,
    HarvestTerm,
    WearTerm,
)
from .engines import (
    EnergyAwareRouting,
    RoutingEngine,
    ShortestDistanceRouting,
    routing_engine,
)
from .floyd_warshall import (
    equal_cost_successors,
    extract_path,
    floyd_warshall_successors,
    reference_floyd_warshall,
)
from .parameters import ApplicationProfile
from .phase3 import EcmpSelector, RoutingPlan, select_destinations
from .upper_bound import UpperBoundResult, optimize_duplicates, theorem1
from .view import NetworkView
from .weights import (
    BatteryWeightFunction,
    CongestionWeightFunction,
    ear_weight_matrix,
    sdr_weight_matrix,
)

__all__ = [
    "ApplicationProfile",
    "BatteryTerm",
    "BatteryWeightFunction",
    "CongestionTerm",
    "CongestionWeightFunction",
    "CostPipeline",
    "CostTerm",
    "EcmpSelector",
    "EnergyAwareRouting",
    "HarvestTerm",
    "NetworkView",
    "RoutingEngine",
    "RoutingPlan",
    "ShortestDistanceRouting",
    "UpperBoundResult",
    "WearTerm",
    "ear_weight_matrix",
    "equal_cost_successors",
    "extract_path",
    "floyd_warshall_successors",
    "optimize_duplicates",
    "reference_floyd_warshall",
    "routing_engine",
    "sdr_weight_matrix",
    "select_destinations",
    "theorem1",
]
