"""Quantised per-link level tracking shared by wear and congestion.

Two telemetry subsystems quantise a per-link scalar into discrete
levels and report changes to the controller on level crossings: the
fault runtime (traversal wear) and the congestion runtime (smoothed
utilisation).  Both need the same bookkeeping — a sparse canonical-pair
-> level map, a dirty flag that flips only on genuine level changes,
and a dense symmetric matrix view for the
:class:`~repro.core.view.NetworkView` — which this store provides once
instead of twice.

Sparsity matters: on a K-node mesh only O(K) links ever carry traffic,
so the map stays small while the dense matrix is materialised only at
report time (once per level crossing, not per packet).
"""

from __future__ import annotations

import numpy as np


class LinkLevelStore:
    """Sparse map of canonical link pairs to positive quantised levels.

    Level 0 is the implicit default and is never stored; a transition
    back to 0 removes the entry.  :attr:`dirty` flips True whenever any
    pair's stored level actually changes — the report trigger — and is
    reset by the consumer after pushing a fresh picture upstream (the
    same discipline as battery-level reports).
    """

    def __init__(self) -> None:
        self._levels: dict[tuple[int, int], int] = {}
        self.dirty = False

    @staticmethod
    def canonical(u: int, v: int) -> tuple[int, int]:
        """The undirected pair key: ``(min, max)``."""
        return (u, v) if u < v else (v, u)

    def level(self, pair: tuple[int, int]) -> int:
        """Current level of a canonical pair (0 when unstored)."""
        return self._levels.get(pair, 0)

    def set_level(self, pair: tuple[int, int], level: int) -> bool:
        """Record a pair's level; returns True (and dirties) on change."""
        if level == self._levels.get(pair, 0):
            return False
        if level:
            self._levels[pair] = level
        else:
            self._levels.pop(pair, None)
        self.dirty = True
        return True

    def clear(self, pair: tuple[int, int]) -> bool:
        """Drop a pair's level; returns True (and dirties) if it was set."""
        if self._levels.pop(pair, None) is None:
            return False
        self.dirty = True
        return True

    def matrix(self, num_nodes: int) -> np.ndarray:
        """Dense symmetric ``(K, K)`` int matrix of current levels."""
        matrix = np.zeros((num_nodes, num_nodes), dtype=np.int64)
        for (u, v), level in self._levels.items():
            matrix[u, v] = level
            matrix[v, u] = level
        return matrix

    def max_level(self) -> int:
        """Largest stored level (0 when every link is at the default)."""
        return max(self._levels.values(), default=0)

    def snapshot(self) -> dict[tuple[int, int], int]:
        """Copy of the sparse nonzero-level map (telemetry probes)."""
        return dict(self._levels)

    def __len__(self) -> int:
        return len(self._levels)

    def __bool__(self) -> bool:
        return True
