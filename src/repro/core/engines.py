"""The EAR and SDR routing engines.

"For a fair comparison, the proposed energy-aware routing strategy and
its non-energy-aware counterpart are kept exactly the same except their
routing algorithms" (paper Sec 5) — accordingly both engines share
phases 2 and 3 verbatim and differ *only* in the phase 1 weight matrix,
which both now obtain from a :class:`~repro.core.costs.CostPipeline`
(empty for SDR, battery/wear/harvest/congestion terms for EAR).
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..errors import ConfigurationError
from .costs import CostPipeline
from .floyd_warshall import floyd_warshall_successors
from .phase3 import EcmpSelector, RoutingPlan, select_destinations
from .view import NetworkView
from .weights import (
    BatteryWeightFunction,
    CongestionWeightFunction,
    HarvestWeightFunction,
    WearWeightFunction,
)


class RoutingEngine(abc.ABC):
    """Base class of the online routing algorithms (paper Sec 6)."""

    #: Short identifier used in configs, reports, and the CLI.
    name: str = "abstract"

    #: ECMP round-robin seed; None disables equal-cost spreading and
    #: every plan routes on the canonical successor table alone.
    _ecmp_seed: int | None = None

    @property
    @abc.abstractmethod
    def pipeline(self) -> CostPipeline:
        """The phase 1 cost pipeline producing the weight matrix."""

    def weight_matrix(
        self, view: NetworkView, observer=None
    ) -> np.ndarray:
        """Phase 1: produce the directed interconnect weight matrix.

        ``observer`` is the optional per-term telemetry callback of
        :meth:`~repro.core.costs.CostPipeline.weight_matrix`.
        """
        return self.pipeline.weight_matrix(view, observer=observer)

    def configure_ecmp(self, seed: int | None) -> None:
        """Enable (seeded) or disable equal-cost multi-path spreading."""
        self._ecmp_seed = None if seed is None else int(seed)

    @property
    def ecmp_enabled(self) -> bool:
        """Whether computed plans round-robin equal-cost successors."""
        return self._ecmp_seed is not None

    def compute_plan(
        self,
        view: NetworkView,
        term_observer=None,
        timer=None,
    ) -> RoutingPlan:
        """Run all three phases and return the routing plan.

        ``term_observer`` forwards to the cost pipeline (per-term
        weight attribution); ``timer`` is an optional
        ``(name, seconds)`` callback wrapping the Floyd–Warshall
        rebuild — phase 2 dominates the recompute cost and is the
        hot path a trace wants isolated.
        """
        weights = self.weight_matrix(view, observer=term_observer)
        if timer is not None:
            started = time.perf_counter()
            distances, successors = floyd_warshall_successors(weights)
            timer("floyd-warshall", time.perf_counter() - started)
        else:
            distances, successors = floyd_warshall_successors(weights)
        destinations = select_destinations(view, distances, successors)
        ecmp = None
        if self._ecmp_seed is not None:
            ecmp = EcmpSelector(
                weights=weights,
                distances=distances,
                successors=successors,
                blocked_ports=view.blocked_ports,
                seed=self._ecmp_seed,
            )
        return RoutingPlan(
            distances=distances,
            successors=successors,
            destinations=destinations,
            view=view,
            ecmp=ecmp,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ShortestDistanceRouting(RoutingEngine):
    """SDR: the non-energy-aware baseline (weights = line lengths).

    The empty cost pipeline: no term touches the masked length matrix.
    """

    name = "sdr"

    def __init__(self) -> None:
        self._pipeline = CostPipeline()

    @property
    def pipeline(self) -> CostPipeline:
        return self._pipeline


class EnergyAwareRouting(RoutingEngine):
    """EAR: lengths scaled by the receiver's battery weight ``f(N_B(j))``.

    The standard EAR pipeline composes up to four cost terms over the
    masked length matrix — battery (always), and wear / harvest /
    congestion whenever the corresponding weight function is attached
    *and* the view carries the matching telemetry:

    * wear (:class:`~repro.core.weights.WearWeightFunction`) — routing
      drifts away from worn lines before they sever, instead of only
      reacting to discovered cuts;
    * harvest (:class:`~repro.core.weights.HarvestWeightFunction`) —
      traffic is steered toward regions the fabric is actively
      recharging;
    * congestion (:class:`~repro.core.weights.CongestionWeightFunction`)
      — hot links look longer, spreading traffic off the corridors
      adjacent to the controller.

    A fully custom :class:`~repro.core.costs.CostPipeline` may be passed
    instead of the individual functions.
    """

    name = "ear"

    def __init__(
        self,
        weight_function: BatteryWeightFunction | None = None,
        wear_function: WearWeightFunction | None = None,
        harvest_function: HarvestWeightFunction | None = None,
        congestion_function: CongestionWeightFunction | None = None,
        pipeline: CostPipeline | None = None,
    ):
        if pipeline is not None:
            self._pipeline = pipeline
        else:
            self._pipeline = CostPipeline.ear(
                weight_function=weight_function,
                wear_function=wear_function,
                harvest_function=harvest_function,
                congestion_function=congestion_function,
            )

    @property
    def pipeline(self) -> CostPipeline:
        return self._pipeline

    def _term_function(self, name: str):
        term = self._pipeline.term(name)
        return term.function if term is not None else None

    @property
    def weight_function(self) -> BatteryWeightFunction:
        """The battery weighting function ``f`` in use."""
        function = self._term_function("battery")
        if function is None:
            raise ConfigurationError(
                "EAR pipeline has no battery term"
            )
        return function

    @property
    def wear_function(self) -> WearWeightFunction | None:
        """The wear-prediction penalty in use (None = reactive EAR)."""
        return self._term_function("wear")

    @property
    def harvest_function(self) -> HarvestWeightFunction | None:
        """The harvest bonus in use (None = harvest-blind EAR)."""
        return self._term_function("harvest")

    @property
    def congestion_function(self) -> CongestionWeightFunction | None:
        """The congestion penalty in use (None = congestion-blind EAR)."""
        return self._term_function("congestion")

    def __repr__(self) -> str:
        wf = self.weight_function
        parts = [f"q={wf.q}", f"levels={wf.levels}"]
        if self.wear_function is not None:
            parts.append(f"wear_q={self.wear_function.q}")
        if self.harvest_function is not None:
            parts.append(f"harvest_q={self.harvest_function.q}")
        if self.congestion_function is not None:
            parts.append(f"congestion_q={self.congestion_function.q}")
        return f"EnergyAwareRouting({', '.join(parts)})"


def routing_engine(
    name: str,
    weight_function: BatteryWeightFunction | None = None,
    wear_function: WearWeightFunction | None = None,
    harvest_function: HarvestWeightFunction | None = None,
    congestion_function: CongestionWeightFunction | None = None,
) -> RoutingEngine:
    """Factory by short name (``"ear"`` or ``"sdr"``)."""
    normalized = name.strip().lower()
    if normalized == "ear":
        return EnergyAwareRouting(
            weight_function,
            wear_function,
            harvest_function,
            congestion_function,
        )
    if normalized == "sdr":
        return ShortestDistanceRouting()
    raise ConfigurationError(
        f"unknown routing engine {name!r}; expected 'ear' or 'sdr'"
    )
