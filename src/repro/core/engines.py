"""The EAR and SDR routing engines.

"For a fair comparison, the proposed energy-aware routing strategy and
its non-energy-aware counterpart are kept exactly the same except their
routing algorithms" (paper Sec 5) — accordingly both engines share
phases 2 and 3 verbatim and differ *only* in the phase 1 weight matrix.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigurationError
from .floyd_warshall import floyd_warshall_successors
from .phase3 import RoutingPlan, select_destinations
from .view import NetworkView
from .weights import (
    BatteryWeightFunction,
    HarvestWeightFunction,
    WearWeightFunction,
    apply_harvest_bonus,
    apply_wear_penalty,
    ear_weight_matrix,
    sdr_weight_matrix,
)


class RoutingEngine(abc.ABC):
    """Base class of the online routing algorithms (paper Sec 6)."""

    #: Short identifier used in configs, reports, and the CLI.
    name: str = "abstract"

    @abc.abstractmethod
    def weight_matrix(self, view: NetworkView) -> np.ndarray:
        """Phase 1: produce the directed interconnect weight matrix."""

    def compute_plan(self, view: NetworkView) -> RoutingPlan:
        """Run all three phases and return the routing plan."""
        weights = self.weight_matrix(view)
        distances, successors = floyd_warshall_successors(weights)
        destinations = select_destinations(view, distances, successors)
        return RoutingPlan(
            distances=distances,
            successors=successors,
            destinations=destinations,
            view=view,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ShortestDistanceRouting(RoutingEngine):
    """SDR: the non-energy-aware baseline (weights = line lengths)."""

    name = "sdr"

    def weight_matrix(self, view: NetworkView) -> np.ndarray:
        return sdr_weight_matrix(view)


class EnergyAwareRouting(RoutingEngine):
    """EAR: lengths scaled by the receiver's battery weight ``f(N_B(j))``.

    With a :class:`~repro.core.weights.WearWeightFunction` attached, the
    weight matrix is additionally scaled by the per-link wear penalty
    whenever the view carries wear information — routing drifts away
    from worn lines before they sever, instead of only reacting to
    discovered cuts.  With a
    :class:`~repro.core.weights.HarvestWeightFunction` attached, the
    matrix is further scaled by the receiver's harvest bonus whenever
    the view carries income information — traffic is steered toward
    regions the fabric is actively recharging.
    """

    name = "ear"

    def __init__(
        self,
        weight_function: BatteryWeightFunction | None = None,
        wear_function: WearWeightFunction | None = None,
        harvest_function: HarvestWeightFunction | None = None,
    ):
        self._weight_function = (
            weight_function
            if weight_function is not None
            else BatteryWeightFunction()
        )
        self._wear_function = wear_function
        self._harvest_function = harvest_function

    @property
    def weight_function(self) -> BatteryWeightFunction:
        """The battery weighting function ``f`` in use."""
        return self._weight_function

    @property
    def wear_function(self) -> WearWeightFunction | None:
        """The wear-prediction penalty in use (None = reactive EAR)."""
        return self._wear_function

    @property
    def harvest_function(self) -> HarvestWeightFunction | None:
        """The harvest bonus in use (None = harvest-blind EAR)."""
        return self._harvest_function

    def weight_matrix(self, view: NetworkView) -> np.ndarray:
        weights = ear_weight_matrix(view, self._weight_function)
        if self._wear_function is not None and view.wear is not None:
            weights = apply_wear_penalty(
                weights, view.wear, self._wear_function
            )
        if self._harvest_function is not None and view.income is not None:
            weights = apply_harvest_bonus(
                weights, view, self._harvest_function
            )
        return weights

    def __repr__(self) -> str:
        wf = self._weight_function
        parts = [f"q={wf.q}", f"levels={wf.levels}"]
        if self._wear_function is not None:
            parts.append(f"wear_q={self._wear_function.q}")
        if self._harvest_function is not None:
            parts.append(f"harvest_q={self._harvest_function.q}")
        return f"EnergyAwareRouting({', '.join(parts)})"


def routing_engine(
    name: str,
    weight_function: BatteryWeightFunction | None = None,
    wear_function: WearWeightFunction | None = None,
    harvest_function: HarvestWeightFunction | None = None,
) -> RoutingEngine:
    """Factory by short name (``"ear"`` or ``"sdr"``)."""
    normalized = name.strip().lower()
    if normalized == "ear":
        return EnergyAwareRouting(
            weight_function, wear_function, harvest_function
        )
    if normalized == "sdr":
        return ShortestDistanceRouting()
    raise ConfigurationError(
        f"unknown routing engine {name!r}; expected 'ear' or 'sdr'"
    )
