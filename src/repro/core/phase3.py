"""Phase 3 of EAR/SDR: destination selection and routing tables.

After phase 2 each node knows a (weighted) distance to every other node.
Phase 3 (paper Fig 6) walks, for every node ``n`` and every module type
``i``, the duplicate set ``S_i`` and picks the duplicate with the least
distance — skipping candidates whose first hop would use a port that is
currently reported to be in a deadlock state.  The result is the routing
table downloaded to the nodes over the TDMA medium.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..errors import RoutingError, UnreachableModuleError
from .floyd_warshall import NO_SUCCESSOR, extract_path
from .view import NetworkView

#: Sentinel for "no destination reachable".
NO_DESTINATION = -1


@dataclass(frozen=True)
class RoutingPlan:
    """Output of one full routing computation (phases 1-3).

    Attributes:
        distances: Phase 2 distance matrix over phase 1 weights.
        successors: Phase 2 successor matrix.
        destinations: ``(K, p+1)`` integer matrix; entry ``[n, i]`` is
            the node chosen to execute module ``i`` for a job currently
            at node ``n`` (column 0 is unused padding so module ids can
            index directly); :data:`NO_DESTINATION` when unreachable.
        view: The network view the plan was computed from.
    """

    distances: np.ndarray
    successors: np.ndarray
    destinations: np.ndarray
    view: NetworkView = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return int(self.distances.shape[0])

    # The engines query destinations/successors once per hop of every
    # simulated packet; plain nested lists answer those scalar lookups
    # several times faster than numpy element access, so both tables are
    # converted once per computed plan (plans are immutable).
    @cached_property
    def _destination_rows(self) -> list[list[int]]:
        return self.destinations.tolist()

    @cached_property
    def _successor_rows(self) -> list[list[int]]:
        return self.successors.tolist()

    def destination(self, node: int, module: int) -> int:
        """Chosen duplicate of ``module`` for a job at ``node``.

        Raises :class:`UnreachableModuleError` when no live duplicate is
        reachable — the paper's system-death condition.
        """
        dest = self._destination_rows[node][module]
        if dest == NO_DESTINATION:
            raise UnreachableModuleError(module, origin=node)
        return dest

    def has_destination(self, node: int, module: int) -> bool:
        """True when some live duplicate of ``module`` is reachable."""
        return self._destination_rows[node][module] != NO_DESTINATION

    def successor(self, node: int, destination: int) -> int:
        """Raw successor entry (:data:`~repro.core.floyd_warshall.NO_SUCCESSOR`
        when there is none)."""
        return self._successor_rows[node][destination]

    def next_hop(self, node: int, destination: int) -> int:
        """Next hop from ``node`` toward ``destination``."""
        hop = self._successor_rows[node][destination]
        if hop == NO_SUCCESSOR:
            raise RoutingError(
                f"no successor from {node} toward {destination}"
            )
        return hop

    def path_to_module(self, node: int, module: int) -> list[int]:
        """Full node sequence from ``node`` to its chosen duplicate."""
        return extract_path(
            self.successors, node, self.destination(node, module)
        )


def select_destinations(
    view: NetworkView,
    distances: np.ndarray,
    successors: np.ndarray,
) -> np.ndarray:
    """The paper's Fig 6: choose a duplicate per (node, module) pair.

    For each live node ``n`` and module ``i`` the candidate duplicates
    are the live members of ``S_i``; candidates whose first hop from
    ``n`` uses a blocked (deadlocked) port are skipped, exactly like the
    ``if node n is not in deadlock or ...`` guard in the pseudo-code.
    Among the remainder the least distance wins, ties broken by the
    lowest node id so results are deterministic.  A node that itself
    implements module ``i`` selects itself (distance 0) unless dead.
    """
    mapping = view.mapping
    size = view.num_nodes
    destinations = np.full(
        (size, mapping.num_modules + 1), NO_DESTINATION, dtype=np.int64
    )
    blocked = view.blocked_ports
    for module in range(1, mapping.num_modules + 1):
        candidates = [
            dup for dup in mapping.duplicates(module) if view.alive[dup]
        ]
        if not candidates:
            continue  # whole module dead: leave NO_DESTINATION sentinels
        for node in range(size):
            if not view.alive[node]:
                continue
            best_dest = NO_DESTINATION
            best_dist = np.inf
            for dup in candidates:
                dist = distances[node, dup]
                if not np.isfinite(dist):
                    continue
                if node != dup:
                    first_hop = int(successors[node, dup])
                    if first_hop == NO_SUCCESSOR:
                        continue
                    if (node, first_hop) in blocked:
                        continue
                if dist < best_dist:
                    best_dist = dist
                    best_dest = dup
            destinations[node, module] = best_dest
    return destinations
