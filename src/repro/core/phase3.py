"""Phase 3 of EAR/SDR: destination selection and routing tables.

After phase 2 each node knows a (weighted) distance to every other node.
Phase 3 (paper Fig 6) walks, for every node ``n`` and every module type
``i``, the duplicate set ``S_i`` and picks the duplicate with the least
distance — skipping candidates whose first hop would use a port that is
currently reported to be in a deadlock state.  The result is the routing
table downloaded to the nodes over the TDMA medium.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..errors import RoutingError, UnreachableModuleError
from .floyd_warshall import NO_SUCCESSOR, equal_cost_successors, extract_path
from .view import NetworkView

#: Sentinel for "no destination reachable".
NO_DESTINATION = -1


class EcmpSelector:
    """Deterministic round-robin over equal-cost successor groups.

    Floyd–Warshall keeps one canonical next hop per (node, destination)
    pair, which concentrates all traffic of a pair on a single corridor
    even when several minimal paths exist.  This selector recovers the
    full equal-cost group (lazily, per pair — most pairs are never
    routed) and cycles through it per forwarded packet, so equal-cost
    traffic spreads across parallel corridors.

    Determinism: the starting member of each pair's rotation is a hash
    of ``(node, destination, seed)``, and subsequent calls advance one
    member per call.  Every engine drives the same per-pair call
    sequence for the same workload, so sequential, vector, and
    concurrent runs pick identical hops.  Members whose ``(node, hop)``
    port is reported deadlocked are skipped; if every member is blocked
    the canonical successor is returned (matching the non-ECMP
    behaviour, where deadlock handling is phase 3's job).

    This object is mutable (rotation counters) and is rebuilt with each
    routing plan, so stale groups never outlive the weights they were
    derived from.
    """

    def __init__(
        self,
        weights: np.ndarray,
        distances: np.ndarray,
        successors: np.ndarray,
        blocked_ports: frozenset[tuple[int, int]],
        seed: int,
    ):
        self._weights = weights
        self._distances = distances
        self._successors = successors
        self._blocked = blocked_ports
        self._seed = int(seed)
        self._groups: dict[tuple[int, int], list[int]] = {}
        self._counters: dict[tuple[int, int], int] = {}

    def _group(self, node: int, destination: int) -> list[int]:
        key = (node, destination)
        group = self._groups.get(key)
        if group is None:
            group = equal_cost_successors(
                self._weights,
                self._distances,
                self._successors,
                node,
                destination,
            )
            self._groups[key] = group
        return group

    def _start_offset(self, node: int, destination: int, size: int) -> int:
        # Integer hash mix (Teschner-style spatial hash primes): cheap,
        # stable across platforms, and decorrelates neighbouring pairs
        # so rotations do not start in lockstep.
        mixed = (
            (node * 73856093)
            ^ (destination * 19349663)
            ^ (self._seed * 83492791)
        )
        return (mixed & 0x7FFFFFFF) % size

    def next_hop(self, node: int, destination: int) -> int | None:
        """Next member of the pair's rotation, or None when no group.

        ``None`` tells the caller to fall back to the canonical
        successor entry (covering unreachable pairs, whose error
        handling stays in :meth:`RoutingPlan.next_hop`).
        """
        group = self._group(node, destination)
        if len(group) <= 1:
            return group[0] if group else None
        key = (node, destination)
        turn = self._counters.get(key, 0)
        self._counters[key] = turn + 1
        size = len(group)
        start = self._start_offset(node, destination, size)
        for step in range(size):
            hop = group[(start + turn + step) % size]
            if (node, hop) not in self._blocked:
                return hop
        return None


@dataclass(frozen=True)
class RoutingPlan:
    """Output of one full routing computation (phases 1-3).

    Attributes:
        distances: Phase 2 distance matrix over phase 1 weights.
        successors: Phase 2 successor matrix.
        destinations: ``(K, p+1)`` integer matrix; entry ``[n, i]`` is
            the node chosen to execute module ``i`` for a job currently
            at node ``n`` (column 0 is unused padding so module ids can
            index directly); :data:`NO_DESTINATION` when unreachable.
        view: The network view the plan was computed from.
        ecmp: Optional :class:`EcmpSelector`; when present,
            :meth:`next_hop` round-robins over equal-cost successor
            groups instead of always returning the canonical entry.
            :meth:`successor` is unaffected (consumers that need the
            deterministic canonical table — power-bus pathing, plan
            diffing — keep it).
    """

    distances: np.ndarray
    successors: np.ndarray
    destinations: np.ndarray
    view: NetworkView = field(repr=False)
    ecmp: EcmpSelector | None = field(default=None, repr=False)

    @property
    def num_nodes(self) -> int:
        return int(self.distances.shape[0])

    # The engines query destinations/successors once per hop of every
    # simulated packet; plain nested lists answer those scalar lookups
    # several times faster than numpy element access, so both tables are
    # converted once per computed plan (plans are immutable).
    @cached_property
    def _destination_rows(self) -> list[list[int]]:
        return self.destinations.tolist()

    @cached_property
    def _successor_rows(self) -> list[list[int]]:
        return self.successors.tolist()

    def destination(self, node: int, module: int) -> int:
        """Chosen duplicate of ``module`` for a job at ``node``.

        Raises :class:`UnreachableModuleError` when no live duplicate is
        reachable — the paper's system-death condition.
        """
        dest = self._destination_rows[node][module]
        if dest == NO_DESTINATION:
            raise UnreachableModuleError(module, origin=node)
        return dest

    def has_destination(self, node: int, module: int) -> bool:
        """True when some live duplicate of ``module`` is reachable."""
        return self._destination_rows[node][module] != NO_DESTINATION

    def successor(self, node: int, destination: int) -> int:
        """Raw successor entry (:data:`~repro.core.floyd_warshall.NO_SUCCESSOR`
        when there is none)."""
        return self._successor_rows[node][destination]

    def next_hop(self, node: int, destination: int) -> int:
        """Next hop from ``node`` toward ``destination``.

        With an :attr:`ecmp` selector attached, equal-cost groups are
        round-robined; otherwise (and for pairs with a single minimal
        path) the canonical successor entry is returned.
        """
        if self.ecmp is not None and node != destination:
            hop = self.ecmp.next_hop(node, destination)
            if hop is not None:
                return hop
        hop = self._successor_rows[node][destination]
        if hop == NO_SUCCESSOR:
            raise RoutingError(
                f"no successor from {node} toward {destination}"
            )
        return hop

    def path_to_module(self, node: int, module: int) -> list[int]:
        """Full node sequence from ``node`` to its chosen duplicate."""
        return extract_path(
            self.successors, node, self.destination(node, module)
        )


def select_destinations(
    view: NetworkView,
    distances: np.ndarray,
    successors: np.ndarray,
) -> np.ndarray:
    """The paper's Fig 6: choose a duplicate per (node, module) pair.

    For each live node ``n`` and module ``i`` the candidate duplicates
    are the live members of ``S_i``; candidates whose first hop from
    ``n`` uses a blocked (deadlocked) port are skipped, exactly like the
    ``if node n is not in deadlock or ...`` guard in the pseudo-code.
    Among the remainder the least distance wins, ties broken by the
    lowest node id so results are deterministic.  A node that itself
    implements module ``i`` selects itself (distance 0) unless dead.

    Vectorised over the node axis: one masked ``argmin`` per module
    replaces the per-(node, duplicate) Python loop, which dominated
    routing recomputation on 16x16+ fabrics together with phase 2.
    ``argmin`` returns the first minimum in candidate order, which is
    exactly the scalar rule (strict ``<`` keeps the earliest candidate,
    and duplicate sets are listed in ascending node id).
    :func:`reference_select_destinations` keeps the literal transcription
    as the semantic oracle the vectorised path is tested against.
    """
    mapping = view.mapping
    size = view.num_nodes
    destinations = np.full(
        (size, mapping.num_modules + 1), NO_DESTINATION, dtype=np.int64
    )
    blocked = view.blocked_ports
    node_ids = np.arange(size)
    for module in range(1, mapping.num_modules + 1):
        candidates = [
            dup for dup in mapping.duplicates(module) if view.alive[dup]
        ]
        if not candidates:
            continue  # whole module dead: leave NO_DESTINATION sentinels
        cand = np.asarray(candidates, dtype=np.int64)
        dist = distances[:, cand].copy()
        first_hops = successors[:, cand]
        # A candidate is skipped when its distance is not finite, or —
        # for non-self choices — when the first hop is missing or the
        # (node, first_hop) port is reported deadlocked.
        invalid = ~np.isfinite(dist)
        non_self = node_ids[:, None] != cand[None, :]
        invalid |= non_self & (first_hops == NO_SUCCESSOR)
        for b_node, b_hop in blocked:
            invalid[b_node] |= non_self[b_node] & (first_hops[b_node] == b_hop)
        dist[invalid] = np.inf
        best_idx = np.argmin(dist, axis=1)
        feasible = view.alive & np.isfinite(dist[node_ids, best_idx])
        destinations[:, module] = np.where(
            feasible, cand[best_idx], NO_DESTINATION
        )
    return destinations


def reference_select_destinations(
    view: NetworkView,
    distances: np.ndarray,
    successors: np.ndarray,
) -> np.ndarray:
    """Literal per-(node, duplicate) transcription of the Fig 6 walk.

    O(K * |S_i|) in pure Python — test/reference use only, mirroring
    :func:`~repro.core.floyd_warshall.reference_floyd_warshall`.
    """
    mapping = view.mapping
    size = view.num_nodes
    destinations = np.full(
        (size, mapping.num_modules + 1), NO_DESTINATION, dtype=np.int64
    )
    blocked = view.blocked_ports
    for module in range(1, mapping.num_modules + 1):
        candidates = [
            dup for dup in mapping.duplicates(module) if view.alive[dup]
        ]
        if not candidates:
            continue
        for node in range(size):
            if not view.alive[node]:
                continue
            best_dest = NO_DESTINATION
            best_dist = np.inf
            for dup in candidates:
                dist = distances[node, dup]
                if not np.isfinite(dist):
                    continue
                if node != dup:
                    first_hop = int(successors[node, dup])
                    if first_hop == NO_SUCCESSOR:
                        continue
                    if (node, first_hop) in blocked:
                        continue
                if dist < best_dist:
                    best_dist = dist
                    best_dest = dup
            destinations[node, module] = best_dest
    return destinations
