"""The controller's view of the network.

Routing decisions are made centrally from *reported* information (paper
Sec 5.3): quantised battery levels, liveness, and deadlock flags arrive
over the TDMA control medium; the physical line lengths are static
knowledge.  A :class:`NetworkView` is an immutable snapshot of exactly
that information — the only input a routing engine is allowed to see,
which keeps EAR honest (it cannot peek at exact battery state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..mesh.mapping import ModuleMapping


@dataclass(frozen=True)
class NetworkView:
    """Snapshot of reported system state used for one routing computation.

    Attributes:
        lengths: Dense ``(K, K)`` matrix of line lengths in cm
            (``inf`` for non-edges, 0 on the diagonal).
        alive: Boolean vector of length ``K``.
        battery_levels: Integer vector of reported levels ``N_B(j)``,
            each in ``0 .. levels-1``.
        levels: The quantisation level count ``N_B``.
        mapping: Module-to-node assignment.
        blocked_ports: Set of ``(node, successor)`` pairs currently in a
            deadlock state; phase 3 avoids choosing them.
        wear: Optional ``(K, K)`` matrix of quantised per-link wear
            levels (traversal counts plus degradation history, reported
            by the fault runtime); None when wear-aware routing is off.
        income: Optional length-``K`` vector of quantised per-node
            harvest income levels (smoothed accepted income, learned
            from status uploads); None when harvest-aware routing is
            off.
        load: Optional ``(K, K)`` matrix of quantised per-link load
            levels (smoothed traversal rates, reported by the engine's
            congestion runtime); None when congestion-aware routing is
            off.
    """

    lengths: np.ndarray
    alive: np.ndarray
    battery_levels: np.ndarray
    levels: int
    mapping: ModuleMapping
    blocked_ports: frozenset[tuple[int, int]] = field(
        default_factory=frozenset
    )
    wear: np.ndarray | None = None
    income: np.ndarray | None = None
    load: np.ndarray | None = None

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=float)
        alive = np.asarray(self.alive, dtype=bool)
        levels_vec = np.asarray(self.battery_levels, dtype=int)
        size = lengths.shape[0]
        if lengths.shape != (size, size):
            raise ConfigurationError(
                f"lengths must be square, got {lengths.shape}"
            )
        if alive.shape != (size,) or levels_vec.shape != (size,):
            raise ConfigurationError(
                "alive and battery_levels must be vectors of length "
                f"{size}, got {alive.shape} and {levels_vec.shape}"
            )
        if self.levels < 1:
            raise ConfigurationError(
                f"levels must be >= 1, got {self.levels}"
            )
        if levels_vec.min(initial=0) < 0 or levels_vec.max(
            initial=0
        ) >= self.levels:
            raise ConfigurationError(
                "battery levels must lie in "
                f"0..{self.levels - 1}, got range "
                f"[{levels_vec.min()}, {levels_vec.max()}]"
            )
        object.__setattr__(self, "lengths", lengths)
        object.__setattr__(self, "alive", alive)
        object.__setattr__(self, "battery_levels", levels_vec)
        if self.wear is not None:
            wear = np.asarray(self.wear, dtype=int)
            if wear.shape != (size, size):
                raise ConfigurationError(
                    f"wear matrix must be {size}x{size}, got {wear.shape}"
                )
            if wear.min(initial=0) < 0:
                raise ConfigurationError("wear levels must be >= 0")
            object.__setattr__(self, "wear", wear)
        if self.income is not None:
            income = np.asarray(self.income, dtype=int)
            if income.shape != (size,):
                raise ConfigurationError(
                    f"income vector must have length {size}, got "
                    f"{income.shape}"
                )
            if income.min(initial=0) < 0:
                raise ConfigurationError("income levels must be >= 0")
            object.__setattr__(self, "income", income)
        if self.load is not None:
            load = np.asarray(self.load, dtype=int)
            if load.shape != (size, size):
                raise ConfigurationError(
                    f"load matrix must be {size}x{size}, got {load.shape}"
                )
            if load.min(initial=0) < 0:
                raise ConfigurationError("load levels must be >= 0")
            object.__setattr__(self, "load", load)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``K`` in the view."""
        return int(self.lengths.shape[0])

    def alive_nodes(self) -> tuple[int, ...]:
        """Ids of live nodes."""
        return tuple(int(n) for n in np.flatnonzero(self.alive))

    def with_blocked_ports(
        self, blocked: frozenset[tuple[int, int]]
    ) -> "NetworkView":
        """Copy of the view with a different blocked-port set."""
        return NetworkView(
            lengths=self.lengths,
            alive=self.alive,
            battery_levels=self.battery_levels,
            levels=self.levels,
            mapping=self.mapping,
            blocked_ports=blocked,
            wear=self.wear,
            income=self.income,
            load=self.load,
        )
