"""Phase 2 of EAR/SDR: all-pairs shortest paths with successor matrices.

The paper uses "a variation of the Floyd–Warshall algorithm of complexity
O(n^3)" that produces both the distance matrix ``D`` and the *successor*
matrix ``S`` where ``S_ij`` is the next hop of node ``i`` on a shortest
path to node ``j`` (Fig 5).  Ties keep the incumbent successor (the
pseudo-code only replaces on strict improvement), which makes the result
deterministic.

Two implementations are provided:

* :func:`floyd_warshall_successors` — numpy-vectorised over the inner two
  loops; this is the production path (the O(K^3) work dominates routing
  recomputation time, see the runtime bench).
* :func:`reference_floyd_warshall` — a line-by-line transcription of the
  paper's pseudo-code in pure Python, kept as the semantic reference that
  the vectorised version is tested against.
"""

from __future__ import annotations

import numpy as np

from ..errors import RoutingError

#: Sentinel for "no successor" (unreachable destination).
NO_SUCCESSOR = -1


def _initial_successors(weights: np.ndarray) -> np.ndarray:
    """``S^(0)``: the edge target where an edge exists, else sentinel."""
    size = weights.shape[0]
    targets = np.broadcast_to(np.arange(size), (size, size))
    successors = np.where(np.isfinite(weights), targets, NO_SUCCESSOR)
    np.fill_diagonal(successors, np.arange(size))
    return successors.astype(np.int64)


def floyd_warshall_successors(
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs weighted shortest paths with successors.

    Args:
        weights: Square matrix; ``inf`` marks non-edges, the diagonal
            must be 0.  Negative weights are rejected (physical lengths
            and battery multipliers are non-negative, and Floyd–Warshall
            successor semantics break on negative cycles).

    Returns:
        ``(D, S)`` where ``D[i, j]`` is the least path weight and
        ``S[i, j]`` the next hop from ``i`` toward ``j``
        (:data:`NO_SUCCESSOR` when unreachable).
    """
    weights = np.asarray(weights, dtype=float)
    size = weights.shape[0]
    if weights.shape != (size, size):
        raise RoutingError(f"weight matrix must be square, got {weights.shape}")
    if size and np.any(np.diagonal(weights) != 0.0):
        raise RoutingError("weight matrix diagonal must be zero")
    finite = weights[np.isfinite(weights)]
    if finite.size and finite.min() < 0:
        raise RoutingError("negative interconnect weights are not allowed")

    distances = weights.copy()
    successors = _initial_successors(weights)
    for k in range(size):
        through_k = distances[:, k : k + 1] + distances[k : k + 1, :]
        better = through_k < distances
        if not better.any():
            continue
        distances = np.where(better, through_k, distances)
        successors = np.where(
            better, np.broadcast_to(successors[:, k : k + 1], (size, size)),
            successors,
        )
    return distances, successors


def reference_floyd_warshall(
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Direct transcription of the paper's Fig 5 pseudo-code.

    O(K^3) in pure Python — test/reference use only.
    """
    weights = np.asarray(weights, dtype=float)
    size = weights.shape[0]
    distances = weights.copy()
    successors = _initial_successors(weights)
    for n in range(size):
        for i in range(size):
            for j in range(size):
                through_n = distances[i, n] + distances[n, j]
                # Paper Fig 5: keep S on <=, replace on strict >.
                if distances[i, j] > through_n:
                    distances[i, j] = through_n
                    successors[i, j] = successors[i, n]
    return distances, successors


def extract_path(
    successors: np.ndarray, source: int, destination: int
) -> list[int]:
    """Walk the successor matrix from ``source`` to ``destination``.

    Returns the node sequence including both endpoints.  Raises
    :class:`RoutingError` if the destination is unreachable or the
    successor matrix is corrupt (cycle without reaching the target).
    """
    size = successors.shape[0]
    if not (0 <= source < size and 0 <= destination < size):
        raise RoutingError(
            f"path endpoints ({source}, {destination}) outside 0..{size - 1}"
        )
    path = [source]
    current = source
    # A simple path visits each node at most once: size hops suffice.
    for _ in range(size):
        if current == destination:
            return path
        nxt = int(successors[current, destination])
        if nxt == NO_SUCCESSOR:
            raise RoutingError(
                f"destination {destination} unreachable from {source}"
            )
        path.append(nxt)
        current = nxt
    raise RoutingError(
        f"successor matrix loops walking {source} -> {destination}: {path}"
    )


def path_length(lengths: np.ndarray, path: list[int]) -> float:
    """Sum of physical hop lengths along a node sequence."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        hop = lengths[u, v]
        if not np.isfinite(hop):
            raise RoutingError(f"path uses missing edge {u} -> {v}")
        total += float(hop)
    return total
