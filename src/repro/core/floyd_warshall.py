"""Phase 2 of EAR/SDR: all-pairs shortest paths with successor matrices.

The paper uses "a variation of the Floyd–Warshall algorithm of complexity
O(n^3)" that produces both the distance matrix ``D`` and the *successor*
matrix ``S`` where ``S_ij`` is the next hop of node ``i`` on a shortest
path to node ``j`` (Fig 5).  Ties keep the incumbent successor (the
pseudo-code only replaces on strict improvement), which makes the result
deterministic.

Two implementations are provided:

* :func:`floyd_warshall_successors` — numpy-vectorised over the inner two
  loops; this is the production path (the O(K^3) work dominates routing
  recomputation time, see the runtime bench).
* :func:`reference_floyd_warshall` — a line-by-line transcription of the
  paper's pseudo-code in pure Python, kept as the semantic reference that
  the vectorised version is tested against.
"""

from __future__ import annotations

import numpy as np

from ..errors import RoutingError

#: Sentinel for "no successor" (unreachable destination).
NO_SUCCESSOR = -1


def _initial_successors(weights: np.ndarray) -> np.ndarray:
    """``S^(0)``: the edge target where an edge exists, else sentinel."""
    size = weights.shape[0]
    targets = np.broadcast_to(np.arange(size), (size, size))
    successors = np.where(np.isfinite(weights), targets, NO_SUCCESSOR)
    np.fill_diagonal(successors, np.arange(size))
    return successors.astype(np.int64)


def floyd_warshall_successors(
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs weighted shortest paths with successors.

    Args:
        weights: Square matrix; ``inf`` marks non-edges, the diagonal
            must be 0.  Negative weights are rejected (physical lengths
            and battery multipliers are non-negative, and Floyd–Warshall
            successor semantics break on negative cycles).

    Returns:
        ``(D, S)`` where ``D[i, j]`` is the least path weight and
        ``S[i, j]`` the next hop from ``i`` toward ``j``
        (:data:`NO_SUCCESSOR` when unreachable).
    """
    weights = np.asarray(weights, dtype=float)
    size = weights.shape[0]
    if weights.shape != (size, size):
        raise RoutingError(f"weight matrix must be square, got {weights.shape}")
    if size and np.any(np.diagonal(weights) != 0.0):
        raise RoutingError("weight matrix diagonal must be zero")
    finite = weights[np.isfinite(weights)]
    if finite.size and finite.min() < 0:
        raise RoutingError("negative interconnect weights are not allowed")

    distances = weights.copy()
    successors = _initial_successors(weights)
    # Reusable buffers: the k-loop runs K times over K^2 entries, so the
    # per-iteration allocations of the naive np.where formulation cost
    # more than the arithmetic on large fabrics.  Semantics are
    # unchanged: strict `<` replaces, ties keep the incumbent.
    through_k = np.empty_like(distances)
    better = np.empty(distances.shape, dtype=bool)
    successor_col = np.empty(size, dtype=np.int64)
    for k in range(size):
        np.add.outer(distances[:, k], distances[k, :], out=through_k)
        np.less(through_k, distances, out=better)
        if not better.any():
            continue
        np.copyto(distances, through_k, where=better)
        # Snapshot column k before writing: better[:, k] is always False
        # (through_k[:, k] == distances[:, k]), but copyto would other-
        # wise read from the array it is writing.
        successor_col[:] = successors[:, k]
        np.copyto(successors, successor_col[:, None], where=better)
    return distances, successors


#: Relative tolerance for "equal cost" when collecting ECMP successor
#: groups.  The vectorised and reference Floyd–Warshall runs accumulate
#: sums in different orders, so exact equality would make group
#: membership depend on summation order; one part in 10^9 is far below
#: any physically meaningful weight difference.
ECMP_COST_TOLERANCE = 1e-9


def equal_cost_successors(
    weights: np.ndarray,
    distances: np.ndarray,
    successors: np.ndarray,
    source: int,
    destination: int,
) -> list[int]:
    """All next hops of ``source`` on a minimal path to ``destination``.

    The canonical successor matrix keeps a single (deterministic,
    first-found) next hop per pair; this recovers the full equal-cost
    group from the distance matrix.  A neighbour ``k`` qualifies when

    * the edge ``source -> k`` exists (finite weight, ``k != source``),
    * ``D[k, dest] < D[source, dest]`` — strict progress toward the
      destination, which guarantees loop freedom for positive weights
      (every hop decreases the remaining distance, so no cycle), and
    * ``W[source, k] + D[k, dest] <= D[source, dest] * (1 + tol)`` —
      the detour through ``k`` costs no more than the optimum (up to
      :data:`ECMP_COST_TOLERANCE`).

    The canonical successor always satisfies these conditions, so the
    group is never empty for a reachable pair; members are returned in
    ascending node order.  For an unreachable pair (or ``source ==
    destination``) the list is empty.
    """
    if source == destination:
        return []
    optimum = distances[source, destination]
    if not np.isfinite(optimum):
        return []
    edge = weights[source]
    remaining = distances[:, destination]
    candidates = (
        np.isfinite(edge)
        & (remaining < optimum)
        & (edge + remaining <= optimum * (1.0 + ECMP_COST_TOLERANCE))
    )
    candidates[source] = False
    group = [int(k) for k in np.flatnonzero(candidates)]
    canonical = int(successors[source, destination])
    if canonical != NO_SUCCESSOR and canonical not in group:
        # Rounding pushed the recomputed sum past the tolerance; the
        # canonical choice is minimal by construction, so keep it.
        group.append(canonical)
        group.sort()
    return group


def reference_floyd_warshall(
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Direct transcription of the paper's Fig 5 pseudo-code.

    O(K^3) in pure Python — test/reference use only.
    """
    weights = np.asarray(weights, dtype=float)
    size = weights.shape[0]
    distances = weights.copy()
    successors = _initial_successors(weights)
    for n in range(size):
        for i in range(size):
            for j in range(size):
                through_n = distances[i, n] + distances[n, j]
                # Paper Fig 5: keep S on <=, replace on strict >.
                if distances[i, j] > through_n:
                    distances[i, j] = through_n
                    successors[i, j] = successors[i, n]
    return distances, successors


def extract_path(
    successors: np.ndarray, source: int, destination: int
) -> list[int]:
    """Walk the successor matrix from ``source`` to ``destination``.

    Returns the node sequence including both endpoints.  Raises
    :class:`RoutingError` if the destination is unreachable or the
    successor matrix is corrupt (cycle without reaching the target).
    """
    size = successors.shape[0]
    if not (0 <= source < size and 0 <= destination < size):
        raise RoutingError(
            f"path endpoints ({source}, {destination}) outside 0..{size - 1}"
        )
    path = [source]
    current = source
    # A simple path visits each node at most once: size hops suffice.
    for _ in range(size):
        if current == destination:
            return path
        nxt = int(successors[current, destination])
        if nxt == NO_SUCCESSOR:
            raise RoutingError(
                f"destination {destination} unreachable from {source}"
            )
        path.append(nxt)
        current = nxt
    raise RoutingError(
        f"successor matrix loops walking {source} -> {destination}: {path}"
    )


def path_length(lengths: np.ndarray, path: list[int]) -> float:
    """Sum of physical hop lengths along a node sequence."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        hop = lengths[u, v]
        if not np.isfinite(hop):
            raise RoutingError(f"path uses missing edge {u} -> {v}")
        total += float(hop)
    return total
