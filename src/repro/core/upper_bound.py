"""Theorem 1: the analytical upper bound on completed jobs (paper Sec 4).

The ideal routing strategy ``RS*`` matches the topology to the data flow,
replicates modules optimally over the node budget ``K`` (relaxing the
counts to reals), hands incomplete operations over for free, and has no
control overhead.  Under it the achievable number of jobs reduces to the
max-min program of Eq (1), whose solution is the closed form of Eq (2):

    J* = B * K / sum_i H_i,          n_i* = K * H_i / sum_j H_j,

with ``H_i = f_i (E_i + c_i)`` the normalised energy of module ``i``.

Besides the closed form this module implements the underlying max-min
optimisation directly — over real and over integer duplicate counts — so
the theorem can be *checked* rather than trusted: the real-relaxation
optimum must equal the closed form, and every integer allocation must be
at or below it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import require_positive
from .parameters import ApplicationProfile


@dataclass(frozen=True)
class UpperBoundResult:
    """Result of a Theorem 1 evaluation.

    Attributes:
        jobs: The bound ``J*`` on completed jobs.
        optimal_duplicates: ``n_i*`` per module (real numbers).
        normalized_energies: ``H_i`` per module.
        battery_budget_pj: The per-node battery budget ``B`` used.
        node_budget: The node budget ``K`` used.
    """

    jobs: float
    optimal_duplicates: dict[int, float]
    normalized_energies: dict[int, float]
    battery_budget_pj: float
    node_budget: int

    @property
    def energy_per_job_pj(self) -> float:
        """``sum_i H_i``: total energy consumed per completed job."""
        return sum(self.normalized_energies.values())


def theorem1(
    profile: ApplicationProfile,
    battery_budget_pj: float,
    node_budget: int,
) -> UpperBoundResult:
    """Evaluate Theorem 1's closed form (paper Eq 2 and Eq 3)."""
    require_positive("battery_budget_pj", battery_budget_pj)
    if node_budget < profile.num_modules:
        raise ConfigurationError(
            f"node budget {node_budget} cannot host the "
            f"{profile.num_modules} distinct modules"
        )
    energies = profile.normalized_energies()
    total = sum(energies.values())
    jobs = battery_budget_pj * node_budget / total
    duplicates = {
        module: node_budget * h / total for module, h in energies.items()
    }
    return UpperBoundResult(
        jobs=jobs,
        optimal_duplicates=duplicates,
        normalized_energies=energies,
        battery_budget_pj=float(battery_budget_pj),
        node_budget=int(node_budget),
    )


def jobs_for_duplicates(
    profile: ApplicationProfile,
    battery_budget_pj: float,
    duplicates: dict[int, float],
    floor_jobs: bool = False,
) -> float:
    """Objective of Eq (1): ``min_i n_i * B / H_i`` for a given allocation.

    With ``floor_jobs=True`` the value is floored to whole jobs, matching
    the integer-jobs reading of Eq (1).
    """
    require_positive("battery_budget_pj", battery_budget_pj)
    energies = profile.normalized_energies()
    if set(duplicates) != set(energies):
        raise ConfigurationError(
            "duplicate counts must cover exactly the profile's modules"
        )
    value = min(
        duplicates[m] * battery_budget_pj / energies[m] for m in energies
    )
    return float(int(value)) if floor_jobs else value


def optimize_duplicates(
    profile: ApplicationProfile,
    battery_budget_pj: float,
    node_budget: int,
    integral: bool = False,
) -> tuple[float, dict[int, float]]:
    """Solve the Eq (1) max-min program directly.

    Real relaxation (``integral=False``): the optimum equalises
    ``n_i B / H_i`` across modules, i.e. ``n_i`` proportional to ``H_i``
    with equality ``sum n_i = K`` — computed here *from the optimisation*
    (water-filling argument) rather than from the closed form, so tests
    can compare the two independently.

    Integral mode: exhaustive search over all compositions of ``K`` into
    ``p`` positive integers for small ``p`` (the AES case has p=3 and
    K <= a few hundred, well within reach); returns the best allocation
    and its floored job count.
    """
    require_positive("battery_budget_pj", battery_budget_pj)
    if node_budget < profile.num_modules:
        raise ConfigurationError(
            f"node budget {node_budget} cannot host the "
            f"{profile.num_modules} distinct modules"
        )
    energies = profile.normalized_energies()
    modules = sorted(energies)

    if not integral:
        # Max-min with linear constraint: at the optimum all terms
        # n_i B / H_i are equal (otherwise mass could move from a
        # higher term to the minimum and improve it), so n_i = t * H_i
        # with t = K / sum(H).
        t = node_budget / sum(energies.values())
        allocation = {m: t * energies[m] for m in modules}
        jobs = jobs_for_duplicates(profile, battery_budget_pj, allocation)
        return jobs, allocation

    if profile.num_modules == 1:
        allocation = {modules[0]: float(node_budget)}
        return (
            jobs_for_duplicates(
                profile, battery_budget_pj, allocation, floor_jobs=True
            ),
            allocation,
        )

    best_jobs = -1.0
    best_allocation: dict[int, float] = {}

    def compositions(remaining: int, slots: int):
        """All ways to write ``remaining`` as ``slots`` positive ints."""
        if slots == 1:
            yield (remaining,)
            return
        for first in range(1, remaining - slots + 2):
            for rest in compositions(remaining - first, slots - 1):
                yield (first,) + rest

    for combo in compositions(node_budget, profile.num_modules):
        allocation = {m: float(c) for m, c in zip(modules, combo)}
        jobs = jobs_for_duplicates(
            profile, battery_budget_pj, allocation, floor_jobs=True
        )
        if jobs > best_jobs:
            best_jobs = jobs
            best_allocation = allocation
    return best_jobs, best_allocation
