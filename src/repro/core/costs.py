"""Composable routing cost pipeline.

The weight matrix consumed by the routing engines used to be assembled
by hand inside :class:`~repro.core.engines.EnergyAwareRouting`: length
mask, then battery scale, then wear penalty, then harvest bonus, each
with its own quantise/gate/scale wiring.  This module factors that
accretion into a uniform shape: a :class:`CostTerm` is one multiplicative
adjustment to the base length matrix, and a :class:`CostPipeline` is an
ordered composition of terms.

Every term is a *scale* of the running matrix (never an addition), so
the Floyd–Warshall conventions — ``inf`` for severed or masked lines,
0 on the diagonal — survive each step by construction, and terms whose
multipliers do not depend on the running matrix commute up to floating
point rounding.  The pipeline applies terms in list order, which keeps
the battery → wear → harvest sequence of the historical hand-rolled
composition bit-identical (each step performs exactly the operations the
old appliers performed, in the same order).

Terms self-gate on the view: a term whose telemetry is absent (no wear
matrix, no income vector, no load matrix) skips itself, so one pipeline
instance serves every phase of a simulation — before the first wear
report arrives the wear term is simply inert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from .view import NetworkView
from .weights import (
    BatteryWeightFunction,
    CongestionWeightFunction,
    HarvestWeightFunction,
    WearWeightFunction,
    apply_congestion_penalty,
    apply_harvest_bonus,
    apply_wear_penalty,
    ear_weight_matrix,
    sdr_weight_matrix,
)


@runtime_checkable
class CostTerm(Protocol):
    """One multiplicative adjustment to the routing weight matrix.

    Implementations must preserve the Floyd–Warshall conventions
    (``inf`` entries stay ``inf``, the diagonal stays 0) and must not
    mutate the input matrix.
    """

    #: Short identifier used in reprs and reports.
    name: str

    def applies(self, view: NetworkView) -> bool:
        """Whether this term has the telemetry it needs in ``view``."""
        ...

    def apply(self, weights: np.ndarray, view: NetworkView) -> np.ndarray:
        """Return the scaled weight matrix (input left unchanged)."""
        ...


@dataclass(frozen=True)
class BatteryTerm:
    """The paper's battery scale: column ``j`` grows by ``f(N_B(j))``.

    Unlike the telemetry-gated terms this one always applies — battery
    levels are mandatory in every :class:`NetworkView`.  It is written
    as a scale of the *base length matrix*, so it must come first in a
    pipeline that reproduces the historical EAR composition.
    """

    function: BatteryWeightFunction = field(
        default_factory=BatteryWeightFunction
    )
    name: str = field(default="battery", init=False, repr=False)

    def applies(self, view: NetworkView) -> bool:
        return True

    def apply(self, weights: np.ndarray, view: NetworkView) -> np.ndarray:
        # Delegate to the historical single-shot builder: it validates
        # the level count against the view and performs mask + scale in
        # exactly the operation order the goldens were recorded under.
        # The incoming running matrix is the masked base (the pipeline
        # seeds with sdr_weight_matrix), which ear_weight_matrix
        # recomputes internally — identical input, identical output.
        del weights
        return ear_weight_matrix(view, self.function)


@dataclass(frozen=True)
class WearTerm:
    """Per-link wear penalty; inert until the view carries wear levels."""

    function: WearWeightFunction = field(default_factory=WearWeightFunction)
    name: str = field(default="wear", init=False, repr=False)

    def applies(self, view: NetworkView) -> bool:
        return view.wear is not None

    def apply(self, weights: np.ndarray, view: NetworkView) -> np.ndarray:
        return apply_wear_penalty(weights, view.wear, self.function)


@dataclass(frozen=True)
class HarvestTerm:
    """Receiver harvest bonus; inert until the view carries income."""

    function: HarvestWeightFunction = field(
        default_factory=HarvestWeightFunction
    )
    name: str = field(default="harvest", init=False, repr=False)

    def applies(self, view: NetworkView) -> bool:
        return view.income is not None

    def apply(self, weights: np.ndarray, view: NetworkView) -> np.ndarray:
        return apply_harvest_bonus(weights, view, self.function)


@dataclass(frozen=True)
class CongestionTerm:
    """Per-link congestion penalty; inert until the view carries load."""

    function: CongestionWeightFunction = field(
        default_factory=CongestionWeightFunction
    )
    name: str = field(default="congestion", init=False, repr=False)

    def applies(self, view: NetworkView) -> bool:
        return view.load is not None

    def apply(self, weights: np.ndarray, view: NetworkView) -> np.ndarray:
        return apply_congestion_penalty(weights, view.load, self.function)


@dataclass(frozen=True)
class CostPipeline:
    """Ordered composition of cost terms over the masked length matrix.

    The empty pipeline is exactly SDR: the weight matrix is the live
    subgraph's line lengths.  ``CostPipeline.ear(...)`` builds the
    historical EAR composition (battery, then wear, then harvest, then
    congestion — each optional piece included only when its function is
    supplied), whose output is bit-identical to the hand-rolled
    sequence the golden fixtures were recorded under.
    """

    terms: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @classmethod
    def ear(
        cls,
        weight_function: BatteryWeightFunction | None = None,
        wear_function: WearWeightFunction | None = None,
        harvest_function: HarvestWeightFunction | None = None,
        congestion_function: CongestionWeightFunction | None = None,
    ) -> "CostPipeline":
        """The standard EAR pipeline (battery/wear/harvest/congestion)."""
        terms: list[CostTerm] = [
            BatteryTerm(
                weight_function
                if weight_function is not None
                else BatteryWeightFunction()
            )
        ]
        if wear_function is not None:
            terms.append(WearTerm(wear_function))
        if harvest_function is not None:
            terms.append(HarvestTerm(harvest_function))
        if congestion_function is not None:
            terms.append(CongestionTerm(congestion_function))
        return cls(terms=tuple(terms))

    def weight_matrix(self, view: NetworkView, observer=None) -> np.ndarray:
        """Phase 1: compose all applicable terms over the base lengths.

        ``observer`` is an optional telemetry callback invoked once per
        *applied* term with ``(name, before, after)`` — the running
        matrix on either side of the term — so a trace can attribute a
        re-plan's weight changes to individual cost terms.  The
        composition itself is untouched: with ``observer=None`` the
        call is bit-identical to the historical path.
        """
        weights = sdr_weight_matrix(view)
        for term in self.terms:
            if term.applies(view):
                scaled = term.apply(weights, view)
                if observer is not None:
                    observer(term.name, weights, scaled)
                weights = scaled
        return weights

    def term(self, name: str) -> CostTerm | None:
        """First term with the given name, or None."""
        for term in self.terms:
            if term.name == name:
                return term
        return None

    def __repr__(self) -> str:
        names = "+".join(term.name for term in self.terms) or "sdr"
        return f"CostPipeline({names})"
