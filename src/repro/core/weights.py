"""Phase 1 of EAR/SDR: interconnect weight matrices (paper Sec 6).

SDR weighs each directed interconnect by its physical length ``L_ij``.
EAR multiplies the length by a decreasing function of the *receiving*
node's reported battery level:

    W_ij^(EAR) = f(N_B(j)) * L_ij

so paths through energy-depleted nodes look long, and traffic drifts
toward well-charged regions.  The paper's weighting function is

    f(n) = Q^(2 * (N_B - 1 - n)),   Q > 0,

equal to 1 for a full battery and growing geometrically as the level
drops ("Q ... a constant to strengthen the impact of the battery
information").  The printed formula in the DATE'05 PDF is typeset
ambiguously; this reconstruction is monotone, equals unity at full
charge, and reproduces the paper's qualitative behaviour — it is kept
pluggable, and the weighting ablation bench sweeps ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .view import NetworkView

#: Default strengthening constant; calibrated so EAR lands in the
#: paper's 44.5-48.2 % band of the analytical bound (see EXPERIMENTS.md).
DEFAULT_Q = 1.6

#: Default wear-penalty base: a link one wear level up looks 10 %
#: longer.  Deliberately gentler than the battery weight — wear is a
#: *prediction* of failure, not a measured depletion, and an aggressive
#: penalty would fight the battery balancing it rides on top of.
#: Calibrated (with the quantum below) on the wear-aware scenario's
#: attrition grid so the wear weight never shortens lifetime there.
DEFAULT_WEAR_Q = 1.1

#: Default traversal count per wear level (one quantum of mechanical
#: stress); each past degradation event also counts as one full level.
DEFAULT_WEAR_QUANTUM = 96

#: Wear-level cap shared by the fault runtime's quantiser and the
#: penalty table — one source of truth for where wear saturates.
DEFAULT_WEAR_LEVELS = 8

#: Default harvest-bonus base: a node one income level up looks ~23 %
#: closer *while its battery is still nearly full* (see
#: :data:`HARVEST_RICH_BAND`).  Calibrated (with the quantum below) on
#: the harvest-aware scenario grid so the harvest weight gains jobs
#: there.
DEFAULT_HARVEST_Q = 1.3

#: Default smoothed income (pJ per frame) per quantised income level.
DEFAULT_HARVEST_QUANTUM = 5.0

#: Income-level cap shared by the harvest runtime's quantiser and the
#: bonus table.
DEFAULT_HARVEST_LEVELS = 8

#: The harvest bonus only applies to receivers reporting a battery
#: level within this many levels of full (the top quarter of the
#: default 8-level scale).  Surplus draining: attracting load to a
#: harvesting node is profitable exactly while its cell is so full
#: that income would otherwise be rejected for lack of headroom; once
#: the level drops out of the band the node needs the regular battery
#: weight's protection, not extra traffic.
HARVEST_RICH_BAND = 2

#: Default congestion-penalty base: a link one load level up looks
#: 25 % longer.  Stronger than the wear penalty — congestion is a
#: *measured* per-frame utilisation, not a failure prediction, and the
#: penalty must overcome the battery weight's pull toward the short
#: central corridors for ECMP spreading to engage.  Calibrated (with
#: the quantum below) on the congestion-relief scenario grid so the
#: hottest link's traffic share drops without shortening lifetime.
DEFAULT_CONGESTION_Q = 1.25

#: Default smoothed per-frame traversal count (EMA) per quantised load
#: level.  One job on a small mesh crosses a source-adjacent line a
#: handful of times per frame, so whole-number steps separate the hot
#: corridor from the idle periphery.
DEFAULT_CONGESTION_QUANTUM = 2.0

#: Load-level cap shared by the congestion runtime's quantiser and the
#: penalty table — one source of truth for where congestion saturates.
DEFAULT_CONGESTION_LEVELS = 8


# ----------------------------------------------------------------------
# Shared scale/gate helpers (the cost-pipeline primitives)
# ----------------------------------------------------------------------
def scale_columns(weights: np.ndarray, multipliers: np.ndarray) -> np.ndarray:
    """Scale column ``j`` (the receiving endpoint) by ``multipliers[j]``.

    The common shape of every *node*-keyed cost term (battery, harvest):
    ``inf`` entries stay ``inf`` (``inf * x == inf`` for positive
    multipliers) and the diagonal is re-zeroed, so the Floyd–Warshall
    conventions survive.  Returns a new matrix; the input is unchanged.
    """
    weights = weights * multipliers[np.newaxis, :]
    np.fill_diagonal(weights, 0.0)
    return weights


def scale_links(weights: np.ndarray, multipliers: np.ndarray) -> np.ndarray:
    """Scale every link by a dense per-link multiplier matrix.

    The common shape of every *link*-keyed cost term (wear, congestion).
    ``inf`` entries stay ``inf`` and the diagonal is re-zeroed, so the
    Floyd–Warshall conventions survive.  Returns a new matrix.
    """
    weights = weights * multipliers
    np.fill_diagonal(weights, 0.0)
    return weights


def quantised_multipliers(
    table: np.ndarray, levels: np.ndarray, cap: int
) -> np.ndarray:
    """Look up a saturating level table: ``table[min(levels, cap)]``.

    The shared quantise step of every level-driven term: reported
    levels index a precomputed multiplier table, saturating at the
    table's last entry so runtime levels beyond the configured cap
    cannot index out of range.
    """
    return table[np.minimum(levels, cap)]


def battery_rich_mask(view: NetworkView, band: int) -> np.ndarray:
    """Nodes reporting a battery level within ``band`` levels of full.

    The shared gate of surplus-seeking terms (harvest): a bonus only
    applies while the receiver is still nearly full — below the band
    the node needs the battery weight's protection, not extra traffic.
    """
    return view.battery_levels >= view.levels - band


@dataclass(frozen=True)
class BatteryWeightFunction:
    """The paper's ``f(n) = Q^(2*(N_B - 1 - n))`` weighting function.

    Args:
        q: Strengthening constant ``Q`` (> 0; values > 1 make depleted
            nodes expensive, ``q == 1`` degenerates EAR into SDR).
        levels: Number of battery levels ``N_B``.
    """

    q: float = DEFAULT_Q
    levels: int = 8

    def __post_init__(self) -> None:
        if self.q <= 0:
            raise ConfigurationError(f"Q must be positive, got {self.q}")
        if self.levels < 1:
            raise ConfigurationError(
                f"levels must be >= 1, got {self.levels}"
            )

    def __call__(self, level: int) -> float:
        """Weight multiplier for a node reporting battery ``level``."""
        if not 0 <= level < self.levels:
            raise ConfigurationError(
                f"battery level {level} outside 0..{self.levels - 1}"
            )
        return self.q ** (2 * (self.levels - 1 - level))

    def table(self) -> np.ndarray:
        """Vector of multipliers indexed by level (used for vectorising)."""
        return np.array([self(level) for level in range(self.levels)])


@dataclass(frozen=True)
class WearWeightFunction:
    """Wear-prediction penalty: ``g(w) = Q_w ** min(w, levels - 1)``.

    ``w`` is a link's quantised wear level — its traversal count in
    units of a wear quantum plus one level per degradation event it has
    suffered.  Heavily-used or previously-degraded lines look longer,
    so EAR drifts traffic off them *before* they sever (the ROADMAP's
    wear-prediction open item).  A pristine link (level 0) is
    unpenalised, and ``q == 1`` degenerates to reactive EAR.

    Args:
        q: Penalty base ``Q_w`` (>= 1).
        quantum: Traversals per wear level (>= 1).
        levels: Level cap (the penalty saturates, like battery levels).
    """

    q: float = DEFAULT_WEAR_Q
    quantum: int = DEFAULT_WEAR_QUANTUM
    levels: int = DEFAULT_WEAR_LEVELS

    def __post_init__(self) -> None:
        if self.q < 1.0:
            raise ConfigurationError(
                f"wear penalty base must be >= 1, got {self.q}"
            )
        if self.quantum < 1:
            raise ConfigurationError(
                f"wear quantum must be >= 1, got {self.quantum}"
            )
        if self.levels < 1:
            raise ConfigurationError(
                f"wear levels must be >= 1, got {self.levels}"
            )

    def __call__(self, level: int) -> float:
        """Weight multiplier of a link at wear ``level``."""
        if level < 0:
            raise ConfigurationError(
                f"wear level must be >= 0, got {level}"
            )
        return self.q ** min(level, self.levels - 1)

    def table(self) -> np.ndarray:
        """Vector of multipliers indexed by level."""
        return np.array([self(level) for level in range(self.levels)])


@dataclass(frozen=True)
class HarvestWeightFunction:
    """Harvest-bonus weighting: ``h(r) = Q_h ** -min(r, levels - 1)``.

    ``r`` is a node's quantised income level — its smoothed per-frame
    harvested energy in units of an income quantum, learned by the
    controller from status uploads.  Energy-rich nodes look *closer*
    (while their cells are still nearly full, see
    :func:`apply_harvest_bonus`), so EAR steers traffic toward the
    regions the fabric is actively recharging instead of merely away
    from depleted ones.  A node with no income (level 0) is
    unweighted, and ``q == 1`` degenerates to reactive EAR.

    Args:
        q: Bonus base ``Q_h`` (>= 1).
        quantum: Smoothed income (pJ/frame) per level (> 0).
        levels: Level cap (the bonus saturates, like battery levels).
    """

    q: float = DEFAULT_HARVEST_Q
    quantum: float = DEFAULT_HARVEST_QUANTUM
    levels: int = DEFAULT_HARVEST_LEVELS

    def __post_init__(self) -> None:
        if self.q < 1.0:
            raise ConfigurationError(
                f"harvest bonus base must be >= 1, got {self.q}"
            )
        if self.quantum <= 0:
            raise ConfigurationError(
                f"harvest quantum must be positive, got {self.quantum}"
            )
        if self.levels < 1:
            raise ConfigurationError(
                f"harvest levels must be >= 1, got {self.levels}"
            )

    def __call__(self, level: int) -> float:
        """Weight multiplier of a node at income ``level`` (<= 1)."""
        if level < 0:
            raise ConfigurationError(
                f"income level must be >= 0, got {level}"
            )
        return self.q ** -min(level, self.levels - 1)

    def table(self) -> np.ndarray:
        """Vector of multipliers indexed by level."""
        return np.array([self(level) for level in range(self.levels)])


@dataclass(frozen=True)
class CongestionWeightFunction:
    """Congestion penalty: ``c(l) = Q_c ** min(l, levels - 1)``.

    ``l`` is a link's quantised load level — its smoothed per-frame
    traversal count in units of a load quantum, tracked by the engine's
    congestion runtime and pushed to the controller on level crossings.
    Hot links look longer, so EAR spreads traffic off the corridors
    adjacent to the controller — the lifetime bottleneck under heavy
    traffic.  An idle link (level 0) is unpenalised, and ``q == 1``
    degenerates to a *measure-only* run: utilisation is tracked and
    reported but the weight matrix is untouched (the congestion
    analysis uses this as the comparison baseline).

    Args:
        q: Penalty base ``Q_c`` (>= 1).
        quantum: Smoothed traversals per frame per load level (> 0).
        levels: Level cap (the penalty saturates, like battery levels).
    """

    q: float = DEFAULT_CONGESTION_Q
    quantum: float = DEFAULT_CONGESTION_QUANTUM
    levels: int = DEFAULT_CONGESTION_LEVELS

    def __post_init__(self) -> None:
        if self.q < 1.0:
            raise ConfigurationError(
                f"congestion penalty base must be >= 1, got {self.q}"
            )
        if self.quantum <= 0:
            raise ConfigurationError(
                f"congestion quantum must be positive, got {self.quantum}"
            )
        if self.levels < 1:
            raise ConfigurationError(
                f"congestion levels must be >= 1, got {self.levels}"
            )

    @property
    def is_neutral(self) -> bool:
        """True when the penalty cannot change any weight (measure-only)."""
        return self.q == 1.0

    def __call__(self, level: int) -> float:
        """Weight multiplier of a link at load ``level``."""
        if level < 0:
            raise ConfigurationError(
                f"load level must be >= 0, got {level}"
            )
        return self.q ** min(level, self.levels - 1)

    def table(self) -> np.ndarray:
        """Vector of multipliers indexed by level."""
        return np.array([self(level) for level in range(self.levels)])


def apply_harvest_bonus(
    weights: np.ndarray,
    view: NetworkView,
    harvest_function: HarvestWeightFunction,
) -> np.ndarray:
    """Scale a weight matrix by the receiver's harvest bonus.

    Column ``j`` shrinks by ``h(income_level_j)`` — but only while node
    ``j`` still reports a battery level within :data:`HARVEST_RICH_BAND`
    of full.  A nearly-full harvesting cell rejects income for lack of
    headroom, so pulling extra traffic onto it converts otherwise-wasted
    income into delivered work; a node below the band needs the battery
    weight's protection instead (income of tens of pJ per frame cannot
    carry relay duty, and an unconditional bonus measurably shortens
    lifetime by overloading flexing nodes at end of life).  ``inf``
    entries stay ``inf`` and the diagonal stays 0, so the
    Floyd–Warshall conventions survive.
    """
    multipliers = quantised_multipliers(
        harvest_function.table(), view.income, harvest_function.levels - 1
    )
    rich = battery_rich_mask(view, HARVEST_RICH_BAND)
    multipliers = np.where(rich, multipliers, 1.0)
    return scale_columns(weights, multipliers)


def apply_wear_penalty(
    weights: np.ndarray,
    wear: np.ndarray,
    wear_function: WearWeightFunction,
) -> np.ndarray:
    """Scale a weight matrix by the per-link wear penalty.

    ``inf`` entries (severed or masked lines) stay ``inf`` and the
    diagonal stays 0, so the Floyd–Warshall conventions survive.
    """
    multipliers = quantised_multipliers(
        wear_function.table(), wear, wear_function.levels - 1
    )
    return scale_links(weights, multipliers)


def apply_congestion_penalty(
    weights: np.ndarray,
    load: np.ndarray,
    congestion_function: CongestionWeightFunction,
) -> np.ndarray:
    """Scale a weight matrix by the per-link congestion penalty.

    ``load`` is the controller's quantised load-level matrix.  ``inf``
    entries stay ``inf`` and the diagonal stays 0, so the
    Floyd–Warshall conventions survive.
    """
    multipliers = quantised_multipliers(
        congestion_function.table(), load, congestion_function.levels - 1
    )
    return scale_links(weights, multipliers)


def _masked_lengths(view: NetworkView) -> np.ndarray:
    """Length matrix with rows/columns of dead nodes removed (set inf).

    A dead node can neither originate, relay, nor receive packets, so
    every interconnect touching it disappears from the graph.  Diagonal
    stays 0 (the Floyd–Warshall convention W_ii = 0).
    """
    weights = np.array(view.lengths, dtype=float, copy=True)
    dead = ~view.alive
    weights[dead, :] = np.inf
    weights[:, dead] = np.inf
    np.fill_diagonal(weights, 0.0)
    return weights


def sdr_weight_matrix(view: NetworkView) -> np.ndarray:
    """``W^(SDR)``: pure line lengths over the live subgraph."""
    return _masked_lengths(view)


def ear_weight_matrix(
    view: NetworkView, weight_function: BatteryWeightFunction
) -> np.ndarray:
    """``W^(EAR)``: lengths scaled by the receiver's battery weight."""
    if weight_function.levels != view.levels:
        raise ConfigurationError(
            f"weight function expects {weight_function.levels} levels but "
            f"the view reports {view.levels}"
        )
    weights = _masked_lengths(view)
    # Scale column j (the receiving endpoint) by f(N_B(j)); battery
    # levels are validated against the view so no saturating cap is
    # needed here.
    multipliers = weight_function.table()[view.battery_levels]
    return scale_columns(weights, multipliers)
