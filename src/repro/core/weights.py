"""Phase 1 of EAR/SDR: interconnect weight matrices (paper Sec 6).

SDR weighs each directed interconnect by its physical length ``L_ij``.
EAR multiplies the length by a decreasing function of the *receiving*
node's reported battery level:

    W_ij^(EAR) = f(N_B(j)) * L_ij

so paths through energy-depleted nodes look long, and traffic drifts
toward well-charged regions.  The paper's weighting function is

    f(n) = Q^(2 * (N_B - 1 - n)),   Q > 0,

equal to 1 for a full battery and growing geometrically as the level
drops ("Q ... a constant to strengthen the impact of the battery
information").  The printed formula in the DATE'05 PDF is typeset
ambiguously; this reconstruction is monotone, equals unity at full
charge, and reproduces the paper's qualitative behaviour — it is kept
pluggable, and the weighting ablation bench sweeps ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .view import NetworkView

#: Default strengthening constant; calibrated so EAR lands in the
#: paper's 44.5-48.2 % band of the analytical bound (see EXPERIMENTS.md).
DEFAULT_Q = 1.6


@dataclass(frozen=True)
class BatteryWeightFunction:
    """The paper's ``f(n) = Q^(2*(N_B - 1 - n))`` weighting function.

    Args:
        q: Strengthening constant ``Q`` (> 0; values > 1 make depleted
            nodes expensive, ``q == 1`` degenerates EAR into SDR).
        levels: Number of battery levels ``N_B``.
    """

    q: float = DEFAULT_Q
    levels: int = 8

    def __post_init__(self) -> None:
        if self.q <= 0:
            raise ConfigurationError(f"Q must be positive, got {self.q}")
        if self.levels < 1:
            raise ConfigurationError(
                f"levels must be >= 1, got {self.levels}"
            )

    def __call__(self, level: int) -> float:
        """Weight multiplier for a node reporting battery ``level``."""
        if not 0 <= level < self.levels:
            raise ConfigurationError(
                f"battery level {level} outside 0..{self.levels - 1}"
            )
        return self.q ** (2 * (self.levels - 1 - level))

    def table(self) -> np.ndarray:
        """Vector of multipliers indexed by level (used for vectorising)."""
        return np.array([self(level) for level in range(self.levels)])


def _masked_lengths(view: NetworkView) -> np.ndarray:
    """Length matrix with rows/columns of dead nodes removed (set inf).

    A dead node can neither originate, relay, nor receive packets, so
    every interconnect touching it disappears from the graph.  Diagonal
    stays 0 (the Floyd–Warshall convention W_ii = 0).
    """
    weights = np.array(view.lengths, dtype=float, copy=True)
    dead = ~view.alive
    weights[dead, :] = np.inf
    weights[:, dead] = np.inf
    np.fill_diagonal(weights, 0.0)
    return weights


def sdr_weight_matrix(view: NetworkView) -> np.ndarray:
    """``W^(SDR)``: pure line lengths over the live subgraph."""
    return _masked_lengths(view)


def ear_weight_matrix(
    view: NetworkView, weight_function: BatteryWeightFunction
) -> np.ndarray:
    """``W^(EAR)``: lengths scaled by the receiver's battery weight."""
    if weight_function.levels != view.levels:
        raise ConfigurationError(
            f"weight function expects {weight_function.levels} levels but "
            f"the view reports {view.levels}"
        )
    weights = _masked_lengths(view)
    multipliers = weight_function.table()[view.battery_levels]
    # Scale column j (the receiving endpoint) by f(N_B(j)); the diagonal
    # and infinite entries are unaffected because inf * x == inf and the
    # diagonal is zero.
    weights = weights * multipliers[np.newaxis, :]
    np.fill_diagonal(weights, 0.0)
    return weights
